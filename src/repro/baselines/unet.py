"""UNet-based baseline ([20] in the paper, customer locations removed).

Treats delivery-location inference as semantic segmentation: annotated
locations of an address are rasterized onto a 9 x 9 grid of GeoHash-8 cells
(~32 m x 19 m) centered at the cell with the most annotations; a small UNet
scores every cell and the argmax cell's center is the prediction.

The paper's two noted weaknesses fall out naturally: when annotations are
so noisy that the true location lies outside the 9 x 9 window the model
cannot be right, and the prediction resolution is a whole cell.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.annotations import AnnotatedLocation, annotated_locations
from repro.geo import LocalProjection, Point, geohash_bbox, geohash_encode
from repro.nn import Adam, Conv2d, Module, Tensor, cat
from repro.nn.conv import max_pool2d, upsample_nearest
from repro.nn.functional import cross_entropy
from repro.trajectory import Address

GRID = 9
GEOHASH_PRECISION = 8


@dataclass(frozen=True)
class _CellGrid:
    """Geometry of one address's 9 x 9 GeoHash window."""

    center_lng: float
    center_lat: float
    dlng: float
    dlat: float

    def cell_of(self, lng: float, lat: float) -> tuple[int, int] | None:
        """(row, col) of a point, or None when outside the window."""
        col = int(round((lng - self.center_lng) / self.dlng)) + GRID // 2
        row = int(round((lat - self.center_lat) / self.dlat)) + GRID // 2
        if 0 <= row < GRID and 0 <= col < GRID:
            return row, col
        return None

    def center_of(self, row: int, col: int) -> Point:
        """Center point of a cell."""
        return Point(
            self.center_lng + (col - GRID // 2) * self.dlng,
            self.center_lat + (row - GRID // 2) * self.dlat,
        )


def _build_grid(events: list[AnnotatedLocation], projection: LocalProjection) -> _CellGrid:
    """Window centered on the GeoHash-8 cell with the most annotations."""
    cells: dict[str, int] = {}
    for event in events:
        lng, lat = projection.to_lnglat(event.x, event.y)
        gh = geohash_encode(float(lng), float(lat), GEOHASH_PRECISION)
        cells[gh] = cells.get(gh, 0) + 1
    mode_cell = max(cells, key=lambda k: (cells[k], k))
    box = geohash_bbox(mode_cell)
    return _CellGrid(
        center_lng=box.center.lng,
        center_lat=box.center.lat,
        dlng=box.max_lng - box.min_lng,
        dlat=box.max_lat - box.min_lat,
    )


def _rasterize(events: list[AnnotatedLocation], grid: _CellGrid, projection: LocalProjection) -> np.ndarray:
    """(1, 9, 9) normalized annotation-count image."""
    image = np.zeros((1, GRID, GRID))
    for event in events:
        lng, lat = projection.to_lnglat(event.x, event.y)
        cell = grid.cell_of(float(lng), float(lat))
        if cell is not None:
            image[0, cell[0], cell[1]] += 1.0
    peak = image.max()
    if peak > 0:
        image /= peak
    return image


class _SmallUNet(Module):
    """One-level UNet: encode, pool, bottleneck, upsample, skip, decode."""

    def __init__(self, rng: np.random.Generator) -> None:
        super().__init__()
        self.enc = Conv2d(1, 8, 3, padding=1, rng=rng)
        self.mid = Conv2d(8, 16, 3, padding=1, rng=rng)
        self.dec = Conv2d(24, 8, 3, padding=1, rng=rng)
        self.out = Conv2d(8, 1, 1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        e = self.enc(x).relu()  # (B, 8, 9, 9)
        m = self.mid(max_pool2d(e, 2)).relu()  # (B, 16, 4, 4)
        up = upsample_nearest(m, (GRID, GRID))  # (B, 16, 9, 9)
        d = self.dec(cat([up, e], axis=1)).relu()
        logits = self.out(d)  # (B, 1, 9, 9)
        return logits.reshape(logits.shape[0], GRID * GRID)


class UNetBaseline:
    """Semantic-segmentation delivery-location inference."""

    name = "UNet-based"

    def __init__(
        self, epochs: int = 30, lr: float = 3e-3, batch_size: int = 32, seed: int = 0
    ) -> None:
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size
        self.seed = seed
        self.net: _SmallUNet | None = None
        self.addresses: dict[str, Address] = {}
        self.annotations: dict[str, list[AnnotatedLocation]] = {}
        self.projection: LocalProjection | None = None

    def fit(self, trips, addresses, ground_truth, train_ids, val_ids=None, projection=None):
        """Rasterize training addresses and train the UNet."""
        self.addresses = dict(addresses)
        self.projection = projection or LocalProjection(next(iter(addresses.values())).geocode)
        self.annotations = annotated_locations(trips, self.projection)
        rng = np.random.default_rng(self.seed)

        images, targets = [], []
        for address_id in train_ids:
            events = self.annotations.get(address_id)
            truth = ground_truth.get(address_id)
            if not events or truth is None:
                continue
            grid = _build_grid(events, self.projection)
            cell = grid.cell_of(truth.lng, truth.lat)
            if cell is None:
                continue  # truth outside the window: no learnable target
            images.append(_rasterize(events, grid, self.projection))
            targets.append(cell[0] * GRID + cell[1])
        if not images:
            raise ValueError("UNet baseline has no trainable addresses")
        x = np.stack(images)
        y = np.array(targets)

        self.net = _SmallUNet(rng)
        optimizer = Adam(self.net.parameters(), lr=self.lr)
        order = np.arange(len(x))
        for _ in range(self.epochs):
            rng.shuffle(order)
            for start in range(0, len(order), self.batch_size):
                idx = order[start : start + self.batch_size]
                optimizer.zero_grad()
                logits = self.net(Tensor(x[idx]))
                loss = cross_entropy(logits, y[idx])
                loss.backward()
                optimizer.step()
        self.net.eval()
        return self

    def predict(self, address_ids: list[str]) -> dict[str, Point]:
        """Argmax-cell center per address; geocode fallback without data."""
        if self.net is None:
            raise RuntimeError("UNet baseline is not fitted")
        out: dict[str, Point] = {}
        for address_id in address_ids:
            events = self.annotations.get(address_id)
            if events:
                grid = _build_grid(events, self.projection)
                image = _rasterize(events, grid, self.projection)
                logits = self.net(Tensor(image[None])).data[0]
                best = int(logits.argmax())
                out[address_id] = grid.center_of(best // GRID, best % GRID)
            elif address_id in self.addresses:
                out[address_id] = self.addresses[address_id].geocode
        return out
