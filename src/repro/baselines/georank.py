"""GeoRank baseline ([6] in the paper).

All annotated locations of an address are delivery-location candidates; a
pairwise ranking model with a decision-tree base learner selects the one
winning the most comparisons.  Features per annotated location follow the
spirit of the original (spatial support among sibling annotations and
relation to the geocode) — the exact proprietary feature list is not
public, so we use the natural equivalents.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.annotations import AnnotatedLocation, annotated_locations
from repro.geo import LocalProjection, Point
from repro.ml import PairwiseRankingTree, RankingGroup
from repro.trajectory import Address


def _annotation_features(
    events: list[AnnotatedLocation], geocode_xy: tuple[float, float]
) -> np.ndarray:
    """Per-annotation features: geocode distance, sibling support, time."""
    coords = np.array([[e.x, e.y] for e in events])
    gx, gy = geocode_xy
    dist_geo = np.hypot(coords[:, 0] - gx, coords[:, 1] - gy)
    n = len(events)
    if n > 1:
        d2 = np.hypot(
            coords[:, None, 0] - coords[None, :, 0],
            coords[:, None, 1] - coords[None, :, 1],
        )
        mean_sibling = (d2.sum(axis=1)) / (n - 1)
        support_30m = (d2 <= 30.0).sum(axis=1) / n  # includes self
    else:
        mean_sibling = np.zeros(1)
        support_30m = np.ones(1)
    hour = np.array([(e.t % 86_400.0) / 3_600.0 for e in events])
    return np.column_stack([dist_geo, mean_sibling, support_30m, hour])


class GeoRankBaseline:
    """Pairwise-ranked annotated locations with a tree base learner."""

    name = "GeoRank"

    def __init__(self, max_leaf_nodes: int = 1024, seed: int = 0) -> None:
        self.ranker = PairwiseRankingTree(
            max_leaf_nodes=max_leaf_nodes, rng=np.random.default_rng(seed)
        )
        self.addresses: dict[str, Address] = {}
        self.annotations: dict[str, list[AnnotatedLocation]] = {}
        self.projection: LocalProjection | None = None
        self._fitted = False

    def _geocode_xy(self, address_id: str) -> tuple[float, float]:
        geocode = self.addresses[address_id].geocode
        return self.projection.to_xy(geocode.lng, geocode.lat)

    def fit(self, trips, addresses, ground_truth, train_ids, val_ids=None, projection=None):
        """Train the pairwise comparator on labeled training addresses."""
        self.addresses = dict(addresses)
        self.projection = projection or LocalProjection(next(iter(addresses.values())).geocode)
        self.annotations = annotated_locations(trips, self.projection)

        groups: list[RankingGroup] = []
        for address_id in train_ids:
            events = self.annotations.get(address_id)
            truth = ground_truth.get(address_id)
            if not events or len(events) < 2 or truth is None:
                continue
            feats = _annotation_features(events, self._geocode_xy(address_id))
            tx, ty = self.projection.to_xy(truth.lng, truth.lat)
            dists = [np.hypot(e.x - tx, e.y - ty) for e in events]
            groups.append(RankingGroup(feats, int(np.argmin(dists))))
        if not groups:
            raise ValueError("GeoRank has no trainable addresses")
        self.ranker.fit(groups)
        self._fitted = True
        return self

    def predict(self, address_ids: list[str]) -> dict[str, Point]:
        """Annotation winning the most pairwise comparisons per address."""
        if not self._fitted:
            raise RuntimeError("GeoRank is not fitted")
        out: dict[str, Point] = {}
        for address_id in address_ids:
            events = self.annotations.get(address_id)
            if events:
                if len(events) == 1:
                    best = 0
                else:
                    feats = _annotation_features(events, self._geocode_xy(address_id))
                    best = self.ranker.predict_best(feats)
                out[address_id] = self.projection.unproject_point(
                    events[best].x, events[best].y
                )
            elif address_id in self.addresses:
                out[address_id] = self.addresses[address_id].geocode
        return out
