"""Annotated-location derivation.

Annotation-based baselines (Annotation, GeoCloud, GeoRank, UNet-based) work
on the locations couriers were at when they *confirmed* deliveries.  As the
paper does for its baseline comparisons, annotated locations are generated
from the trajectory data: the courier's interpolated position at each
waybill's recorded delivery time.  When confirmations are delayed, these
positions drift away from the actual drop-off — exactly the failure mode
DLInfMA is designed to survive.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.geo import LocalProjection
from repro.trajectory import DeliveryTrip


@dataclass(frozen=True)
class AnnotatedLocation:
    """One confirmation event: where and when the courier confirmed."""

    x: float
    y: float
    t: float
    trip_id: str


def position_at(trip: DeliveryTrip, t: float, projection: LocalProjection) -> tuple[float, float]:
    """The courier's interpolated position (meters) at time ``t``.

    Clamped to the trajectory's endpoints: a confirmation after the trip
    ended annotates the courier's final position (often the station).
    """
    lng, lat, times = trip.trajectory.to_arrays()
    if len(times) == 0:
        raise ValueError(f"trip {trip.trip_id!r} has an empty trajectory")
    x, y = projection.to_xy(lng, lat)
    x = np.atleast_1d(np.asarray(x))
    y = np.atleast_1d(np.asarray(y))
    return float(np.interp(t, times, x)), float(np.interp(t, times, y))


def annotated_locations(
    trips: list[DeliveryTrip], projection: LocalProjection
) -> dict[str, list[AnnotatedLocation]]:
    """Annotation events per address, from all trips."""
    out: dict[str, list[AnnotatedLocation]] = defaultdict(list)
    for trip in trips:
        if len(trip.trajectory) == 0:
            continue
        for waybill in trip.waybills:
            x, y = position_at(trip, waybill.t_delivered, projection)
            out[waybill.address_id].append(
                AnnotatedLocation(x=x, y=y, t=waybill.t_delivered, trip_id=trip.trip_id)
            )
    return dict(out)
