"""Unsupervised baselines: Geocoding, Annotation, GeoCloud.

All baselines share the fit/predict interface of
:class:`~repro.core.pipeline.DLInfMA` so the evaluation harness can treat
every method uniformly.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.annotations import annotated_locations
from repro.cluster import dbscan
from repro.geo import LocalProjection, Point
from repro.trajectory import Address


class GeocodingBaseline:
    """Use the geocoder output as the delivery location (the default in
    practice before DLInfMA, per the paper)."""

    name = "Geocoding"

    def __init__(self) -> None:
        self.addresses: dict[str, Address] = {}

    def fit(self, trips, addresses, ground_truth, train_ids, val_ids=None, projection=None):
        """Store the address book (no learning)."""
        self.addresses = dict(addresses)
        return self

    def predict(self, address_ids: list[str]) -> dict[str, Point]:
        """Geocode per address."""
        return {
            a: self.addresses[a].geocode for a in address_ids if a in self.addresses
        }


class AnnotationBaseline:
    """Spatial centroid of the annotated locations ([5] in the paper)."""

    name = "Annotation"

    def __init__(self) -> None:
        self.addresses: dict[str, Address] = {}
        self.annotations: dict[str, list] = {}
        self.projection: LocalProjection | None = None

    def fit(self, trips, addresses, ground_truth, train_ids, val_ids=None, projection=None):
        """Collect annotation events per address."""
        self.addresses = dict(addresses)
        self.projection = projection or LocalProjection(next(iter(addresses.values())).geocode)
        self.annotations = annotated_locations(trips, self.projection)
        return self

    def predict(self, address_ids: list[str]) -> dict[str, Point]:
        """Centroid of annotations; geocode fallback when none exist."""
        out: dict[str, Point] = {}
        for address_id in address_ids:
            events = self.annotations.get(address_id)
            if events:
                x = float(np.mean([e.x for e in events]))
                y = float(np.mean([e.y for e in events]))
                out[address_id] = self.projection.unproject_point(x, y)
            elif address_id in self.addresses:
                out[address_id] = self.addresses[address_id].geocode
        return out


class GeoCloudBaseline:
    """DBSCAN over annotated locations; centroid of the biggest cluster
    ([19] in the paper).  ``min_pts = 1`` so even rarely delivered
    addresses cluster (the paper's setting)."""

    name = "GeoCloud"

    def __init__(self, eps_m: float = 30.0, min_pts: int = 1) -> None:
        self.eps_m = eps_m
        self.min_pts = min_pts
        self.addresses: dict[str, Address] = {}
        self.annotations: dict[str, list] = {}
        self.projection: LocalProjection | None = None

    def fit(self, trips, addresses, ground_truth, train_ids, val_ids=None, projection=None):
        """Collect annotation events per address."""
        self.addresses = dict(addresses)
        self.projection = projection or LocalProjection(next(iter(addresses.values())).geocode)
        self.annotations = annotated_locations(trips, self.projection)
        return self

    def predict(self, address_ids: list[str]) -> dict[str, Point]:
        """Centroid of the largest DBSCAN cluster of annotations."""
        out: dict[str, Point] = {}
        for address_id in address_ids:
            events = self.annotations.get(address_id)
            if events:
                coords = np.array([[e.x, e.y] for e in events])
                labels = dbscan(coords, eps_m=self.eps_m, min_pts=self.min_pts)
                valid = labels[labels >= 0]
                if len(valid):
                    biggest = np.bincount(valid).argmax()
                    centroid = coords[labels == biggest].mean(axis=0)
                else:
                    centroid = coords.mean(axis=0)
                out[address_id] = self.projection.unproject_point(
                    float(centroid[0]), float(centroid[1])
                )
            elif address_id in self.addresses:
                out[address_id] = self.addresses[address_id].geocode
        return out
