"""All comparison methods from the paper's evaluation (Section V-B).

The candidate-based heuristics (MinDist, MaxTC, MaxTC-ILC) are DLInfMA
pipelines with heuristic selectors — build them via
:func:`repro.core.make_variant_selector` / :class:`repro.core.DLInfMA`
with ``selector="mindist" | "maxtc" | "maxtc-ilc"``.
"""

from repro.baselines.annotations import AnnotatedLocation, annotated_locations, position_at
from repro.baselines.simple import AnnotationBaseline, GeoCloudBaseline, GeocodingBaseline
from repro.baselines.georank import GeoRankBaseline
from repro.baselines.unet import UNetBaseline

__all__ = [
    "AnnotatedLocation",
    "annotated_locations",
    "position_at",
    "AnnotationBaseline",
    "GeoCloudBaseline",
    "GeocodingBaseline",
    "GeoRankBaseline",
    "UNetBaseline",
]
