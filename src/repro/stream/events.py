"""Stream event types.

The streaming tier's unit of work is a single GPS fix.  Fixes carry
*event time* (``t``, the timestamp the device stamped, POSIX seconds —
the same clock :class:`~repro.trajectory.model.TrajPoint` uses) and,
once admitted, *arrival time* (``wall_t``, the wall clock of the process
that accepted them).  The gap between the two clocks is what the
watermark machinery reasons about: event time orders the trajectory,
arrival time measures the pipeline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class GpsFix:
    """One courier GPS fix flowing through the stream.

    ``wall_t`` is 0.0 until the bus stamps it on admission; equality and
    hashing deliberately include it, so dedup logic must key on
    ``(courier_id, t)`` — two arrivals of the same fix are distinct
    *events* carrying the same *observation*.
    """

    courier_id: str
    lng: float
    lat: float
    t: float
    wall_t: float = 0.0

    def key(self) -> tuple[str, float]:
        """The observation identity: one courier cannot emit two fixes
        with the same timestamp (Definition 3's strict chronology)."""
        return (self.courier_id, self.t)


class IngestOutcome(enum.Enum):
    """Terminal classification of one offered fix.

    Every fix offered to the pipeline ends in exactly one of these, so

        offered == accepted + duplicate + late + shed

    holds at any quiescent point and *event loss* is precisely
    ``late + shed`` (duplicates carry no information).
    """

    ACCEPTED = "accepted"      # admitted, will reach the extractor
    DUPLICATE = "duplicate"    # same (courier, t) as a known fix
    LATE = "late"              # arrived behind the courier's watermark
    SHED = "shed"              # bus full and the policy dropped it


__all__ = ["GpsFix", "IngestOutcome"]
