"""Glue between bus, extractor, and metrics: the ingest loop.

:class:`StreamIngestor` owns the single consumer thread of a
:class:`~repro.stream.bus.StreamBus`.  Producers offer fixes through
:meth:`offer` (which folds bus shedding into the event accounting);
the consumer thread drains the bus in arrival order, runs each fix
through the :class:`~repro.stream.extractor.OnlineStayExtractor`, and
buffers emitted stays for the scheduler to drain.

Accounting is exhaustive by construction: every offered fix is counted
exactly once under its terminal outcome —

* not admitted by the bus, or displaced by ``SHED_OLDEST`` → ``shed``
  (counted at the offer edge, because only the producer sees it);
* admitted and processed → ``accepted`` / ``duplicate`` / ``late``
  (counted at the extractor edge).

so ``offered == accepted + duplicate + late + shed`` holds whenever the
bus is empty, and the stream-bench's zero-loss gate is a simple counter
identity, not a heuristic.
"""

from __future__ import annotations

import threading

from repro.stream.bus import StreamBus
from repro.stream.events import GpsFix, IngestOutcome
from repro.stream.extractor import EmittedStay, OnlineStayExtractor
from repro.stream.metrics import StreamMetrics


class StreamIngestor:
    """Single-consumer ingest loop over a bounded bus."""

    def __init__(
        self,
        bus: StreamBus,
        extractor: OnlineStayExtractor,
        metrics: StreamMetrics,
        record_fixes: bool = False,
        evict_every_n: int = 32,
    ) -> None:
        self.bus = bus
        self.extractor = extractor
        self.metrics = metrics
        self.record_fixes = record_fixes
        self.evict_every_n = max(1, evict_every_n)
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        self._pending: list[EmittedStay] = []
        self._recorded: list[GpsFix] = []
        self._max_event_t = float("-inf")
        self._batches_since_evict = 0
        self.n_offered = 0

    # -- producer edge ---------------------------------------------------
    def offer(self, fix: GpsFix, timeout_s: float | None = None) -> bool:
        """Publish one fix, folding shed outcomes into the accounting.

        Returns True if the fix was admitted (its accepted/duplicate/
        late classification happens later, on the consumer thread).
        """
        self.n_offered += 1
        result = self.bus.publish(fix, timeout_s=timeout_s)
        if not result.admitted:
            self.metrics.count_event(IngestOutcome.SHED)
        for _victim in result.shed:
            # Displaced by SHED_OLDEST: admitted once, never processed.
            self.metrics.count_event(IngestOutcome.SHED)
        return result.admitted

    # -- consumer edge ---------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("ingestor already started")
        self._thread = threading.Thread(
            target=self._run, name="stream-ingest", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while True:
            batch = self.bus.take_batch()
            if not batch:
                if self.bus.closed and len(self.bus) == 0:
                    return
                continue
            self._process(batch)

    def _process(self, batch: list[GpsFix]) -> None:
        emitted: list[EmittedStay] = []
        for fix in batch:
            outcome, stays = self.extractor.ingest(fix)
            self.metrics.count_event(outcome)
            if outcome is IngestOutcome.ACCEPTED:
                self._max_event_t = max(self._max_event_t, fix.t)
                if self.record_fixes:
                    self._recorded.append(fix)
            emitted.extend(stays)
        self._batches_since_evict += 1
        if self._batches_since_evict >= self.evict_every_n:
            self._batches_since_evict = 0
            before = self.extractor.n_evicted
            emitted.extend(self.extractor.evict_idle(self._max_event_t))
            self.metrics.count_evictions(self.extractor.n_evicted - before)
        if emitted:
            self.metrics.count_stays(len(emitted))
            with self._lock:
                self._pending.extend(emitted)
        self.metrics.set_gauge("bus_depth", len(self.bus))
        self.metrics.set_gauge("courier_states", self.extractor.n_states)

    # -- scheduler edge --------------------------------------------------
    def drain_stays(self) -> list[EmittedStay]:
        """Take everything emitted since the last drain (FIFO order)."""
        with self._lock:
            out = self._pending
            self._pending = []
        return out

    def recorded_fixes(self) -> list[GpsFix]:
        """Accepted fixes in arrival order (``record_fixes=True`` only);
        the parity check replays these through the batch detector."""
        return list(self._recorded)

    # -- lifecycle -------------------------------------------------------
    def close(self, flush: bool = True) -> None:
        """Stop admission, drain the queue, optionally flush open windows.

        ``flush=True`` finalizes every courier as if its trajectory
        ended — this is what makes a finite replayed stream reproduce
        the batch detector's trailing-window stays.
        """
        self.bus.close()
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None
        if flush:
            emitted = self.extractor.flush_all()
            if emitted:
                self.metrics.count_stays(len(emitted))
                with self._lock:
                    self._pending.extend(emitted)
        self.metrics.set_gauge("bus_depth", len(self.bus))
        self.metrics.set_gauge("courier_states", self.extractor.n_states)


__all__ = ["StreamIngestor"]
