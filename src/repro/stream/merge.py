"""Per-shard incremental candidate-pool merge with staged commit.

The batch pipeline rebuilds its candidate pool from all stays at once;
the streaming tier cannot.  :class:`ShardedPoolMerger` keeps one
:class:`~repro.core.poolbuilder.CandidatePoolBuilder` per spatial cell
(``shard_cell_m`` on a side), so each drained batch of stays touches
only the handful of shards its stays fall into — merge cost tracks the
batch's spatial footprint, not the city's candidate count.

Because a drained batch must survive the scheduler's promotion gates
*before* it may become servable, mutation is two-phase:

* :meth:`stage` applies the batch and returns a :class:`StagedBatch`
  holding enough state to undo it — ``merge_weighted_clusters`` never
  mutates the clusters it is given (it builds fresh arrays and returns
  a fresh list), so saving each touched shard's cluster-list reference
  and counters is a complete rollback token.
* :meth:`commit` discards the token; :meth:`rollback` restores it,
  leaving the pool exactly as before the batch (gate-rejected stays are
  quarantined, never merged).

Shards partition space hard: two stays of one physical location that
straddle a cell boundary keep separate candidates.  With the default
800 m cells and the 40 m merge threshold the affected boundary band is
~5 % of area; the parity target of the streaming tier is the *stays*
(exact), not the pool (approximate by design, as is the paper's own
bi-weekly incremental merge).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cluster import Cluster
from repro.core.candidates import CandidatePool, LocationCandidate
from repro.core.poolbuilder import CandidatePoolBuilder
from repro.geo import LocalProjection, Point
from repro.trajectory import StayPoint


@dataclass
class _ShardToken:
    """Pre-stage state of one touched shard (``None`` = shard was new)."""

    clusters: list[Cluster] | None
    n_batches: int
    n_points: int


@dataclass
class StagedBatch:
    """Rollback token for one staged (not yet committed) stay batch."""

    stays: list[StayPoint]
    tokens: dict[tuple[int, int], _ShardToken]
    committed: bool = False

    @property
    def n_stays(self) -> int:
        return len(self.stays)


class ShardedPoolMerger:
    """Spatially sharded, gate-aware incremental pool maintenance."""

    def __init__(
        self,
        projection: LocalProjection,
        distance_threshold_m: float = 40.0,
        shard_cell_m: float = 800.0,
        max_chunk: int = 512,
    ) -> None:
        if shard_cell_m <= 0:
            raise ValueError("shard_cell_m must be positive")
        if max_chunk < 1:
            raise ValueError("max_chunk must be >= 1")
        self.projection = projection
        self.distance_threshold_m = distance_threshold_m
        self.shard_cell_m = shard_cell_m
        self.max_chunk = max_chunk
        self._shards: dict[tuple[int, int], CandidatePoolBuilder] = {}
        self._staged: StagedBatch | None = None
        self.n_committed_batches = 0
        self.n_committed_stays = 0

    # -- introspection ---------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self._shards)

    def n_candidates(self) -> int:
        return sum(len(b._clusters) for b in self._shards.values())

    def _cell(self, x: float, y: float) -> tuple[int, int]:
        return (
            math.floor(x / self.shard_cell_m),
            math.floor(y / self.shard_cell_m),
        )

    # -- two-phase mutation ---------------------------------------------
    def stage(self, stays: list[StayPoint]) -> StagedBatch:
        """Merge a batch into the touched shards, revocably.

        Only one batch may be in flight: the scheduler drains, stages,
        gates, then commits or rolls back before the next tick.
        """
        if self._staged is not None:
            raise RuntimeError("a staged batch is already pending")
        by_cell: dict[tuple[int, int], list[StayPoint]] = {}
        if stays:
            lng = [sp.lng for sp in stays]
            lat = [sp.lat for sp in stays]
            xs, ys = self.projection.to_xy(np.asarray(lng), np.asarray(lat))
            for sp, x, y in zip(stays, np.atleast_1d(xs), np.atleast_1d(ys)):
                by_cell.setdefault(self._cell(float(x), float(y)), []).append(sp)
        tokens: dict[tuple[int, int], _ShardToken] = {}
        for cell, cell_stays in by_cell.items():
            shard = self._shards.get(cell)
            if shard is None:
                tokens[cell] = _ShardToken(None, 0, 0)
                shard = self._shards[cell] = CandidatePoolBuilder(
                    self.projection, self.distance_threshold_m
                )
            else:
                tokens[cell] = _ShardToken(
                    shard._clusters, shard._n_batches, shard._n_points
                )
            # Chunk big batches: hierarchical clustering is quadratic in
            # its input, but merging a chunk against the shard's existing
            # clusters is quadratic only in (clusters + chunk) — the
            # same bound the batch pipeline gets from bi-weekly slicing.
            for lo in range(0, len(cell_stays), self.max_chunk):
                shard.add_batch(cell_stays[lo:lo + self.max_chunk])
        self._staged = StagedBatch(stays=list(stays), tokens=tokens)
        return self._staged

    def commit(self) -> None:
        """Make the staged batch permanent."""
        if self._staged is None:
            raise RuntimeError("no staged batch to commit")
        self._staged.committed = True
        self.n_committed_batches += 1
        self.n_committed_stays += len(self._staged.stays)
        self._staged = None

    def rollback(self) -> list[StayPoint]:
        """Undo the staged batch; returns the quarantined stays."""
        if self._staged is None:
            raise RuntimeError("no staged batch to roll back")
        for cell, token in self._staged.tokens.items():
            if token.clusters is None:
                del self._shards[cell]
            else:
                shard = self._shards[cell]
                shard._clusters = token.clusters
                shard._n_batches = token.n_batches
                shard._n_points = token.n_points
        quarantined = self._staged.stays
        self._staged = None
        return quarantined

    # -- materialization -------------------------------------------------
    def all_clusters(self) -> list[Cluster]:
        out: list[Cluster] = []
        for shard in self._shards.values():
            out.extend(shard._clusters)
        return out

    def build_pool(self) -> CandidatePool:
        """Materialize the merged pool across all shards.

        Same id convention as :meth:`CandidatePoolBuilder.build`:
        west-to-east, so equal cluster sets produce equal pools.
        """
        candidates = []
        clusters = sorted(self.all_clusters(), key=lambda c: (c.x, c.y))
        for i, cluster in enumerate(clusters):
            lng, lat = self.projection.to_lnglat(cluster.x, cluster.y)
            candidates.append(
                LocationCandidate(
                    candidate_id=i,
                    x=cluster.x,
                    y=cluster.y,
                    lng=float(lng),
                    lat=float(lat),
                    weight=cluster.weight,
                )
            )
        return CandidatePool(candidates, self.projection)

    def snap_locations(
        self,
        addresses: dict[str, Point],
        snap_radius_m: float = 100.0,
        min_weight: float = 2.0,
    ) -> dict[str, Point]:
        """Snap each address to its strongest nearby candidate.

        This is the streaming stand-in for full LocMatcher inference: an
        address moves to the heaviest candidate within ``snap_radius_m``
        of its reported position (the paper's observation that the
        actual delivery location is near, but not at, the annotation).
        Addresses with no candidate of weight >= ``min_weight`` nearby
        are left out — the refresh only moves what the pool supports, and
        the store's ``update`` path keeps prior locations for the rest.
        """
        pool = self.build_pool()
        out: dict[str, Point] = {}
        for address_id, point in addresses.items():
            x, y = self.projection.to_xy(point.lng, point.lat)
            near = [
                c for c in pool.within(float(x), float(y), snap_radius_m)
                if c.weight >= min_weight
            ]
            if not near:
                continue
            best = max(
                near,
                key=lambda c: (c.weight,
                               -((c.x - x) ** 2 + (c.y - y) ** 2)),
            )
            out[address_id] = Point(best.lng, best.lat)
        return out


__all__ = ["ShardedPoolMerger", "StagedBatch"]
