"""Stream metric families, pre-seeded and (optionally) shm-mirrored.

Every ``stream_*`` family is registered and pre-seeded **at zero** the
moment a :class:`StreamMetrics` is constructed, mirroring the PR-8
fleet-series convention: the SLO engine in :mod:`repro.obs.health`
fails closed, so "nothing shed yet" must read as an explicit 0, not as
missing data.  The freshness-lag histogram gets one synthetic ``0.0``
seed observation for the same reason — a quantile objective evaluated
before the first promotion would otherwise reject on "histogram has no
observations", and a gate that can never pass the first time is a gate
nobody keeps.  The seed sample is recorded in the registry meta-free
way (it is one observation in the lowest bucket) and documented in
``docs/streaming.md``.

When an ``obs_dir`` is supplied, the same families are mirrored into a
``metrics-stream.shm`` shared-memory plane (:mod:`repro.obs.shm`), so a
multi-process serving fleet's merged scrape — ``ProcessRouter.metrics()``
or ``repro obs-export`` — picks up the ingestion tier with zero IPC,
exactly like the router and worker planes.
"""

from __future__ import annotations

import os
from typing import Any

from repro.obs import MetricsRegistry, get_registry
from repro.obs.shm import MetricsPlane, SlotSpec
from repro.stream.events import IngestOutcome

#: Promotion outcomes the scheduler can record.
PROMOTION_OUTCOMES = (
    "promoted", "rejected_drift", "rejected_slo", "skipped_empty", "warmup"
)

#: Freshness lag (event arrival -> servable) buckets, seconds.  Wider
#: than the request-latency buckets: the lag budget includes watermark
#: dwell (bounded lateness) and the refresh interval, not just compute.
FRESHNESS_BUCKETS = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)

_PLANE_FILE = "metrics-stream.shm"


def stream_plane_specs() -> list[SlotSpec]:
    """Fixed slot schema of the stream tier's shared-memory plane."""
    specs = [
        SlotSpec("counter", "stream_events_total",
                 (("outcome", o.value),),
                 help="GPS fixes offered to the stream, by terminal outcome")
        for o in IngestOutcome
    ]
    specs += [
        SlotSpec("counter", "stream_promotions_total", (("outcome", o),),
                 help="Refresh-scheduler ticks by promotion outcome")
        for o in PROMOTION_OUTCOMES
    ]
    specs += [
        SlotSpec("counter", "stream_stays_emitted_total", (),
                 help="Stay points emitted by the online extractor"),
        SlotSpec("counter", "stream_stays_quarantined_total", (),
                 help="Stays dropped with a gate-rejected batch"),
        SlotSpec("counter", "stream_evictions_total", (),
                 help="Idle courier window states evicted"),
        SlotSpec("gauge", "stream_courier_states", (),
                 help="Courier window states currently held"),
        SlotSpec("gauge", "stream_bus_depth", (),
                 help="Fixes queued in the ingest bus"),
        SlotSpec("gauge", "stream_pool_candidates", (),
                 help="Candidates in the merged streaming pool"),
        SlotSpec("gauge", "stream_snapshot_version", (),
                 help="Last store version the scheduler promoted"),
        SlotSpec("histogram", "stream_freshness_lag_seconds", (),
                 buckets=FRESHNESS_BUCKETS,
                 help="Event arrival to servable-snapshot lag"),
    ]
    return specs


class StreamMetrics:
    """Registry + optional shm-plane writer for the ``stream_*`` families.

    One instance is shared by the bus, extractor, ingestor, and
    scheduler; every write goes to the process-global registry and, when
    a plane is attached, to the corresponding shared-memory slot.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        obs_dir: str | None = None,
    ) -> None:
        registry = registry or get_registry()
        self.registry = registry
        self.events = registry.counter(
            "stream_events_total",
            "GPS fixes offered to the stream, by terminal outcome",
        )
        self.promotions = registry.counter(
            "stream_promotions_total",
            "Refresh-scheduler ticks by promotion outcome",
        )
        self.stays_emitted = registry.counter(
            "stream_stays_emitted_total",
            "Stay points emitted by the online extractor",
        )
        self.stays_quarantined = registry.counter(
            "stream_stays_quarantined_total",
            "Stays dropped with a gate-rejected batch",
        )
        self.evictions = registry.counter(
            "stream_evictions_total", "Idle courier window states evicted"
        )
        self.courier_states = registry.gauge(
            "stream_courier_states", "Courier window states currently held"
        )
        self.bus_depth = registry.gauge(
            "stream_bus_depth", "Fixes queued in the ingest bus"
        )
        self.pool_candidates = registry.gauge(
            "stream_pool_candidates", "Candidates in the merged streaming pool"
        )
        self.snapshot_version = registry.gauge(
            "stream_snapshot_version",
            "Last store version the scheduler promoted",
        )
        self.freshness = registry.histogram(
            "stream_freshness_lag_seconds",
            "Event arrival to servable-snapshot lag",
            buckets=FRESHNESS_BUCKETS,
        )
        # Pre-seed every label combination at zero (fail-closed SLO
        # engine: absent sample == violation) and the freshness histogram
        # with one 0.0 seed observation so a quantile gate evaluated
        # before the first promotion has a well-formed family.
        for outcome in IngestOutcome:
            self.events.inc(0, outcome=outcome.value)
        for outcome in PROMOTION_OUTCOMES:
            self.promotions.inc(0, outcome=outcome)
        self.stays_emitted.inc(0)
        self.stays_quarantined.inc(0)
        self.evictions.inc(0)
        self.courier_states.set(0)
        self.bus_depth.set(0)
        self.pool_candidates.set(0)
        self.snapshot_version.set(0)
        if self.freshness.count() == 0:
            self.freshness.observe(0.0)

        self._plane: MetricsPlane | None = None
        self._slots: dict[str, Any] = {}
        if obs_dir:
            try:
                os.makedirs(obs_dir, exist_ok=True)
                self._plane = MetricsPlane.create(
                    os.path.join(obs_dir, _PLANE_FILE),
                    stream_plane_specs(),
                    meta={"kind": "stream"},
                )
            except OSError:
                self._plane = None  # telemetry must never block ingest
        if self._plane is not None:
            p = self._plane
            self._slots = {
                "events": {o.value: p.slot("stream_events_total",
                                           outcome=o.value)
                           for o in IngestOutcome},
                "promotions": {o: p.slot("stream_promotions_total", outcome=o)
                               for o in PROMOTION_OUTCOMES},
                "stays_emitted": p.slot("stream_stays_emitted_total"),
                "stays_quarantined": p.slot("stream_stays_quarantined_total"),
                "evictions": p.slot("stream_evictions_total"),
                "courier_states": p.slot("stream_courier_states"),
                "bus_depth": p.slot("stream_bus_depth"),
                "pool_candidates": p.slot("stream_pool_candidates"),
                "snapshot_version": p.slot("stream_snapshot_version"),
                "freshness": p.slot("stream_freshness_lag_seconds"),
            }
            # Mirror the histogram seed so a plane-only scrape (a fleet
            # merge that never saw this process's registry) is also
            # well-formed for the quantile gate.
            p.observe(self._slots["freshness"], 0.0)

    # -- writers --------------------------------------------------------
    def count_event(self, outcome: "IngestOutcome", n: int = 1) -> None:
        self.events.inc(n, outcome=outcome.value)
        if self._plane is not None:
            self._plane.inc(self._slots["events"][outcome.value], n)

    def count_promotion(self, outcome: str) -> None:
        self.promotions.inc(outcome=outcome)
        if self._plane is not None:
            self._plane.inc(self._slots["promotions"][outcome])

    def count_stays(self, n: int) -> None:
        if n:
            self.stays_emitted.inc(n)
            if self._plane is not None:
                self._plane.inc(self._slots["stays_emitted"], n)

    def count_quarantined(self, n: int) -> None:
        if n:
            self.stays_quarantined.inc(n)
            if self._plane is not None:
                self._plane.inc(self._slots["stays_quarantined"], n)

    def count_evictions(self, n: int) -> None:
        if n:
            self.evictions.inc(n)
            if self._plane is not None:
                self._plane.inc(self._slots["evictions"], n)

    def set_gauge(self, name: str, value: float) -> None:
        getattr(self, name).set(value)
        if self._plane is not None:
            self._plane.set(self._slots[name], value)

    def observe_freshness(self, seconds: float) -> None:
        self.freshness.observe(seconds)
        if self._plane is not None:
            self._plane.observe(self._slots["freshness"], seconds)

    # -- accounting -----------------------------------------------------
    def event_counts(self) -> dict[str, float]:
        return {
            o.value: self.events.value(outcome=o.value) for o in IngestOutcome
        }

    def n_lost(self) -> float:
        """Events lost = late (behind the watermark) + shed (bus full)."""
        counts = self.event_counts()
        return counts["late"] + counts["shed"]

    def close(self) -> None:
        if self._plane is not None:
            self._plane.close()
            self._plane = None


__all__ = [
    "FRESHNESS_BUCKETS",
    "PROMOTION_OUTCOMES",
    "StreamMetrics",
    "stream_plane_specs",
]
