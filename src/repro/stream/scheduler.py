"""Gate-checked snapshot promotion: the refresh scheduler.

:class:`RefreshScheduler` closes the streaming loop: every tick it
drains the stays the ingest loop emitted, stages them into the
:class:`~repro.stream.merge.ShardedPoolMerger`, and then — before
anything becomes servable — runs the observability stack as a set of
*promotion criteria*:

1. **Drift gate** (:mod:`repro.obs.drift`).  The staged pool + batch is
   fingerprinted (candidate-weight and stay-duration distributions) and
   compared, by PSI, against the *cumulative accepted* baseline: the
   committed pool's weight distribution plus the duration distribution
   of every stay accepted so far.  Comparing against accepted history —
   never against rejected observations — is what keeps a poisoned batch
   from laundering itself into the baseline and sailing through on the
   second attempt; comparing against the cumulative mixture — not just
   the previous batch — is what keeps ordinary batch-to-batch variance
   from tripping the gate.
2. **SLO gate** (:mod:`repro.obs.health`).  The live metrics registry
   is evaluated against the stream SLOs (``ci/slo-stream.yaml``): a
   pipeline that is shedding events or missing its freshness budget
   does not get to publish, because the snapshot it would publish is
   built from a stream it was losing.

A batch that fails either gate is **rolled back** (the merger restores
the pre-stage cluster state), its stays are quarantined and counted,
a ``stream_promotion_rejected`` event is emitted, and a
:class:`PromotionRecord` lands in the audit trail — the rejection is a
first-class, observable outcome, not a silent skip.  Only a batch that
passes both gates is committed, snapped to address locations, and
promoted through the injected ``promote`` callable (thread backend:
``QueryServer.apply_refresh``; process backend:
``SnapshotPublisher.refresh``, which flips the mmap'd version counter
only after the snapshot is durably published).

The first ``warmup_promotions`` successful ticks skip the drift gate
(outcome ``"warmup"``): a pool growing from nothing shifts its own
weight distribution, and a gate that rejects bootstrap is a gate that
gets disabled.  The SLO gate is never skipped.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.geo import Point
from repro.obs import SLO, evaluate_slos, event, get_provenance_ring, get_recorder
from repro.obs.drift import (
    DURATION_EDGES,
    WEIGHT_EDGES,
    DriftReport,
    Fingerprint,
    bin_values,
    compare_fingerprints,
)
from repro.stream.ingest import StreamIngestor
from repro.stream.merge import ShardedPoolMerger
from repro.stream.metrics import StreamMetrics


@dataclass(frozen=True)
class GateConfig:
    """Promotion-gate thresholds."""

    psi_threshold: float = 0.25
    warmup_promotions: int = 2
    snap_radius_m: float = 100.0
    min_weight: float = 2.0


@dataclass
class PromotionRecord:
    """One audit-trail entry: what a scheduler tick decided and why."""

    tick: int
    wall_t: float
    outcome: str                    # a PROMOTION_OUTCOMES member
    n_stays: int
    n_candidates: int
    version: int | None = None
    n_locations: int | None = None
    reason: str | None = None
    drift: dict[str, Any] | None = None
    slo: dict[str, Any] | None = None

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "tick": self.tick,
            "wall_t": self.wall_t,
            "outcome": self.outcome,
            "n_stays": self.n_stays,
            "n_candidates": self.n_candidates,
        }
        if self.version is not None:
            out["version"] = self.version
        if self.n_locations is not None:
            out["n_locations"] = self.n_locations
        if self.reason is not None:
            out["reason"] = self.reason
        if self.drift is not None:
            out["drift"] = self.drift
        if self.slo is not None:
            out["slo"] = self.slo
        return out


def stream_fingerprint(
    merger: ShardedPoolMerger, durations: Sequence[float]
) -> Fingerprint:
    """Fingerprint the staged pool state plus the staged batch.

    Distribution-only on purpose: scalar dimensions (candidate count,
    total weight) grow monotonically on a healthy unbounded stream, so
    ratio checks on them would flag ordinary growth as drift.  The
    *shape* of the weight and duration distributions is what a poisoned
    batch distorts.
    """
    weights = [float(c.weight) for c in merger.all_clusters()]
    return Fingerprint(
        kind="stream",
        dists={
            "candidate_weight": bin_values(weights, WEIGHT_EDGES),
            "stay_duration": bin_values(durations, DURATION_EDGES),
        },
    )


class RefreshScheduler:
    """Background promotion loop with drift + SLO gates and audit trail."""

    def __init__(
        self,
        ingestor: StreamIngestor,
        merger: ShardedPoolMerger,
        metrics: StreamMetrics,
        addresses: dict[str, Point],
        promote: Callable[[dict[str, Point]], int],
        slos: Sequence[SLO] = (),
        gate: GateConfig | None = None,
        interval_s: float = 2.0,
    ) -> None:
        self.ingestor = ingestor
        self.merger = merger
        self.metrics = metrics
        self.addresses = addresses
        self.promote = promote
        self.slos = tuple(slos)
        self.gate = gate or GateConfig()
        self.interval_s = interval_s
        self.records: list[PromotionRecord] = []
        # Cumulative accepted baseline: the committed pool's weight bins
        # and the duration bins of every accepted stay.
        self._baseline_weight_bins: tuple[int, ...] | None = None
        self._baseline_duration_bins = [0] * (len(DURATION_EDGES) + 1)
        self._n_promoted = 0
        self._tick = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()

    # -- properties ------------------------------------------------------
    @property
    def n_promoted(self) -> int:
        """Successful promotions (including warmup ones)."""
        return self._n_promoted

    @property
    def n_rejected(self) -> int:
        return sum(
            1 for r in self.records if r.outcome.startswith("rejected")
        )

    # -- one tick --------------------------------------------------------
    def tick(self) -> PromotionRecord:
        """Drain → stage → gate → promote-or-rollback.  Thread-safe."""
        with self._lock:
            return self._tick_locked()

    def _tick_locked(self) -> PromotionRecord:
        self._tick += 1
        emitted = self.ingestor.drain_stays()
        if not emitted:
            record = PromotionRecord(
                tick=self._tick,
                wall_t=time.time(),
                outcome="skipped_empty",
                n_stays=0,
                n_candidates=self.merger.n_candidates(),
            )
            self.metrics.count_promotion("skipped_empty")
            self.records.append(record)
            return record

        stays = [e.stay for e in emitted]
        self.merger.stage(stays)
        current_fp = stream_fingerprint(
            self.merger, [s.duration_s for s in stays]
        )

        drift_report: DriftReport | None = None
        in_warmup = self._n_promoted < self.gate.warmup_promotions
        if not in_warmup and self._baseline_weight_bins is not None:
            baseline_fp = Fingerprint(
                kind="stream",
                dists={
                    "candidate_weight": self._baseline_weight_bins,
                    "stay_duration": tuple(self._baseline_duration_bins),
                },
            )
            drift_report = compare_fingerprints(
                baseline_fp,
                current_fp,
                psi_threshold=self.gate.psi_threshold,
            )
            if drift_report.drifted:
                return self._reject(
                    emitted, "rejected_drift",
                    f"PSI {drift_report.max_psi:.3f} over threshold "
                    f"{self.gate.psi_threshold}",
                    drift=drift_report.to_dict(),
                )

        if self.slos:
            health = evaluate_slos(
                self.metrics.registry.to_dict(),
                self.slos,
                source="stream",
                emit_events=False,
            )
            if not health.ok:
                failed = [r.slo.name for r in health.results if not r.ok]
                return self._reject(
                    emitted, "rejected_slo",
                    "SLO violation: " + ", ".join(failed),
                    slo=health.to_dict(),
                    drift=(drift_report.to_dict() if drift_report else None),
                )

        # Both gates passed: commit, snap, promote.
        self.merger.commit()
        locations = self.merger.snap_locations(
            self.addresses,
            snap_radius_m=self.gate.snap_radius_m,
            min_weight=self.gate.min_weight,
        )
        version = self.promote(locations)
        now = time.time()
        for e in emitted:
            self.metrics.observe_freshness(max(0.0, now - e.wall_t))
        self.metrics.set_gauge("snapshot_version", version)
        self.metrics.set_gauge("pool_candidates", self.merger.n_candidates())
        outcome = "warmup" if in_warmup else "promoted"
        self.metrics.count_promotion(outcome)
        self._baseline_weight_bins = current_fp.dists["candidate_weight"]
        batch_bins = current_fp.dists["stay_duration"]
        self._baseline_duration_bins = [
            a + b for a, b in zip(self._baseline_duration_bins, batch_bins)
        ]
        self._n_promoted += 1
        record = PromotionRecord(
            tick=self._tick,
            wall_t=now,
            outcome=outcome,
            n_stays=len(emitted),
            n_candidates=self.merger.n_candidates(),
            version=version,
            n_locations=len(locations),
        )
        self.records.append(record)
        event(
            "stream_promotion", component="stream",
            outcome=outcome, version=version, n_stays=len(emitted),
            n_locations=len(locations),
        )
        return record

    def _reject(
        self,
        emitted: list,
        outcome: str,
        reason: str,
        drift: dict[str, Any] | None = None,
        slo: dict[str, Any] | None = None,
    ) -> PromotionRecord:
        quarantined = self.merger.rollback()
        self.metrics.count_quarantined(len(quarantined))
        self.metrics.count_promotion(outcome)
        record = PromotionRecord(
            tick=self._tick,
            wall_t=time.time(),
            outcome=outcome,
            n_stays=len(quarantined),
            n_candidates=self.merger.n_candidates(),
            reason=reason,
            drift=drift,
            slo=slo,
        )
        self.records.append(record)
        event(
            "stream_promotion_rejected", level="warning", component="stream",
            outcome=outcome, reason=reason, n_stays=len(quarantined),
        )
        # A gate refusal is the forensic moment this pipeline exists for:
        # snapshot the flight recorder with the rejected-vs-served versions,
        # the live registry, the failing gate's verdict, and whatever
        # provenance records are implicated in the rejected traffic.
        served = self.metrics.registry.to_dict()
        try:
            served_version = int(
                self.metrics.snapshot_version.value()
            )
        except Exception:  # noqa: BLE001 — context stays best-effort
            served_version = 0
        implicated = [
            r.to_dict() for r in get_provenance_ring().records()[:16]
        ]
        get_recorder().trigger(
            "gate_refusal",
            context={
                "tick": self._tick,
                "outcome": outcome,
                "reason": reason,
                "n_quarantined": len(quarantined),
                "served_version": served_version,
                "rejected_candidate_version": served_version + 1,
                "drift": drift,
            },
            registry_doc=served,
            slo=slo,
            provenance=implicated,
        )
        return record

    # -- background loop -------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("scheduler already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="stream-refresh", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.tick()

    def stop(self, final_tick: bool = True) -> None:
        """Stop the loop; optionally run one last drain-and-promote."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None
        if final_tick:
            self.tick()

    def audit_trail(self) -> list[dict[str, Any]]:
        return [r.to_dict() for r in self.records]


__all__ = [
    "GateConfig",
    "PromotionRecord",
    "RefreshScheduler",
    "stream_fingerprint",
]
