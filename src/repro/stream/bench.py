"""Reusable streaming-ingestion benchmark harness.

One function, :func:`run_stream_bench`, drives the whole streaming tier
end to end — synthetic city → :class:`~repro.synth.stream.FixEventStream`
→ bus → online extractor → sharded merge → gate-checked promotion into a
live serving tier under concurrent query load — and returns the JSON
payload ``repro stream-bench`` writes as ``BENCH_stream.json``.  The CLI
command and ``benchmarks/bench_stream.py`` both call this, so the CI
smoke gate and the recorded benchmark measure the same code path.

The payload carries the three acceptance signals directly:

* ``ingest`` — sustained events/sec plus the exhaustive outcome
  accounting; ``ingest.lost`` is ``late + shed`` and the zero-loss gate
  is ``ingest.lost == 0``.
* ``freshness`` — exact (not bucket-approximated) p50/p95 of
  event-arrival → servable-snapshot lag, sampled at every promotion.
* ``parity`` — the recorded accepted fixes replayed through the batch
  :func:`~repro.trajectory.detect_stay_points`, compared field-for-field
  against the online extractor's emissions.
* ``poison`` — a drifted batch injected after the main run; the gate
  must reject it and the served snapshot version must not move.
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict
from dataclasses import asdict, dataclass
from typing import Any, Sequence

import numpy as np

from repro.geo import Point
from repro.obs import SLO
from repro.stream.bus import OverflowPolicy, StreamBus
from repro.stream.events import GpsFix
from repro.stream.extractor import (
    EmittedStay,
    OnlineExtractorConfig,
    OnlineStayExtractor,
)
from repro.stream.ingest import StreamIngestor
from repro.stream.merge import ShardedPoolMerger
from repro.stream.metrics import StreamMetrics
from repro.stream.scheduler import GateConfig, RefreshScheduler
from repro.synth import (
    EventStreamConfig,
    FixEventStream,
    build_day_streams,
    downbj_config,
    generate_dataset,
    subbj_config,
    tiny_config,
)
from repro.trajectory import TrajPoint, Trajectory, detect_stay_points

_PRESETS = {
    "tiny": lambda scale, seed: tiny_config(seed=seed),
    "downbj": lambda scale, seed: downbj_config(scale=scale, seed=seed),
    "subbj": lambda scale, seed: subbj_config(scale=scale, seed=seed),
}

#: Poison geometry: a grid of far-off dwell sites well outside any synth
#: city (blocks are a few hundred meters; 50 km is unambiguous), each
#: visited for a dwell long enough to land in DURATION_EDGES' top bin.
_POISON_OFFSET_M = 50_000.0
_POISON_DWELL_S = 7_200.0
_POISON_SAMPLING_S = 120.0


@dataclass(frozen=True)
class StreamBenchConfig:
    """Everything :func:`run_stream_bench` needs, JSON-serializable."""

    preset: str = "tiny"
    scale: float = 1.0
    seed: int = 0
    duration_s: float = 4.0
    event_rate: float = 0.0          # events/s offered; 0 = max speed
    serve_rate_rps: float = 100.0    # concurrent query load; 0 disables
    backend: str = "thread"          # thread | process
    workers: int = 2
    refresh_interval_s: float = 0.5
    bus_capacity: int = 8192
    overflow: str = "block"
    lateness_s: float = 30.0
    disorder_s: float = 20.0
    p_duplicate: float = 0.02
    # Replay compresses days of event time into seconds of wall time, so
    # any finite idle timeout would evict mid-template couriers and split
    # their windows — parity is only claimed gap-free, hence 30 days.
    idle_timeout_s: float = 30 * 86_400.0
    warmup_promotions: int = 2
    # Replay compression squeezes whole diurnal phases into single ticks,
    # so batch-vs-history PSI runs hot on legitimate data (~0.5 observed);
    # poison scores ~5-9.  1.0 separates them with margin on both sides.
    # Deployments at real-time rates keep GateConfig's 0.25 default.
    psi_threshold: float = 1.0
    poison: bool = True
    n_poison_sites: int = 32
    parity_check: bool = True
    snapshot_dir: str | None = None  # required for backend=process
    # When set, the flight recorder dumps a black box here on every gate
    # refusal / anomaly during the run (the poison probe should yield
    # exactly one).  None leaves the process-global recorder untouched.
    blackbox_dir: str | None = None


def _poison_fixes(
    projection, t_start: float, n_sites: int
) -> list[GpsFix]:
    """Dwells at far-off sites: long, heavy, and spatially alien."""
    fixes: list[GpsFix] = []
    for k in range(n_sites):
        x = _POISON_OFFSET_M + (k % 8) * 500.0
        y = _POISON_OFFSET_M + (k // 8) * 500.0
        courier = f"poison-{k}"
        t = t_start
        while t <= t_start + _POISON_DWELL_S:
            lng, lat = projection.to_lnglat(x, y)
            fixes.append(GpsFix(courier, float(lng), float(lat), t))
            t += _POISON_SAMPLING_S
    return fixes


def _batch_reference(
    fixes: list[GpsFix], stay_config
) -> list[tuple]:
    """Replay recorded accepted fixes through the batch detector."""
    by_courier: dict[str, list[GpsFix]] = defaultdict(list)
    for fix in fixes:
        by_courier[fix.courier_id].append(fix)
    stays = []
    for courier_id in sorted(by_courier):
        pts = sorted(by_courier[courier_id], key=lambda f: f.t)
        traj = Trajectory(
            courier_id, [TrajPoint(f.lng, f.lat, f.t) for f in pts]
        )
        stays.extend(detect_stay_points(traj, stay_config))
    return [
        (s.courier_id, s.lng, s.lat, s.t_arrive, s.t_leave, s.n_points)
        for s in stays
    ]


def run_stream_bench(
    config: StreamBenchConfig,
    slos: Sequence[SLO] = (),
    promote_factory=None,
) -> dict[str, Any]:
    """Run the full streaming pipeline and return the report payload.

    ``promote_factory``, when given, is called with
    ``(dataset, initial_locations)`` and must return a
    ``(promote, current_version, close, server)`` tuple — this is how
    the CLI plugs in the thread/process serving backends (``server`` is
    the query target for the concurrent load generator; it may be None
    to skip serve load).  The default builds an in-process
    :class:`~repro.serve.QueryServer`.
    """
    from repro.serve import (
        LoadGenerator,
        QueryServer,
        ServerConfig,
        ShardedLocationStore,
    )

    cfg = config
    if cfg.preset not in _PRESETS:
        raise ValueError(f"unknown preset: {cfg.preset!r}")
    if cfg.blackbox_dir:
        from repro.obs import configure_recorder

        configure_recorder(dump_dir=cfg.blackbox_dir)
    dataset = generate_dataset(_PRESETS[cfg.preset](cfg.scale, cfg.seed))
    day_streams = build_day_streams(
        dataset.sim_trips, dataset.city,
        rng=np.random.default_rng(cfg.seed),
    )
    events = FixEventStream(
        day_streams,
        seed=cfg.seed,
        config=EventStreamConfig(
            disorder_s=cfg.disorder_s, p_duplicate=cfg.p_duplicate
        ),
    )
    geocodes = {aid: a.geocode for aid, a in dataset.addresses.items()}

    server = None
    if promote_factory is not None:
        promote, current_version, close_backend, server = promote_factory(
            dataset, geocodes
        )
    else:
        store = ShardedLocationStore(geocodes, dataset.addresses)
        server = QueryServer(store, ServerConfig(n_workers=2)).start()

        def promote(locations: dict[str, Point]) -> int:
            return server.apply_refresh(locations)

        def current_version() -> int:
            return server.store.version

        def close_backend() -> None:
            server.stop()

    obs_dir = None
    if cfg.backend == "process" and cfg.snapshot_dir:
        obs_dir = str(cfg.snapshot_dir) + "/obs"
    metrics = StreamMetrics(obs_dir=obs_dir)
    bus = StreamBus(
        capacity=cfg.bus_capacity, policy=OverflowPolicy(cfg.overflow)
    )
    emitted_log: list[EmittedStay] = []
    extractor = OnlineStayExtractor(
        OnlineExtractorConfig(
            lateness_s=cfg.lateness_s, idle_timeout_s=cfg.idle_timeout_s
        ),
        on_stay=emitted_log.append,
    )
    ingestor = StreamIngestor(
        bus, extractor, metrics, record_fixes=cfg.parity_check
    )
    freshness_samples: list[float] = []
    _observe = metrics.observe_freshness

    def observe_and_record(seconds: float) -> None:
        freshness_samples.append(seconds)
        _observe(seconds)

    metrics.observe_freshness = observe_and_record  # type: ignore[method-assign]
    scheduler = RefreshScheduler(
        ingestor,
        merger=ShardedPoolMerger(dataset.city.projection),
        metrics=metrics,
        addresses=geocodes,
        promote=promote,
        slos=slos,
        gate=GateConfig(
            psi_threshold=cfg.psi_threshold,
            warmup_promotions=cfg.warmup_promotions,
        ),
        interval_s=cfg.refresh_interval_s,
    )

    stop_producer = threading.Event()
    produced = {"n": 0, "wall": 0.0, "max_t": 0.0}

    def produce() -> None:
        t0 = time.perf_counter()
        interval = 1.0 / cfg.event_rate if cfg.event_rate > 0 else 0.0
        next_at = t0
        for fix in events:
            if stop_producer.is_set():
                break
            if time.perf_counter() - t0 >= cfg.duration_s:
                break
            if interval:
                delay = next_at - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                next_at += interval
            ingestor.offer(fix, timeout_s=5.0)
            produced["n"] += 1
            produced["max_t"] = max(produced["max_t"], fix.t)
        produced["wall"] = time.perf_counter() - t0

    ingestor.start()
    scheduler.start()
    producer = threading.Thread(target=produce, name="stream-producer")
    t_run0 = time.perf_counter()
    producer.start()
    serve_report = None
    if cfg.serve_rate_rps > 0 and server is not None:
        import random as _random

        generator = LoadGenerator(
            server, sorted(dataset.addresses), _random.Random(cfg.seed)
        )
        serve_report = generator.run_open(
            rate_rps=cfg.serve_rate_rps, duration_s=cfg.duration_s
        )
    producer.join(timeout=cfg.duration_s + 30.0)
    stop_producer.set()
    deadline = time.monotonic() + 30.0
    while len(bus) and time.monotonic() < deadline:
        time.sleep(0.01)
    # Stop the background loop and promote the in-order tail before the
    # poison probe, so the probe's rejection verdict is unambiguous.
    scheduler.stop(final_tick=True)
    ingest_wall = time.perf_counter() - t_run0

    poison_result = None
    if cfg.poison:
        version_before = current_version()
        promoted_before = scheduler.n_promoted
        fixes = _poison_fixes(
            dataset.city.projection,
            t_start=produced["max_t"] + 120.0,
            n_sites=cfg.n_poison_sites,
        )
        for fix in fixes:
            ingestor.offer(fix, timeout_s=5.0)
        deadline = time.monotonic() + 30.0
        while len(bus) and time.monotonic() < deadline:
            time.sleep(0.01)
        ingestor.close(flush=True)
        record = scheduler.tick()
        poison_result = {
            "n_fixes": len(fixes),
            "armed": promoted_before >= cfg.warmup_promotions,
            "outcome": record.outcome,
            "reason": record.reason,
            "rejected": record.outcome.startswith("rejected"),
            "version_before": version_before,
            "version_after": current_version(),
            "served_version_unchanged":
                current_version() == version_before,
        }
    else:
        ingestor.close(flush=True)
        scheduler.tick()

    parity = None
    if cfg.parity_check:
        online = sorted(
            (
                (e.stay.courier_id, e.stay.lng, e.stay.lat,
                 e.stay.t_arrive, e.stay.t_leave, e.stay.n_points)
                for e in emitted_log
            ),
        )
        reference = sorted(
            _batch_reference(
                ingestor.recorded_fixes(), extractor.config.stay
            )
        )
        parity = {
            "n_online": len(online),
            "n_batch": len(reference),
            "equal": online == reference,
        }

    counts = metrics.event_counts()
    fr = np.array(freshness_samples) if freshness_samples else np.array([])
    promo_counts = {
        outcome: sum(1 for r in scheduler.records if r.outcome == outcome)
        for outcome in {r.outcome for r in scheduler.records}
    }
    payload: dict[str, Any] = {
        "config": asdict(cfg),
        "ingest": {
            "offered": ingestor.n_offered,
            **{k: int(v) for k, v in counts.items()},
            "lost": int(metrics.n_lost()),
            "wall_s": produced["wall"],
            "events_per_sec": (
                produced["n"] / produced["wall"] if produced["wall"] else 0.0
            ),
            "stays_emitted": len(emitted_log),
            "courier_states_evicted": extractor.n_evicted,
        },
        "freshness": {
            "n_samples": int(fr.size),
            "p50_s": float(np.percentile(fr, 50)) if fr.size else None,
            "p95_s": float(np.percentile(fr, 95)) if fr.size else None,
            "max_s": float(fr.max()) if fr.size else None,
        },
        "promotions": {
            "n_promoted": scheduler.n_promoted,
            "n_rejected": scheduler.n_rejected,
            "by_outcome": promo_counts,
            "final_version": current_version(),
        },
        "audit": scheduler.audit_trail(),
        "parity": parity,
        "poison": poison_result,
        "serve": serve_report.to_dict() if serve_report else None,
        "zero_loss": metrics.n_lost() == 0,
    }
    if cfg.blackbox_dir:
        import glob as _glob
        import os as _os

        payload["blackbox"] = {
            "dir": cfg.blackbox_dir,
            "dumps": sorted(_glob.glob(
                _os.path.join(cfg.blackbox_dir, "blackbox-*.json")
            )),
        }
    if obs_dir:
        # Persist the serving tier's provenance ring next to the worker
        # files so post-run `repro explain` sees thread-backend answers too.
        from repro.obs import get_provenance_ring

        ring = get_provenance_ring()
        if len(ring) > 0:
            try:
                import os as _os

                ring.write_jsonl(
                    _os.path.join(obs_dir, "provenance-router.jsonl")
                )
            except OSError:
                pass
    metrics.close()
    close_backend()
    return payload


__all__ = ["StreamBenchConfig", "run_stream_bench"]
