"""Online windowed stay-point extraction over an unbounded fix stream.

This is the streaming twin of :func:`repro.trajectory.detect_stay_points`
(Definition 4 / Li et al. 2008), restructured as a per-courier state
machine so stays are emitted *incrementally* instead of after the full
trajectory is known:

* **Reorder buffer + watermark.**  Fixes may arrive out of order within
  a bounded lateness ``lateness_s`` (the stay-point map-matching
  literature's windowed formulation).  Per courier, arriving fixes sit
  in a small sorted buffer; the courier's watermark is
  ``max_event_time_seen - lateness_s``, and only fixes at or behind the
  watermark are fed — in event-time order — to the detector.  A fix
  arriving behind an already-advanced watermark is *late* (dropped,
  counted); a fix whose ``(courier, t)`` was already seen is a
  *duplicate* (dropped, counted, not loss).
* **Anchor-window detector.**  The detector replays the batch
  algorithm's exact decision sequence on the in-order feed: a window of
  fixes all within ``d_max_m`` of its first fix (the anchor); the first
  fix that breaks the radius closes the window — emit a stay if the
  closed span lasted ``t_min_s``, else advance the anchor by one and
  re-scan, exactly as the batch inner loop restarts.  Centroids use the
  same ``np.mean`` over the same values in the same order, and the
  local projection is anchored at the courier's first in-order fix —
  the batch anchor — so replaying a finite stream reproduces
  :func:`detect_stay_points` bit for bit (the parity tests assert
  equality, not closeness).
* **Idle eviction.**  A courier silent for ``idle_timeout_s`` of event
  time is flushed (its open window finalized exactly as a batch
  trajectory ending there) and its state freed, bounding memory by the
  *active* courier count, not the all-time one.  A later fix from an
  evicted courier starts a fresh state; parity with a single batch
  trajectory therefore holds whenever the courier's largest silent gap
  is shorter than ``idle_timeout_s``.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

import numpy as np

from repro.geo import LocalProjection, Point
from repro.stream.events import GpsFix, IngestOutcome
from repro.trajectory import StayPoint, StayPointConfig

#: Minimum recently-flushed timestamps retained per courier for
#: duplicate detection, regardless of the lateness horizon.
_RECENT_MIN = 64


@dataclass(frozen=True)
class OnlineExtractorConfig:
    """Thresholds for :class:`OnlineStayExtractor`.

    ``lateness_s`` is the out-of-order tolerance (watermark distance);
    ``idle_timeout_s`` bounds courier-state lifetime in *event* time.
    """

    stay: StayPointConfig = field(default_factory=StayPointConfig)
    lateness_s: float = 60.0
    idle_timeout_s: float = 6 * 3600.0

    def __post_init__(self) -> None:
        if self.lateness_s < 0:
            raise ValueError("lateness_s must be >= 0")
        if self.idle_timeout_s <= 0:
            raise ValueError("idle_timeout_s must be positive")


@dataclass(frozen=True)
class EmittedStay:
    """A stay plus the arrival wall-clock anchor for freshness lag.

    ``wall_t`` is the *latest* arrival time among the fixes the stay
    contains — the earliest instant the pipeline could possibly have
    known the stay, so ``servable_wall - wall_t`` honestly charges the
    watermark dwell and every downstream hop to the freshness budget.
    """

    stay: StayPoint
    wall_t: float


class _WindowFix:
    """One projected fix inside a courier's open window."""

    __slots__ = ("x", "y", "t", "wall_t")

    def __init__(self, x: float, y: float, t: float, wall_t: float) -> None:
        self.x = x
        self.y = y
        self.t = t
        self.wall_t = wall_t


class _CourierState:
    """Reorder buffer, projection, and open detector window of one courier."""

    __slots__ = (
        "courier_id", "projection", "pending", "pending_ts", "window",
        "max_t", "last_flushed_t", "recent_flushed",
    )

    def __init__(self, courier_id: str) -> None:
        self.courier_id = courier_id
        self.projection: LocalProjection | None = None
        #: Not-yet-flushed fixes, kept sorted by event time.
        self.pending: list[GpsFix] = []
        self.pending_ts: set[float] = set()
        #: The open detector window (every fix within d_max of window[0]).
        self.window: list[_WindowFix] = []
        self.max_t = float("-inf")
        self.last_flushed_t = float("-inf")
        #: Recently flushed event times, for duplicate-vs-late telling.
        self.recent_flushed: list[float] = []


class OnlineStayExtractor:
    """Per-courier incremental stay-point detection with watermarks."""

    def __init__(
        self,
        config: OnlineExtractorConfig | None = None,
        on_stay=None,
    ) -> None:
        self.config = config or OnlineExtractorConfig()
        self.on_stay = on_stay
        self._states: dict[str, _CourierState] = {}
        self._d2_max = self.config.stay.d_max_m ** 2
        self.n_evicted = 0
        self.n_fixes_processed = 0

    # -- introspection ---------------------------------------------------
    @property
    def n_states(self) -> int:
        return len(self._states)

    def pending_depth(self) -> int:
        return sum(len(s.pending) + len(s.window)
                   for s in self._states.values())

    # -- ingest ----------------------------------------------------------
    def ingest(self, fix: GpsFix) -> tuple[IngestOutcome, list[EmittedStay]]:
        """Classify one fix and return any stays its arrival finalized."""
        state = self._states.get(fix.courier_id)
        if state is None:
            state = self._states[fix.courier_id] = _CourierState(
                fix.courier_id
            )
        if fix.t in state.pending_ts:
            return IngestOutcome.DUPLICATE, []
        if fix.t <= state.last_flushed_t:
            if fix.t in state.recent_flushed:
                return IngestOutcome.DUPLICATE, []
            return IngestOutcome.LATE, []
        bisect.insort(state.pending, fix, key=lambda f: f.t)
        state.pending_ts.add(fix.t)
        state.max_t = max(state.max_t, fix.t)
        emitted = self._flush_watermarked(state)
        return IngestOutcome.ACCEPTED, emitted

    def _flush_watermarked(self, state: _CourierState) -> list[EmittedStay]:
        """Feed fixes at or behind the watermark to the detector, in order."""
        watermark = state.max_t - self.config.lateness_s
        emitted: list[EmittedStay] = []
        while state.pending and state.pending[0].t <= watermark:
            fix = state.pending.pop(0)
            state.pending_ts.discard(fix.t)
            self._feed(state, fix, emitted)
        # Prune the duplicate-detection memory to the lateness horizon,
        # but always keep a fixed tail: a duplicate re-sent a few events
        # after its original can straddle an arbitrarily large event-time
        # jump (end of a courier's day), and it must still read as
        # DUPLICATE, not LATE.
        horizon = watermark - self.config.lateness_s
        if state.recent_flushed and state.recent_flushed[0] < horizon:
            keep = bisect.bisect_left(state.recent_flushed, horizon)
            keep = min(keep, max(0, len(state.recent_flushed) - _RECENT_MIN))
            del state.recent_flushed[:keep]
        return emitted

    def _feed(
        self, state: _CourierState, fix: GpsFix, emitted: list[EmittedStay]
    ) -> None:
        """One in-order fix through the anchor-window detector."""
        state.last_flushed_t = fix.t
        state.recent_flushed.append(fix.t)
        self.n_fixes_processed += 1
        if state.projection is None:
            # Same plane as the batch path: anchored at the trajectory's
            # first fix.  Scalar to_xy runs the identical float64 ops as
            # the vectorized call, so coordinates match bit for bit.
            state.projection = LocalProjection(Point(fix.lng, fix.lat))
        x, y = state.projection.to_xy(fix.lng, fix.lat)
        state.window.append(_WindowFix(float(x), float(y), fix.t, fix.wall_t))
        self._drain_window(state, emitted, final=False)

    def _drain_window(
        self, state: _CourierState, emitted: list[EmittedStay], final: bool
    ) -> None:
        """Replay the batch algorithm's decisions over the open window.

        Invariant on entry (non-final): every window fix except possibly
        the last is within ``d_max`` of the anchor.  The loop restores
        the invariant after each anchor move, emitting stays exactly
        where the batch loop would.
        """
        win = state.window
        while len(win) >= 2:
            anchor = win[0]
            violation = None
            for idx in range(1, len(win)):
                dx = win[idx].x - anchor.x
                dy = win[idx].y - anchor.y
                if dx * dx + dy * dy > self._d2_max:
                    violation = idx
                    break
            if violation is None:
                if not final:
                    return  # window still open: need a fix outside it
                # Stream end: the batch loop's trailing-window rule.
                if win[-1].t - win[0].t >= self.config.stay.t_min_s:
                    self._emit(state, win[:], emitted)
                    win.clear()
                    return
                win.pop(0)
            elif win[violation - 1].t - win[0].t >= self.config.stay.t_min_s:
                self._emit(state, win[:violation], emitted)
                del win[:violation]
            else:
                win.pop(0)

    def _emit(
        self,
        state: _CourierState,
        fixes: list[_WindowFix],
        emitted: list[EmittedStay],
    ) -> None:
        assert state.projection is not None
        # np.mean over the same float64 values in the same order as the
        # batch slice mean — pairwise summation, identical result.
        cx = float(np.mean(np.array([f.x for f in fixes], dtype=float)))
        cy = float(np.mean(np.array([f.y for f in fixes], dtype=float)))
        clng, clat = state.projection.to_lnglat(cx, cy)
        stay = StayPoint(
            lng=float(clng),
            lat=float(clat),
            t_arrive=float(fixes[0].t),
            t_leave=float(fixes[-1].t),
            courier_id=state.courier_id,
            n_points=len(fixes),
        )
        record = EmittedStay(stay, max(f.wall_t for f in fixes))
        emitted.append(record)
        if self.on_stay is not None:
            self.on_stay(record)

    # -- flush / eviction -----------------------------------------------
    def _finalize(self, state: _CourierState) -> list[EmittedStay]:
        """Drain a courier as if its trajectory ended here."""
        emitted: list[EmittedStay] = []
        while state.pending:
            fix = state.pending.pop(0)
            state.pending_ts.discard(fix.t)
            self._feed(state, fix, emitted)
        self._drain_window(state, emitted, final=True)
        state.window.clear()
        return emitted

    def flush(self, courier_id: str) -> list[EmittedStay]:
        """Finalize one courier's stream, keeping an empty state behind."""
        state = self._states.get(courier_id)
        if state is None:
            return []
        return self._finalize(state)

    def flush_all(self) -> list[EmittedStay]:
        """Finalize every courier (stream end / shutdown)."""
        emitted: list[EmittedStay] = []
        for state in self._states.values():
            emitted.extend(self._finalize(state))
        return emitted

    def evict_idle(self, now_event_t: float) -> list[EmittedStay]:
        """Finalize and drop couriers idle past ``idle_timeout_s``.

        ``now_event_t`` is the stream's global event-time high mark; a
        courier whose newest fix is older than the timeout has its open
        window closed (stays emitted) and its state freed.
        """
        cutoff = now_event_t - self.config.idle_timeout_s
        emitted: list[EmittedStay] = []
        for courier_id in [
            cid for cid, s in self._states.items() if s.max_t < cutoff
        ]:
            emitted.extend(self._finalize(self._states.pop(courier_id)))
            self.n_evicted += 1
        return emitted


__all__ = [
    "EmittedStay",
    "OnlineExtractorConfig",
    "OnlineStayExtractor",
]
