"""repro.stream — continuous trajectory→pool→refresh pipeline.

The streaming twin of the batch ``update`` path (ROADMAP item 3): GPS
fixes enter a bounded :class:`StreamBus`, the
:class:`OnlineStayExtractor` turns them into stay points incrementally
(watermark-ordered, parity-exact with the batch detector on replayed
streams), the :class:`ShardedPoolMerger` folds stays into a spatially
sharded candidate pool with two-phase commit, and the
:class:`RefreshScheduler` promotes a new servable snapshot version only
when the drift and SLO gates pass — with a full audit trail for the
refreshes it refuses.

See ``docs/streaming.md`` for the event model, watermark semantics,
promotion gates, and failure modes.
"""

from repro.stream.bus import OverflowPolicy, PublishResult, StreamBus
from repro.stream.events import GpsFix, IngestOutcome
from repro.stream.extractor import (
    EmittedStay,
    OnlineExtractorConfig,
    OnlineStayExtractor,
)
from repro.stream.ingest import StreamIngestor
from repro.stream.merge import ShardedPoolMerger, StagedBatch
from repro.stream.metrics import (
    FRESHNESS_BUCKETS,
    PROMOTION_OUTCOMES,
    StreamMetrics,
    stream_plane_specs,
)
from repro.stream.scheduler import (
    GateConfig,
    PromotionRecord,
    RefreshScheduler,
    stream_fingerprint,
)

__all__ = [
    "FRESHNESS_BUCKETS",
    "PROMOTION_OUTCOMES",
    "EmittedStay",
    "GateConfig",
    "GpsFix",
    "IngestOutcome",
    "OnlineExtractorConfig",
    "OnlineStayExtractor",
    "OverflowPolicy",
    "PromotionRecord",
    "PublishResult",
    "RefreshScheduler",
    "ShardedPoolMerger",
    "StagedBatch",
    "StreamBus",
    "StreamIngestor",
    "StreamMetrics",
    "stream_fingerprint",
    "stream_plane_specs",
]
