"""Bounded in-process event bus with explicit backpressure.

A :class:`StreamBus` is the admission edge of the streaming tier: a
bounded deque of :class:`~repro.stream.events.GpsFix` guarded by one
condition variable.  Producers call :meth:`publish`; when the bus is
full the configured :class:`OverflowPolicy` decides what gives:

* ``BLOCK`` — the producer waits (bounded by ``timeout_s``) until the
  consumer drains a slot; on timeout the fix is shed.  This is classic
  backpressure: a sustained overload slows the *source*, not the
  pipeline.
* ``SHED_NEWEST`` — the offered fix is dropped immediately (the queue
  keeps its oldest work; freshness suffers last).
* ``SHED_OLDEST`` — the oldest queued fix is dropped to admit the new
  one (freshness wins; the dropped fix is returned so the caller can
  count it).

Shedding is always *observable*: every publish returns what happened,
and the ingestor folds the outcome into ``stream_events_total``.  The
bus never silently loses an event.
"""

from __future__ import annotations

import enum
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.stream.events import GpsFix


class OverflowPolicy(enum.Enum):
    BLOCK = "block"
    SHED_NEWEST = "shed_newest"
    SHED_OLDEST = "shed_oldest"


@dataclass(frozen=True)
class PublishResult:
    """What happened to one offered fix (plus any displaced victim)."""

    admitted: bool
    shed: tuple[GpsFix, ...] = field(default_factory=tuple)

    @property
    def n_shed(self) -> int:
        return len(self.shed) + (0 if self.admitted else 1)


class StreamBus:
    """Bounded MPSC queue for GPS fixes with stamped arrival times."""

    def __init__(
        self,
        capacity: int = 8192,
        policy: OverflowPolicy = OverflowPolicy.BLOCK,
        block_timeout_s: float = 1.0,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self.policy = policy
        self.block_timeout_s = block_timeout_s
        self._q: deque[GpsFix] = deque()
        self._cond = threading.Condition()
        self._closed = False
        self.n_published = 0
        self.n_shed = 0

    def __len__(self) -> int:
        return len(self._q)

    @property
    def closed(self) -> bool:
        return self._closed

    def publish(self, fix: GpsFix, timeout_s: float | None = None) -> PublishResult:
        """Offer one fix; stamps ``wall_t`` on admission.

        Raises :class:`RuntimeError` if the bus is closed — a producer
        racing shutdown should see a hard error, not silent loss.
        """
        with self._cond:
            if self._closed:
                raise RuntimeError("bus is closed")
            if len(self._q) >= self.capacity:
                if self.policy is OverflowPolicy.BLOCK:
                    deadline = time.monotonic() + (
                        timeout_s if timeout_s is not None
                        else self.block_timeout_s
                    )
                    while len(self._q) >= self.capacity and not self._closed:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0 or not self._cond.wait(remaining):
                            break
                    if self._closed:
                        raise RuntimeError("bus is closed")
                    if len(self._q) >= self.capacity:
                        self.n_shed += 1
                        return PublishResult(admitted=False)
                elif self.policy is OverflowPolicy.SHED_NEWEST:
                    self.n_shed += 1
                    return PublishResult(admitted=False)
                else:  # SHED_OLDEST
                    victim = self._q.popleft()
                    self.n_shed += 1
                    self._admit(fix)
                    return PublishResult(admitted=True, shed=(victim,))
            self._admit(fix)
            return PublishResult(admitted=True)

    def _admit(self, fix: GpsFix) -> None:
        stamped = GpsFix(fix.courier_id, fix.lng, fix.lat, fix.t,
                         wall_t=time.time())
        self._q.append(stamped)
        self.n_published += 1
        self._cond.notify_all()

    def take_batch(
        self, max_n: int = 256, timeout_s: float = 0.1
    ) -> list[GpsFix]:
        """Up to ``max_n`` fixes in arrival order; waits up to
        ``timeout_s`` for the first one.  Empty list on timeout or when
        the bus closed empty."""
        deadline = time.monotonic() + timeout_s
        with self._cond:
            while not self._q and not self._closed:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._cond.wait(remaining):
                    break
            out = []
            while self._q and len(out) < max_n:
                out.append(self._q.popleft())
            if out:
                self._cond.notify_all()
            return out

    def close(self) -> None:
        """Stop admitting; queued fixes remain drainable."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()


__all__ = ["OverflowPolicy", "PublishResult", "StreamBus"]
