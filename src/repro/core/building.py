"""Building-level delivery-location inference.

The paper chooses address-level inference (addresses in the same building
can have different delivery locations) but notes the solution "can also be
easily adapted to building-level inference" — that adaptation lives here.
A building's candidate set is the time-bounded union over all trips
involving any of its addresses; TC is computed against those trips; the
distance feature uses the centroid of member geocodes; the deployed store
uses these for addresses never seen in history.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.core.features import (
    AddressExample,
    COL_COURIERS,
    COL_DIST,
    COL_DURATION,
    COL_LC_ADDRESS,
    COL_LC_BUILDING,
    COL_TC,
    FeatureExtractor,
    HIST_START,
    N_FEATURES,
)
from repro.geo import Point

#: Prefix distinguishing building pseudo-examples from address examples.
BUILDING_PREFIX = "B::"


def building_members(extractor: FeatureExtractor, building_id: str) -> list[str]:
    """Delivered addresses belonging to ``building_id``."""
    return sorted(
        address_id
        for address_id, address in extractor.addresses.items()
        if address.building_id == building_id
        and address_id in extractor.trips_by_address
    )


def retrieve_building_candidates(
    extractor: FeatureExtractor, building_id: str
) -> list[int]:
    """Union of time-bounded candidate visits over the building's trips."""
    members = set(building_members(extractor, building_id))
    if not members:
        return []
    found: set[int] = set()
    for trip_id in sorted(extractor.trips_by_building.get(building_id, ())):
        trip = extractor.trips[trip_id]
        bound = max(
            (w.t_delivered for w in trip.waybills if w.address_id in members),
            default=None,
        )
        if bound is None:
            continue
        for visit in extractor.visits_by_trip.get(trip_id, ()):
            if visit.t <= bound:
                found.add(visit.candidate_id)
    return sorted(found)


def build_building_example(
    extractor: FeatureExtractor, building_id: str
) -> AddressExample | None:
    """A building-level pseudo-example compatible with any selector."""
    members = building_members(extractor, building_id)
    if not members:
        return None
    candidate_ids = retrieve_building_candidates(extractor, building_id)
    if not candidate_ids:
        return None
    building_trips = extractor.trips_by_building.get(building_id, set())
    n_other = extractor.n_trips - len(building_trips)

    # Geocode centroid and modal POI category over member addresses.
    geo_xy = np.array([extractor._geocode_xy(a) for a in members])
    gx, gy = geo_xy.mean(axis=0)
    poi = Counter(extractor.addresses[a].poi_category for a in members).most_common(1)[0][0]

    features = np.zeros((len(candidate_ids), N_FEATURES))
    for row, cid in enumerate(candidate_ids):
        trips_through = extractor.trips_by_candidate.get(cid, set())
        tc = len(trips_through & building_trips) / len(building_trips)
        lc = len(trips_through - building_trips) / n_other if n_other > 0 else 0.0
        candidate = extractor.pool.by_id[cid]
        profile = extractor.profiles[cid]
        features[row, COL_TC] = tc
        features[row, COL_LC_BUILDING] = lc
        features[row, COL_LC_ADDRESS] = lc  # identical at building level
        features[row, COL_DIST] = float(np.hypot(candidate.x - gx, candidate.y - gy))
        features[row, COL_DURATION] = profile.avg_duration_s
        features[row, COL_COURIERS] = profile.n_couriers
        features[row, HIST_START:] = profile.time_hist
    return AddressExample(
        address_id=f"{BUILDING_PREFIX}{building_id}",
        candidate_ids=candidate_ids,
        features=features,
        n_deliveries=len(building_trips),
        poi_category=poi,
    )


def infer_building_locations(
    extractor: FeatureExtractor, selector, building_ids: list[str]
) -> dict[str, Point]:
    """Selector-driven building-level inference for the fallback store."""
    out: dict[str, Point] = {}
    for building_id in building_ids:
        example = build_building_example(extractor, building_id)
        if example is None:
            continue
        index = selector.predict_index(example)
        out[building_id] = extractor.candidate_point(example.candidate_ids[index])
    return out
