"""LocMatcher: attention-based address-location matching (Section IV-B).

Per candidate, the 24-bin time distribution passes through a dense layer
with ``r`` neurons, is concatenated with the remaining profile + matching
features, and is projected to a ``z``-dimensional representation.  A
transformer encoder models correlations among the (orderless,
variable-size) candidate set.  An additive attention (Eq. 3) scores each
location embedding against a context vector built from the address features
(POI-category embedding + number of deliveries); a masked softmax (Eq. 4)
yields the selection distribution, trained with cross-entropy.

The DLInfMA-PN variant swaps the transformer for an LSTM (as pointer
networks do); the DLInfMA-nA ablation drops the ``U c`` context term.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.features import AddressExample, FeatureConfig
from repro.ml import StandardScaler
from repro.obs import event, get_registry
from repro.obs import span as obs_span
from repro.nn import (
    Adam,
    Dropout,
    Embedding,
    Linear,
    LSTM,
    Module,
    StepLR,
    Tensor,
    TransformerEncoder,
    cat,
    clip_grad_norm,
)
from repro.nn.functional import cross_entropy, masked_softmax
from repro.synth.city import N_POI_CATEGORIES

#: Gradient L2 norms are unitless and span decades; log-ish bucket bounds.
GRAD_NORM_BUCKETS = (0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0)


@dataclass(frozen=True)
class LocMatcherConfig:
    """Model + training hyperparameters.

    Architecture values follow the paper (r=3, z=8, p=32, 3 layers, 2
    heads, 32 FFN neurons, dropout 0.1, batch 16).  The optimization
    schedule is re-tuned for dataset scale: the paper trains on ~10^5
    addresses with lr 1e-4 halved every 5 epochs; our synthetic datasets
    have ~10^2, so the learning rate is higher, the decay slower, and more
    epochs are allowed (early stopping still governs)."""

    r: int = 3
    z: int = 8
    p: int = 32
    n_layers: int = 3
    n_heads: int = 2
    d_ff: int = 32
    dropout: float = 0.1
    poi_dim: int = 3
    lr: float = 3e-3
    batch_size: int = 16
    max_epochs: int = 300
    lr_step: int = 30
    lr_gamma: float = 0.5
    patience: int = 40
    grad_clip_norm: float | None = 5.0
    encoder: str = "transformer"  # or "lstm" (DLInfMA-PN)
    lstm_hidden: int = 32
    seed: int = 0

    def __post_init__(self) -> None:
        if self.encoder not in ("transformer", "lstm"):
            raise ValueError("encoder must be 'transformer' or 'lstm'")


class LocMatcherNet(Module):
    """The neural network itself (framework-level module)."""

    def __init__(
        self,
        n_scalar: int,
        hist_dim: int,
        config: LocMatcherConfig,
        use_address_context: bool = True,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(config.seed)
        self.config = config
        self.hist_dim = hist_dim
        self.use_address_context = use_address_context
        in_dim = n_scalar + (config.r if hist_dim else 0)
        if in_dim == 0:
            raise ValueError("model needs at least one candidate feature")
        self.hist_dense = Linear(hist_dim, config.r, rng=rng) if hist_dim else None
        self.input_dense = Linear(in_dim, config.z, rng=rng)
        if config.encoder == "transformer":
            self.encoder = TransformerEncoder(
                config.n_layers, config.z, config.n_heads, config.d_ff, config.dropout, rng=rng
            )
            enc_dim = config.z
        else:
            self.encoder = LSTM(config.z, config.lstm_hidden, rng=rng)
            enc_dim = config.lstm_hidden
        self.dropout = Dropout(config.dropout, rng=rng)
        # Additive attention (Eq. 3): s_k = v^T tanh(W z_k + U c + b).
        self.w = Linear(enc_dim, config.p, bias=True, rng=rng)
        self.v = Linear(config.p, 1, bias=False, rng=rng)
        if use_address_context:
            self.poi_embedding = Embedding(N_POI_CATEGORIES, config.poi_dim, rng=rng)
            m = config.poi_dim + 1  # + number of deliveries
            self.u = Linear(m, config.p, bias=False, rng=rng)
        else:
            self.poi_embedding = None
            self.u = None

    def forward(
        self,
        scalars: np.ndarray,  # (B, N, S)
        hist: np.ndarray | None,  # (B, N, hist_dim)
        mask: np.ndarray,  # (B, N) bool
        poi: np.ndarray,  # (B,)
        n_deliveries: np.ndarray,  # (B,) already normalized
    ) -> Tensor:
        """Raw matching scores ``(B, N)`` (mask applied downstream)."""
        parts = [Tensor(scalars)]
        if self.hist_dense is not None:
            if hist is None:
                raise ValueError("model was built with a time-histogram input")
            parts.append(self.hist_dense(Tensor(hist)).tanh())
        candidate_input = cat(parts, axis=-1) if len(parts) > 1 else parts[0]
        h = self.input_dense(candidate_input).relu()
        h = self.dropout(h)
        if self.config.encoder == "transformer":
            encoded = self.encoder(h, key_mask=mask)
        else:
            encoded, _ = self.encoder(h)
        pre = self.w(encoded)  # (B, N, p)
        if self.use_address_context:
            context = cat(
                [self.poi_embedding(poi), Tensor(n_deliveries.reshape(-1, 1))], axis=-1
            )  # (B, m)
            b, n, p = pre.shape
            pre = pre + self.u(context).reshape(b, 1, p)
        scores = self.v(pre.tanh())  # (B, N, 1)
        return scores.reshape(scores.shape[0], scores.shape[1])


class LocMatcherSelector:
    """Trains LocMatcher on labeled examples and scores candidate sets."""

    def __init__(
        self,
        feature_config: FeatureConfig | None = None,
        config: LocMatcherConfig | None = None,
    ) -> None:
        self.feature_config = feature_config or FeatureConfig()
        self.config = config or LocMatcherConfig()
        self.net: LocMatcherNet | None = None
        self.scaler = StandardScaler()
        self._deliv_mean = 0.0
        self._deliv_std = 1.0
        self.history: list[dict[str, float]] = []

    # ------------------------------------------------------------------
    def _split_features(self, example: AddressExample) -> tuple[np.ndarray, np.ndarray | None]:
        scalar_cols = self.feature_config.scalar_columns()
        hist_cols = self.feature_config.hist_columns()
        scalars = example.features[:, scalar_cols] if scalar_cols else np.zeros(
            (example.n_candidates, 0)
        )
        hist = example.features[:, hist_cols] if hist_cols else None
        return scalars, hist

    def _normalize_deliveries(self, values: np.ndarray) -> np.ndarray:
        return (np.log1p(values) - self._deliv_mean) / self._deliv_std

    def _make_batch(self, examples: list[AddressExample]):
        n_max = max(e.n_candidates for e in examples)
        scalar_cols = self.feature_config.scalar_columns()
        hist_cols = self.feature_config.hist_columns()
        b = len(examples)
        scalars = np.zeros((b, n_max, len(scalar_cols)))
        hist = np.zeros((b, n_max, len(hist_cols))) if hist_cols else None
        mask = np.zeros((b, n_max), dtype=bool)
        poi = np.zeros(b, dtype=int)
        deliveries = np.zeros(b)
        labels = np.zeros(b, dtype=int)
        for i, example in enumerate(examples):
            n = example.n_candidates
            raw_scalars, raw_hist = self._split_features(example)
            if raw_scalars.shape[1]:
                scalars[i, :n] = self.scaler.transform(raw_scalars)
            if hist is not None and raw_hist is not None:
                hist[i, :n] = raw_hist
            mask[i, :n] = True
            poi[i] = example.poi_category if self.feature_config.use_address else 0
            deliveries[i] = example.n_deliveries
            labels[i] = example.label if example.label is not None else 0
        deliveries = self._normalize_deliveries(deliveries)
        return scalars, hist, mask, poi, deliveries, labels

    # ------------------------------------------------------------------
    def fit(
        self,
        train: list[AddressExample],
        val: list[AddressExample] | None = None,
        warm_start: bool = False,
    ) -> "LocMatcherSelector":
        """Train until the validation loss stops improving.

        ``warm_start=True`` with a previously fitted net continues training
        from the current weights and keeps the existing feature
        normalization (the incremental-update path, Section VI-A); it is
        ignored on a fresh selector.
        """
        train = [e for e in train if e.label is not None]
        if not train:
            raise ValueError("no labeled training examples")
        val = [e for e in (val or []) if e.label is not None]
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)

        scalar_cols = self.feature_config.scalar_columns()
        warm = warm_start and self.net is not None
        if not warm:
            all_rows = (
                np.vstack([e.features[:, scalar_cols] for e in train]) if scalar_cols else None
            )
            if all_rows is not None and len(all_rows):
                self.scaler.fit(all_rows)
            logs = np.log1p([e.n_deliveries for e in train])
            self._deliv_mean = float(np.mean(logs))
            self._deliv_std = float(np.std(logs)) or 1.0

            self.net = LocMatcherNet(
                n_scalar=len(scalar_cols),
                hist_dim=len(self.feature_config.hist_columns()),
                config=cfg,
                use_address_context=self.feature_config.use_address,
            )
        optimizer = Adam(self.net.parameters(), lr=cfg.lr)
        scheduler = StepLR(optimizer, step_size=cfg.lr_step, gamma=cfg.lr_gamma)

        registry = get_registry()
        loss_gauge = registry.gauge(
            "locmatcher_train_loss", "Mean training cross-entropy of the last epoch"
        )
        monitor_gauge = registry.gauge(
            "locmatcher_monitor_loss", "Early-stopping monitor loss of the last epoch"
        )
        acc_gauge = registry.gauge(
            "locmatcher_train_accuracy", "Training top-1 accuracy of the last epoch"
        )
        epoch_gauge = registry.gauge(
            "locmatcher_epochs_run", "Epochs completed by the last fit call"
        )
        grad_hist = registry.histogram(
            "locmatcher_grad_norm",
            "Pre-clipping global gradient L2 norm per optimizer step",
            buckets=GRAD_NORM_BUCKETS,
        )

        best_loss = np.inf
        best_state = self.net.state_dict()
        bad_epochs = 0
        epochs_run = 0
        order = np.arange(len(train))
        with obs_span(
            "locmatcher.fit", n_train=len(train), n_val=len(val), warm_start=warm
        ) as sp:
            for epoch in range(cfg.max_epochs):
                self.net.train()
                rng.shuffle(order)
                train_loss = 0.0
                n_batches = 0
                n_correct = 0
                for start in range(0, len(order), cfg.batch_size):
                    batch = [train[i] for i in order[start : start + cfg.batch_size]]
                    scalars, hist, mask, poi, deliveries, labels = self._make_batch(batch)
                    optimizer.zero_grad()
                    logits = self.net(scalars, hist, mask, poi, deliveries)
                    loss = cross_entropy(logits, labels, mask=mask)
                    loss.backward()
                    if cfg.grad_clip_norm is not None:
                        norm = clip_grad_norm(optimizer.params, cfg.grad_clip_norm)
                        grad_hist.observe(norm)
                    optimizer.step()
                    masked = np.where(mask, logits.data, -np.inf)
                    n_correct += int((masked.argmax(axis=1) == labels).sum())
                    train_loss += loss.item()
                    n_batches += 1
                scheduler.step()
                epochs_run = epoch + 1
                mean_loss = train_loss / max(1, n_batches)
                accuracy = n_correct / max(1, len(train))
                monitor = self._evaluate_loss(val) if val else mean_loss
                loss_gauge.set(mean_loss)
                monitor_gauge.set(monitor)
                acc_gauge.set(accuracy)
                epoch_gauge.set(epochs_run)
                self.history.append(
                    {
                        "epoch": epoch,
                        "train_loss": mean_loss,
                        "monitor": monitor,
                        "accuracy": accuracy,
                    }
                )
                if monitor < best_loss - 1e-5:
                    best_loss = monitor
                    best_state = self.net.state_dict()
                    bad_epochs = 0
                else:
                    bad_epochs += 1
                    if bad_epochs >= cfg.patience:
                        break
            if sp is not None:
                sp.set("epochs_run", epochs_run)
                sp.set("best_loss", float(best_loss))
        event(
            "locmatcher.fit.complete", component="locmatcher",
            epochs=epochs_run, best_loss=float(best_loss),
            n_train=len(train), n_val=len(val), warm_start=warm,
        )
        self.net.load_state_dict(best_state)
        self.net.eval()
        return self

    def _evaluate_loss(self, examples: list[AddressExample]) -> float:
        self.net.eval()
        total, n = 0.0, 0
        for start in range(0, len(examples), self.config.batch_size):
            batch = examples[start : start + self.config.batch_size]
            scalars, hist, mask, poi, deliveries, labels = self._make_batch(batch)
            logits = self.net(scalars, hist, mask, poi, deliveries)
            total += cross_entropy(logits, labels, mask=mask).item() * len(batch)
            n += len(batch)
        return total / max(1, n)

    # ------------------------------------------------------------------
    def scores(self, example: AddressExample) -> np.ndarray:
        """Selection probabilities over the example's candidates."""
        return self.scores_batch([example])[0]

    def scores_batch(self, examples: list[AddressExample]) -> list[np.ndarray]:
        """Probabilities for many examples at once.

        Batched inference amortizes the graph overhead — this is how the
        deployed system reaches its offline throughput (Figure 13); scores
        are identical to per-example calls (padding is fully masked).
        """
        if self.net is None:
            raise RuntimeError("selector is not fitted")
        if not examples:
            return []
        self.net.eval()
        out: list[np.ndarray] = []
        for start in range(0, len(examples), self.config.batch_size):
            batch = examples[start : start + self.config.batch_size]
            scalars, hist, mask, poi, deliveries, _ = self._make_batch(batch)
            logits = self.net(scalars, hist, mask, poi, deliveries)
            probs = masked_softmax(logits, mask).data
            for row, example in enumerate(batch):
                out.append(probs[row, : example.n_candidates])
        return out

    def predict_index(self, example: AddressExample) -> int:
        """Index of the selected candidate."""
        return int(self.scores(example).argmax())

    def predict_index_batch(self, examples: list[AddressExample]) -> list[int]:
        """Selected candidate index per example, batched."""
        return [int(s.argmax()) for s in self.scores_batch(examples)]
