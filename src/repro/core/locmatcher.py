"""LocMatcher: attention-based address-location matching (Section IV-B).

Per candidate, the 24-bin time distribution passes through a dense layer
with ``r`` neurons, is concatenated with the remaining profile + matching
features, and is projected to a ``z``-dimensional representation.  A
transformer encoder models correlations among the (orderless,
variable-size) candidate set.  An additive attention (Eq. 3) scores each
location embedding against a context vector built from the address features
(POI-category embedding + number of deliveries); a masked softmax (Eq. 4)
yields the selection distribution, trained with cross-entropy.

The DLInfMA-PN variant swaps the transformer for an LSTM (as pointer
networks do); the DLInfMA-nA ablation drops the ``U c`` context term.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.features import AddressExample, FeatureConfig
from repro.ml import StandardScaler
from repro.obs import event, get_registry
from repro.obs import span as obs_span
from repro.nn import (
    DEFAULT_DTYPE,
    Adam,
    Dropout,
    Embedding,
    Linear,
    LSTM,
    Module,
    StepLR,
    Tensor,
    TracedStep,
    TransformerEncoder,
    cat,
    clip_grad_norm,
)
from repro.nn.attention import key_bias_from_mask
from repro.nn.functional import cross_entropy_onehot, mask_bias, softmax
from repro.synth.city import N_POI_CATEGORIES

#: Gradient L2 norms are unitless and span decades; log-ish bucket bounds.
GRAD_NORM_BUCKETS = (0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0)

#: Candidate-count padding buckets: every batch is padded up so only a
#: handful of input signatures (and thus JIT plans) ever exist.
N_BUCKETS = (4, 8, 16, 32)

#: Largest inference batch per forward; batch sizes are padded to powers
#: of two up to this, again to bound the number of traced plans.
MAX_SCORE_BATCH = 256


def _bucket_n(n: int) -> int:
    """Pad a candidate count up to a standard bucket."""
    for b in N_BUCKETS:
        if n <= b:
            return b
    out = N_BUCKETS[-1]
    while out < n:
        out *= 2
    return out


def _bucket_b(b: int) -> int:
    """Pad a batch size up to a power of two (capped by the caller)."""
    out = 1
    while out < b:
        out *= 2
    return out


@dataclass(frozen=True)
class LocMatcherConfig:
    """Model + training hyperparameters.

    Architecture values follow the paper (r=3, z=8, p=32, 3 layers, 2
    heads, 32 FFN neurons, dropout 0.1, batch 16).  The optimization
    schedule is re-tuned for dataset scale: the paper trains on ~10^5
    addresses with lr 1e-4 halved every 5 epochs; our synthetic datasets
    have ~10^2, so the learning rate is higher, the decay slower, and more
    epochs are allowed (early stopping still governs)."""

    r: int = 3
    z: int = 8
    p: int = 32
    n_layers: int = 3
    n_heads: int = 2
    d_ff: int = 32
    dropout: float = 0.1
    poi_dim: int = 3
    lr: float = 3e-3
    batch_size: int = 16
    max_epochs: int = 300
    lr_step: int = 30
    lr_gamma: float = 0.5
    patience: int = 40
    grad_clip_norm: float | None = 5.0
    encoder: str = "transformer"  # or "lstm" (DLInfMA-PN)
    lstm_hidden: int = 32
    seed: int = 0

    def __post_init__(self) -> None:
        if self.encoder not in ("transformer", "lstm"):
            raise ValueError("encoder must be 'transformer' or 'lstm'")


class LocMatcherNet(Module):
    """The neural network itself (framework-level module)."""

    def __init__(
        self,
        n_scalar: int,
        hist_dim: int,
        config: LocMatcherConfig,
        use_address_context: bool = True,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(config.seed)
        self.config = config
        self.hist_dim = hist_dim
        self.use_address_context = use_address_context
        in_dim = n_scalar + (config.r if hist_dim else 0)
        if in_dim == 0:
            raise ValueError("model needs at least one candidate feature")
        self.hist_dense = Linear(hist_dim, config.r, rng=rng) if hist_dim else None
        self.input_dense = Linear(in_dim, config.z, rng=rng)
        if config.encoder == "transformer":
            self.encoder = TransformerEncoder(
                config.n_layers, config.z, config.n_heads, config.d_ff, config.dropout, rng=rng
            )
            enc_dim = config.z
        else:
            self.encoder = LSTM(config.z, config.lstm_hidden, rng=rng)
            enc_dim = config.lstm_hidden
        self.dropout = Dropout(config.dropout, rng=rng)
        # Additive attention (Eq. 3): s_k = v^T tanh(W z_k + U c + b).
        self.w = Linear(enc_dim, config.p, bias=True, rng=rng)
        self.v = Linear(config.p, 1, bias=False, rng=rng)
        if use_address_context:
            self.poi_embedding = Embedding(N_POI_CATEGORIES, config.poi_dim, rng=rng)
            m = config.poi_dim + 1  # + number of deliveries
            self.u = Linear(m, config.p, bias=False, rng=rng)
        else:
            self.poi_embedding = None
            self.u = None

    def forward_tensors(
        self,
        scalars: Tensor,  # (B, N, S)
        hist: Tensor | None,  # (B, N, hist_dim)
        key_bias: Tensor | None,  # (B, 1, 1, N) additive attention bias
        poi_onehot: Tensor | None,  # (B, n_categories)
        n_deliveries: Tensor | None,  # (B, 1) already normalized
    ) -> Tensor:
        """Raw matching scores ``(B, N)`` from pure-Tensor inputs.

        Every input is a plain data Tensor — the mask enters as an additive
        bias and the POI category as a one-hot matrix — so this path is
        traceable by :class:`repro.nn.TracedStep` (no data-dependent numpy
        control flow inside).
        """
        parts = [scalars]
        if self.hist_dense is not None:
            if hist is None:
                raise ValueError("model was built with a time-histogram input")
            parts.append(self.hist_dense(hist).tanh())
        candidate_input = cat(parts, axis=-1) if len(parts) > 1 else parts[0]
        h = self.input_dense(candidate_input).relu()
        h = self.dropout(h)
        if self.config.encoder == "transformer":
            encoded = self.encoder(h, key_bias=key_bias)
        else:
            encoded, _ = self.encoder(h)
        pre = self.w(encoded)  # (B, N, p)
        if self.use_address_context:
            context = cat(
                [self.poi_embedding.forward_onehot(poi_onehot), n_deliveries], axis=-1
            )  # (B, m)
            b, n, p = pre.shape
            pre = pre + self.u(context).reshape(b, 1, p)
        scores = self.v(pre.tanh())  # (B, N, 1)
        return scores.reshape(scores.shape[0], scores.shape[1])

    def forward(
        self,
        scalars: np.ndarray,  # (B, N, S)
        hist: np.ndarray | None,  # (B, N, hist_dim)
        mask: np.ndarray,  # (B, N) bool
        poi: np.ndarray,  # (B,)
        n_deliveries: np.ndarray,  # (B,) already normalized
    ) -> Tensor:
        """Raw matching scores ``(B, N)`` (mask applied downstream)."""
        scalars_t = Tensor(np.asarray(scalars), dtype=DEFAULT_DTYPE)
        hist_t = Tensor(np.asarray(hist), dtype=DEFAULT_DTYPE) if hist is not None else None
        key_bias = None
        if self.config.encoder == "transformer":
            key_bias = Tensor(key_bias_from_mask(np.asarray(mask, dtype=bool), DEFAULT_DTYPE))
        poi_onehot = ndel = None
        if self.use_address_context:
            poi_onehot = Tensor(self.poi_embedding.onehot(np.asarray(poi)))
            ndel = Tensor(
                np.asarray(n_deliveries, dtype=DEFAULT_DTYPE).reshape(-1, 1)
            )
        return self.forward_tensors(scalars_t, hist_t, key_bias, poi_onehot, ndel)


class LocMatcherSelector:
    """Trains LocMatcher on labeled examples and scores candidate sets."""

    def __init__(
        self,
        feature_config: FeatureConfig | None = None,
        config: LocMatcherConfig | None = None,
    ) -> None:
        self.feature_config = feature_config or FeatureConfig()
        self.config = config or LocMatcherConfig()
        self.net: LocMatcherNet | None = None
        self.scaler = StandardScaler()
        self._deliv_mean = 0.0
        self._deliv_std = 1.0
        self.history: list[dict[str, float]] = []
        self._jit_train: TracedStep | None = None
        self._jit_eval: TracedStep | None = None
        self._jit_score: TracedStep | None = None
        # fit()-scoped memo of per-example (scaled scalars, hist) pairs:
        # the same examples are re-packed into fresh shuffles every epoch
        # and column selection + scaling is by far the costliest part.
        self._feat_cache: dict[int, tuple] | None = None

    # ------------------------------------------------------------------
    def _split_features(self, example: AddressExample) -> tuple[np.ndarray, np.ndarray | None]:
        scalar_cols = self.feature_config.scalar_columns()
        hist_cols = self.feature_config.hist_columns()
        scalars = example.features[:, scalar_cols] if scalar_cols else np.zeros(
            (example.n_candidates, 0)
        )
        hist = example.features[:, hist_cols] if hist_cols else None
        return scalars, hist

    def _normalize_deliveries(self, values: np.ndarray) -> np.ndarray:
        return (np.log1p(values) - self._deliv_mean) / self._deliv_std

    def _make_batch(
        self,
        examples: list[AddressExample],
        n_pad: int | None = None,
        b_pad: int | None = None,
    ):
        """Build padded float32 batch arrays.

        ``n_pad``/``b_pad`` pad the candidate and batch axes beyond the
        batch's natural size (padded rows are fully masked out), which lets
        callers pin the array shapes to a small set of buckets so the JIT
        engine reuses a handful of traced plans instead of re-tracing per
        shape.
        """
        n_max = max(e.n_candidates for e in examples)
        if n_pad is not None:
            if n_pad < n_max:
                raise ValueError(f"n_pad={n_pad} below batch n_max={n_max}")
            n_max = n_pad
        scalar_cols = self.feature_config.scalar_columns()
        hist_cols = self.feature_config.hist_columns()
        b = len(examples)
        if b_pad is not None:
            if b_pad < b:
                raise ValueError(f"b_pad={b_pad} below batch size {b}")
            b = b_pad
        scalars = np.zeros((b, n_max, len(scalar_cols)), dtype=DEFAULT_DTYPE)
        hist = np.zeros((b, n_max, len(hist_cols)), dtype=DEFAULT_DTYPE) if hist_cols else None
        mask = np.zeros((b, n_max), dtype=bool)
        poi = np.zeros(b, dtype=int)
        deliveries = np.zeros(b)
        labels = np.zeros(b, dtype=int)
        cache = self._feat_cache
        for i, example in enumerate(examples):
            n = example.n_candidates
            entry = cache.get(id(example)) if cache is not None else None
            if entry is None:
                raw_scalars, raw_hist = self._split_features(example)
                scaled = (
                    self.scaler.transform(raw_scalars).astype(DEFAULT_DTYPE)
                    if raw_scalars.shape[1]
                    else None
                )
                entry = (scaled, raw_hist)
                if cache is not None:
                    cache[id(example)] = entry
            scaled, raw_hist = entry
            if scaled is not None:
                scalars[i, :n] = scaled
            if hist is not None and raw_hist is not None:
                hist[i, :n] = raw_hist
            mask[i, :n] = True
            poi[i] = example.poi_category if self.feature_config.use_address else 0
            deliveries[i] = example.n_deliveries
            labels[i] = example.label if example.label is not None else 0
        deliveries = self._normalize_deliveries(deliveries)
        return scalars, hist, mask, poi, deliveries, labels

    # -- traced-step plumbing ------------------------------------------
    def _step_arrays(
        self,
        scalars: np.ndarray,
        hist: np.ndarray | None,
        mask: np.ndarray,
        poi: np.ndarray,
        deliveries: np.ndarray,
    ) -> list[np.ndarray]:
        """Pack a batch into the flat, stable-order array list the traced
        step functions consume.

        Mask-derived quantities (attention key bias, candidate logit bias)
        and the POI one-hot are precomputed here so the traced graph is
        pure tensor math over data inputs.
        """
        net = self.net
        arrays = [scalars]
        if net.hist_dense is not None:
            arrays.append(hist)
        if net.config.encoder == "transformer":
            arrays.append(key_bias_from_mask(mask, DEFAULT_DTYPE))
        if net.use_address_context:
            arrays.append(net.poi_embedding.onehot(poi))
            arrays.append(deliveries.reshape(-1, 1).astype(DEFAULT_DTYPE))
        arrays.append(mask_bias(mask, DEFAULT_DTYPE))  # (B, N) candidate bias
        return arrays

    def _forward_from_arrays(self, arrays: tuple[np.ndarray, ...]) -> tuple[Tensor, Tensor]:
        """Unpack `_step_arrays` output and run the tensor forward.

        Returns ``(logits, candidate_bias)`` — the bias is 0 for real
        candidates and a large negative number for padding, ready to add
        to the logits before any softmax/cross-entropy.
        """
        net = self.net
        it = iter(arrays)
        scalars = Tensor(next(it))
        hist = Tensor(next(it)) if net.hist_dense is not None else None
        key_bias = Tensor(next(it)) if net.config.encoder == "transformer" else None
        poi_onehot = ndel = None
        if net.use_address_context:
            poi_onehot = Tensor(next(it))
            ndel = Tensor(next(it))
        candidate_bias = Tensor(next(it))
        logits = net.forward_tensors(scalars, hist, key_bias, poi_onehot, ndel)
        return logits, candidate_bias

    def _train_step(self, *arrays: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """One forward+backward pass; returns ``(loss, logits)`` arrays.

        Parameter gradients are left on ``p.grad`` (replacing, not
        accumulating — the replay engine overwrites grad buffers), so the
        caller clips and steps the optimizer eagerly afterwards.
        """
        *fwd, onehot_labels, row_weight = arrays
        logits, candidate_bias = self._forward_from_arrays(fwd)
        loss = cross_entropy_onehot(
            logits + candidate_bias, Tensor(onehot_labels), Tensor(row_weight)
        )
        loss.backward()
        return loss.numpy(), logits.numpy()

    def _eval_step(self, *arrays: np.ndarray) -> np.ndarray:
        """Forward-only loss over the real rows of a padded batch."""
        *fwd, onehot_labels, row_weight = arrays
        logits, candidate_bias = self._forward_from_arrays(fwd)
        loss = cross_entropy_onehot(
            logits + candidate_bias, Tensor(onehot_labels), Tensor(row_weight)
        )
        return loss.numpy()

    def _score_step(self, *arrays: np.ndarray) -> np.ndarray:
        """Masked selection probabilities ``(B, N)`` for a padded batch."""
        logits, candidate_bias = self._forward_from_arrays(arrays)
        return softmax(logits + candidate_bias, axis=-1).numpy()

    def _ensure_jit(self, reset: bool = False) -> None:
        """(Re)build the traced steps around the current net.

        All three share the net's parameter list so replays observe
        in-place optimizer updates and ``load_state_dict`` swaps.
        """
        if reset or self._jit_train is None:
            params = self.net.parameters()
            self._jit_train = TracedStep(self._train_step, params=params)
            self._jit_eval = TracedStep(self._eval_step, params=params)
            self._jit_score = TracedStep(self._score_step, params=params)

    def _train_batch_arrays(self, batch: list[AddressExample]):
        """Padded train-batch inputs: step arrays + one-hot labels/weights."""
        b_pad = self.config.batch_size
        n_cap = max(e.n_candidates for e in batch)
        scalars, hist, mask, poi, deliveries, labels = self._make_batch(
            batch, n_pad=_bucket_n(n_cap), b_pad=b_pad
        )
        n_pad = mask.shape[1]
        onehot = np.zeros((b_pad, n_pad), dtype=DEFAULT_DTYPE)
        onehot[np.arange(len(batch)), labels[: len(batch)]] = 1.0
        row_weight = np.zeros(b_pad, dtype=DEFAULT_DTYPE)
        row_weight[: len(batch)] = 1.0
        arrays = self._step_arrays(scalars, hist, mask, poi, deliveries)
        return arrays, onehot, row_weight, mask, labels

    # ------------------------------------------------------------------
    def fit(
        self,
        train: list[AddressExample],
        val: list[AddressExample] | None = None,
        warm_start: bool = False,
    ) -> "LocMatcherSelector":
        """Train until the validation loss stops improving.

        ``warm_start=True`` with a previously fitted net continues training
        from the current weights and keeps the existing feature
        normalization (the incremental-update path, Section VI-A); it is
        ignored on a fresh selector.
        """
        train = [e for e in train if e.label is not None]
        if not train:
            raise ValueError("no labeled training examples")
        val = [e for e in (val or []) if e.label is not None]
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)

        scalar_cols = self.feature_config.scalar_columns()
        warm = warm_start and self.net is not None
        if not warm:
            all_rows = (
                np.vstack([e.features[:, scalar_cols] for e in train]) if scalar_cols else None
            )
            if all_rows is not None and len(all_rows):
                self.scaler.fit(all_rows)
            logs = np.log1p([e.n_deliveries for e in train])
            self._deliv_mean = float(np.mean(logs))
            self._deliv_std = float(np.std(logs)) or 1.0

            self.net = LocMatcherNet(
                n_scalar=len(scalar_cols),
                hist_dim=len(self.feature_config.hist_columns()),
                config=cfg,
                use_address_context=self.feature_config.use_address,
            )
        # Fresh traces per fit: the net (or its training-mode graph, via
        # dropout) may differ from whatever was traced before.
        self._ensure_jit(reset=True)
        # The cache keys by id(); the train/val lists keep every example
        # alive for the duration of fit, and the scaler is already fitted.
        self._feat_cache = {}
        try:
            return self._fit_loop(train, val, cfg, rng, warm)
        finally:
            self._feat_cache = None

    def _fit_loop(
        self,
        train: list[AddressExample],
        val: list[AddressExample],
        cfg: LocMatcherConfig,
        rng: np.random.Generator,
        warm: bool,
    ) -> "LocMatcherSelector":
        """The epoch loop of :meth:`fit` (split out for cache scoping)."""
        optimizer = Adam(self.net.parameters(), lr=cfg.lr)
        scheduler = StepLR(optimizer, step_size=cfg.lr_step, gamma=cfg.lr_gamma)

        registry = get_registry()
        loss_gauge = registry.gauge(
            "locmatcher_train_loss", "Mean training cross-entropy of the last epoch"
        )
        monitor_gauge = registry.gauge(
            "locmatcher_monitor_loss", "Early-stopping monitor loss of the last epoch"
        )
        acc_gauge = registry.gauge(
            "locmatcher_train_accuracy", "Training top-1 accuracy of the last epoch"
        )
        epoch_gauge = registry.gauge(
            "locmatcher_epochs_run", "Epochs completed by the last fit call"
        )
        grad_hist = registry.histogram(
            "locmatcher_grad_norm",
            "Pre-clipping global gradient L2 norm per optimizer step",
            buckets=GRAD_NORM_BUCKETS,
        )

        best_loss = np.inf
        best_state = self.net.state_dict()
        bad_epochs = 0
        epochs_run = 0
        order = np.arange(len(train))
        with obs_span(
            "locmatcher.fit", n_train=len(train), n_val=len(val), warm_start=warm
        ) as sp:
            for epoch in range(cfg.max_epochs):
                self.net.train()
                rng.shuffle(order)
                train_loss = 0.0
                n_batches = 0
                n_correct = 0
                for start in range(0, len(order), cfg.batch_size):
                    batch = [train[i] for i in order[start : start + cfg.batch_size]]
                    arrays, onehot, row_weight, mask, labels = self._train_batch_arrays(batch)
                    optimizer.zero_grad()
                    loss_val, logits = self._jit_train(*arrays, onehot, row_weight)
                    if cfg.grad_clip_norm is not None:
                        norm = clip_grad_norm(optimizer.params, cfg.grad_clip_norm)
                        grad_hist.observe(norm)
                    optimizer.step()
                    real = len(batch)
                    masked = np.where(mask[:real], logits[:real], -np.inf)
                    n_correct += int((masked.argmax(axis=1) == labels[:real]).sum())
                    train_loss += float(loss_val)
                    n_batches += 1
                scheduler.step()
                epochs_run = epoch + 1
                mean_loss = train_loss / max(1, n_batches)
                accuracy = n_correct / max(1, len(train))
                monitor = self._evaluate_loss(val) if val else mean_loss
                loss_gauge.set(mean_loss)
                monitor_gauge.set(monitor)
                acc_gauge.set(accuracy)
                epoch_gauge.set(epochs_run)
                self.history.append(
                    {
                        "epoch": epoch,
                        "train_loss": mean_loss,
                        "monitor": monitor,
                        "accuracy": accuracy,
                    }
                )
                if monitor < best_loss - 1e-5:
                    best_loss = monitor
                    best_state = self.net.state_dict()
                    bad_epochs = 0
                else:
                    bad_epochs += 1
                    if bad_epochs >= cfg.patience:
                        break
            if sp is not None:
                sp.set("epochs_run", epochs_run)
                sp.set("best_loss", float(best_loss))
        event(
            "locmatcher.fit.complete", component="locmatcher",
            epochs=epochs_run, best_loss=float(best_loss),
            n_train=len(train), n_val=len(val), warm_start=warm,
        )
        self.net.load_state_dict(best_state)
        self.net.eval()
        return self

    def _evaluate_loss(self, examples: list[AddressExample]) -> float:
        self.net.eval()
        self._ensure_jit()
        total, n = 0.0, 0
        for start in range(0, len(examples), self.config.batch_size):
            batch = examples[start : start + self.config.batch_size]
            arrays, onehot, row_weight, _, _ = self._train_batch_arrays(batch)
            loss_val = self._jit_eval(*arrays, onehot, row_weight)
            total += float(loss_val) * len(batch)
            n += len(batch)
        return total / max(1, n)

    # ------------------------------------------------------------------
    def scores(self, example: AddressExample) -> np.ndarray:
        """Selection probabilities over the example's candidates."""
        return self.scores_batch([example])[0]

    def scores_batch(self, examples: list[AddressExample]) -> list[np.ndarray]:
        """Probabilities for many examples at once.

        Batched inference amortizes the graph overhead — this is how the
        deployed system reaches its offline throughput (Figure 13); scores
        are identical to per-example calls (padding is fully masked).
        """
        if self.net is None:
            raise RuntimeError("selector is not fitted")
        if not examples:
            return []
        self.net.eval()
        self._ensure_jit()
        out: list[np.ndarray] = []
        for start in range(0, len(examples), MAX_SCORE_BATCH):
            batch = examples[start : start + MAX_SCORE_BATCH]
            n_cap = max(e.n_candidates for e in batch)
            scalars, hist, mask, poi, deliveries, _ = self._make_batch(
                batch, n_pad=_bucket_n(n_cap), b_pad=_bucket_b(len(batch))
            )
            arrays = self._step_arrays(scalars, hist, mask, poi, deliveries)
            probs = self._jit_score(*arrays)
            for row, example in enumerate(batch):
                out.append(probs[row, : example.n_candidates])
        return out

    def predict_index(self, example: AddressExample) -> int:
        """Index of the selected candidate."""
        return int(self.scores(example).argmax())

    def predict_index_batch(self, examples: list[AddressExample]) -> list[int]:
        """Selected candidate index per example, batched."""
        return [int(s.argmax()) for s in self.scores_batch(examples)]
