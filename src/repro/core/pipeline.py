"""The end-to-end DLInfMA pipeline (Figure 3), expressed as engine stages.

The two components of the framework — location candidate generation
(stay-point extraction, candidate-pool construction, profile build,
candidate retrieval/feature extraction) and delivery location discovery
(selector training) — are registered :class:`~repro.engine.Stage` objects
run by a :class:`~repro.engine.StagePlan` under a
:class:`~repro.engine.RunContext`, which records the Section V-F per-stage
wall-clock timings and item counters.  The expensive generation stages
declare disk codecs (via :mod:`repro.core.persistence`), so a run with an
:class:`~repro.engine.ArtifactCache` resumes from disk whenever config +
inputs are unchanged.

Besides the one-shot :meth:`DLInfMA.fit`, the pipeline has a first-class
incremental path: the deployed system builds candidate pools "in a
bi-weekly manner and then merged with existing ones" and re-runs inference
periodically as new trips land (Sections III-B, VI-A).
:meth:`DLInfMA.update` extracts stay points only for the new trips, merges
them into the pool via :class:`~repro.core.poolbuilder.CandidatePoolBuilder`,
rebuilds features only for the addresses whose candidate sets actually
changed, and warm-starts the selector — so repeated batches cost O(new
data), not O(all data).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.candidates import (
    CandidatePool,
    build_candidate_pool,
    build_profiles,
    candidate_id_map,
)
from repro.core.features import AddressExample, FeatureConfig, FeatureExtractor
from repro.core.locmatcher import LocMatcherConfig, LocMatcherSelector
from repro.core.persistence import (
    load_candidate_pool,
    load_profiles,
    load_stay_points,
    save_candidate_pool,
    save_profiles,
    save_stay_points,
)
from repro.core.poolbuilder import CandidatePoolBuilder
from repro.core.selectors import make_variant_selector
from repro.core.staypoints import ExtractionConfig, extract_trip_stay_points
from repro.engine import ArtifactCache, ArtifactCodec, RunContext, StagePlan, stage
from repro.geo import LocalProjection, Point
from repro.obs import event
from repro.obs import span as obs_span
from repro.trajectory import Address, DeliveryTrip


@dataclass(frozen=True)
class DLInfMAConfig:
    """Pipeline configuration; defaults follow the paper."""

    cluster_distance_m: float = 40.0
    pool_method: str = "hierarchical"  # or "grid" (DLInfMA-Grid)
    extraction: ExtractionConfig = field(default_factory=ExtractionConfig)
    features: FeatureConfig = field(default_factory=FeatureConfig)
    selector: str = "locmatcher"  # or gbdt/rf/mlp/rkdt/rknet/mindist/maxtc/maxtc-ilc
    locmatcher: LocMatcherConfig = field(default_factory=LocMatcherConfig)
    seed: int = 0


@dataclass
class PipelineArtifacts:
    """Everything candidate generation produces, shareable across methods.

    Table II compares ~20 selectors over the *same* candidate pool; building
    artifacts once and passing them to each :class:`DLInfMA` avoids redoing
    stay-point extraction / clustering / feature extraction per method.
    """

    pool: CandidatePool
    extractor: FeatureExtractor
    examples: dict[str, AddressExample]
    timings: dict[str, float]
    stay_points_by_trip: dict[str, list] | None = None
    context: RunContext | None = None


# ----------------------------------------------------------------------
# Registered stages
# ----------------------------------------------------------------------
_STAY_CODEC = ArtifactCodec(".json", save_stay_points, load_stay_points)
_POOL_CODEC = ArtifactCodec(".json", save_candidate_pool, load_candidate_pool)
_PROFILE_CODEC = ArtifactCodec(".npz", save_profiles, load_profiles)


def _flatten(stay_points_by_trip: dict[str, list]) -> list:
    return [sp for stays in stay_points_by_trip.values() for sp in stays]


@stage(
    "stay_point_extraction",
    inputs=("trips",),
    outputs=("stay_points_by_trip",),
    cache_codecs={"stay_points_by_trip": _STAY_CODEC},
    cache_inputs=("trips",),
    # workers only changes parallelism, never the extracted stay points.
    cache_config=lambda cfg: (cfg.extraction.noise, cfg.extraction.stay),
)
def _stage_extract(ctx: RunContext, trips: list[DeliveryTrip]) -> dict:
    stays = extract_trip_stay_points(trips, ctx.config.extraction)
    ctx.count("stay_point_extraction", "trips", len(trips))
    ctx.count("stay_point_extraction", "stay_points", sum(len(v) for v in stays.values()))
    return {"stay_points_by_trip": stays}


@stage(
    "pool_construction",
    inputs=("stay_points_by_trip", "projection"),
    outputs=("pool",),
    cache_codecs={"pool": _POOL_CODEC},
    cache_config=lambda cfg: (cfg.cluster_distance_m, cfg.pool_method),
)
def _stage_pool(ctx: RunContext, stay_points_by_trip: dict, projection: LocalProjection) -> dict:
    cfg = ctx.config
    all_stays = _flatten(stay_points_by_trip)
    pool = build_candidate_pool(
        all_stays,
        projection,
        distance_threshold_m=cfg.cluster_distance_m,
        method=cfg.pool_method,
    )
    ctx.count("pool_construction", "stay_points", len(all_stays))
    ctx.count("pool_construction", "candidates", len(pool))
    return {"pool": pool}


@stage(
    "profile_build",
    inputs=("stay_points_by_trip", "pool"),
    outputs=("profiles",),
    cache_codecs={"profiles": _PROFILE_CODEC},
    cache_config=lambda cfg: None,
)
def _stage_profiles(ctx: RunContext, stay_points_by_trip: dict, pool: CandidatePool) -> dict:
    profiles = build_profiles(_flatten(stay_points_by_trip), pool)
    ctx.count("profile_build", "profiles", len(profiles))
    return {"profiles": profiles}


@stage(
    "feature_extraction",
    inputs=("trips", "stay_points_by_trip", "pool", "profiles", "addresses"),
    outputs=("extractor", "examples"),
)
def _stage_features(
    ctx: RunContext,
    trips: list[DeliveryTrip],
    stay_points_by_trip: dict,
    pool: CandidatePool,
    profiles: dict,
    addresses: dict[str, Address],
) -> dict:
    extractor = FeatureExtractor(trips, stay_points_by_trip, pool, profiles, addresses)
    delivered = sorted({a for trip in trips for a in trip.address_ids})
    examples = extractor.build_examples(delivered)
    ctx.count("feature_extraction", "addresses", len(delivered))
    ctx.count("feature_extraction", "examples_built", len(examples))
    return {"extractor": extractor, "examples": examples}


def _labeled_examples(
    extractor: FeatureExtractor,
    examples: dict[str, AddressExample],
    address_ids: list[str],
    ground_truth: dict[str, Point],
) -> list[AddressExample]:
    out = []
    for address_id in address_ids:
        example = examples.get(address_id)
        truth = ground_truth.get(address_id)
        if example is None or truth is None:
            continue
        extractor.label_example(example, truth)
        out.append(example)
    return out


def _make_selector(config: DLInfMAConfig):
    if config.selector == "locmatcher":
        return LocMatcherSelector(config.features, config.locmatcher)
    return make_variant_selector(config.selector, config.features, seed=config.seed)


@stage(
    "training",
    inputs=("extractor", "examples", "ground_truth", "train_ids", "val_ids", "selector"),
    outputs=("selector",),
)
def _stage_training(
    ctx: RunContext,
    extractor: FeatureExtractor,
    examples: dict[str, AddressExample],
    ground_truth: dict[str, Point],
    train_ids: list[str],
    val_ids: list[str],
    selector,
) -> dict:
    train = _labeled_examples(extractor, examples, train_ids, ground_truth)
    val = _labeled_examples(extractor, examples, val_ids, ground_truth)
    warm = selector is not None
    if selector is None:
        selector = _make_selector(ctx.config)
    ctx.count("training", "train_examples", len(train))
    ctx.count("training", "val_examples", len(val))
    if warm:
        # Warm start when the selector supports it (LocMatcher continues
        # from its current weights); others simply refit on the union.
        try:
            selector.fit(train, val or None, warm_start=True)
        except TypeError:
            selector.fit(train, val or None)
    else:
        selector.fit(train, val or None)
    return {"selector": selector}


#: The candidate-generation component (Section III + IV-A), in order.
GENERATION_STAGES = (
    "stay_point_extraction",
    "pool_construction",
    "profile_build",
    "feature_extraction",
)


def build_artifacts(
    trips: list[DeliveryTrip],
    addresses: dict[str, Address],
    projection: LocalProjection,
    config: DLInfMAConfig | None = None,
    context: RunContext | None = None,
    cache_dir=None,
) -> PipelineArtifacts:
    """Run the location-candidate-generation component (Section III).

    ``cache_dir`` enables content-fingerprint artifact caching: a rerun
    with unchanged config + trips resumes the expensive stages from disk.
    """
    cfg = config or DLInfMAConfig()
    ctx = context or RunContext(config=cfg, label="build_artifacts")
    if ctx.cache is None and cache_dir is not None:
        ctx.cache = ArtifactCache(cache_dir)
    state = {"trips": list(trips), "addresses": addresses, "projection": projection}
    with obs_span(
        "dlinfma.build_artifacts", n_trips=len(state["trips"]), run=ctx.label
    ):
        StagePlan(GENERATION_STAGES).run(ctx, state)
    return PipelineArtifacts(
        pool=state["pool"],
        extractor=state["extractor"],
        examples=state["examples"],
        timings=dict(ctx.timings),
        stay_points_by_trip=state["stay_points_by_trip"],
        context=ctx,
    )


class DLInfMA:
    """Delivery Location Inference under Mis-Annotation."""

    def __init__(self, config: DLInfMAConfig | None = None) -> None:
        self.config = config or DLInfMAConfig()
        self.pool: CandidatePool | None = None
        self.extractor: FeatureExtractor | None = None
        self.selector = None
        self.examples: dict[str, AddressExample] = {}
        self.addresses: dict[str, Address] = {}
        self.context: RunContext | None = None
        self._builder: CandidatePoolBuilder | None = None
        self._stays_by_trip: dict[str, list] = {}
        self._projection: LocalProjection | None = None

    @property
    def timings(self) -> dict[str, float]:
        """Per-stage wall-clock seconds of the latest engine run."""
        return dict(self.context.timings) if self.context is not None else {}

    @property
    def counters(self) -> dict[str, int]:
        """Per-stage item counters of the latest engine run."""
        return dict(self.context.counters) if self.context is not None else {}

    # ------------------------------------------------------------------
    def fit(
        self,
        trips: list[DeliveryTrip],
        addresses: dict[str, Address],
        ground_truth: dict[str, Point],
        train_ids: list[str],
        val_ids: list[str] | None = None,
        projection: LocalProjection | None = None,
        artifacts: PipelineArtifacts | None = None,
        cache_dir=None,
    ) -> "DLInfMA":
        """Run candidate generation (unless ``artifacts`` are supplied) and
        train the selector.

        ``ground_truth`` only needs to cover ``train_ids``/``val_ids`` —
        the labeled delivery locations couriers provided (Section V-A).
        """
        self.addresses = dict(addresses)
        if projection is None:
            first = next(iter(addresses.values()))
            projection = LocalProjection(first.geocode)
        self._projection = projection
        ctx = RunContext(
            config=self.config,
            cache=ArtifactCache(cache_dir) if cache_dir is not None else None,
            label="fit",
        )
        with obs_span(
            "dlinfma.fit", selector=self.config.selector, n_trips=len(trips)
        ):
            if artifacts is None:
                artifacts = build_artifacts(
                    trips, addresses, projection, self.config, context=ctx
                )
            else:
                # Shared artifacts were built under another context; adopt
                # their timings (and stage records, preserving execution
                # order) so this run reports the full per-stage picture.
                ctx.merge_timings(
                    artifacts.timings,
                    artifacts.context.records if artifacts.context is not None else (),
                )
            self.context = ctx
            self.pool = artifacts.pool
            self.extractor = artifacts.extractor
            self.examples = artifacts.examples
            self._stays_by_trip = dict(artifacts.stay_points_by_trip or {})
            self._builder = (
                CandidatePoolBuilder.from_pool(self.pool, self.config.cluster_distance_m)
                if self.config.pool_method == "hierarchical"
                else None
            )

            state = {
                "extractor": self.extractor,
                "examples": self.examples,
                "ground_truth": ground_truth,
                "train_ids": list(train_ids),
                "val_ids": list(val_ids or []),
                "selector": None,
            }
            StagePlan(["training"]).run(ctx, state)
            self.selector = state["selector"]
        event(
            "dlinfma.fit.complete", component="pipeline",
            selector=self.config.selector, n_trips=len(trips),
            n_candidates=len(self.pool) if self.pool is not None else 0,
            n_examples=len(self.examples),
        )
        return self

    # ------------------------------------------------------------------
    def update(
        self,
        new_trips: list[DeliveryTrip],
        ground_truth: dict[str, Point] | None = None,
        train_ids: list[str] | None = None,
        val_ids: list[str] | None = None,
    ) -> "DLInfMA":
        """Incrementally absorb a batch of new trips (Section VI-A).

        Stay points are extracted *only* for the new trips; the candidate
        pool is merged forward through the persistent
        :class:`CandidatePoolBuilder` (so all centroids stay >= D apart);
        address examples are rebuilt only where the candidate sets actually
        changed (everything else is remapped + cheaply refreshed); and the
        selector is warm-started on the union of labels when
        ``ground_truth``/``train_ids`` are given (otherwise the current
        selector keeps serving).

        Trips whose ids are already known are ignored, so callers may pass
        overlapping batches.  Pool methods without an incremental merge
        (``grid``) fall back to a full refit on the union.
        """
        if self.extractor is None or self.pool is None:
            raise RuntimeError("pipeline is not fitted; call fit() before update()")
        known = self.extractor.trips
        new_trips = [t for t in new_trips if t.trip_id not in known]
        if self._builder is None:
            # No incremental merge for this pool method: full refit on union.
            all_trips = list(known.values()) + new_trips
            return self.fit(
                all_trips,
                self.addresses,
                ground_truth or {},
                list(train_ids or []),
                val_ids,
                projection=self._projection,
            )

        ctx = RunContext(config=self.config, label="update")
        old_pool = self.pool
        old_extractor = self.extractor
        old_examples = self.examples

        with obs_span("dlinfma.update", n_new_trips=len(new_trips)):
            # Stage 1 — extraction over the new trips only.
            state = {
                "trips": new_trips,
                "addresses": self.addresses,
                "projection": self._projection,
            }
            StagePlan(["stay_point_extraction"]).run(ctx, state)
            new_stays = state["stay_points_by_trip"]

            # Stage 2 — merge the new batch into the persistent pool builder.
            with ctx.timed("pool_construction"):
                flat_new = _flatten(new_stays)
                self._builder.add_batch(flat_new)
                pool = self._builder.build()
            ctx.count("pool_construction", "stay_points", len(flat_new))
            ctx.count("pool_construction", "candidates", len(pool))
            ctx.record(
                "pool_construction", ctx.timings["pool_construction_s"],
                items_in=len(flat_new), items_out=len(pool),
            )
            self._stays_by_trip.update(new_stays)

            # Stage 3 — profiles over all stays (cheap aggregation, no GPS work).
            with ctx.timed("profile_build"):
                profiles = build_profiles(_flatten(self._stays_by_trip), pool)
            ctx.count("profile_build", "profiles", len(profiles))
            ctx.record(
                "profile_build", ctx.timings["profile_build_s"],
                items_out=len(profiles),
            )

            # Stage 4 — selective feature refresh.
            with ctx.timed("feature_extraction"):
                all_trips = list(known.values()) + new_trips
                extractor = FeatureExtractor(
                    all_trips, self._stays_by_trip, pool, profiles, self.addresses
                )
                changed_trips = {t.trip_id for t in new_trips}
                for trip_id in known:
                    if old_extractor.visit_signature(trip_id) != extractor.visit_signature(
                        trip_id
                    ):
                        changed_trips.add(trip_id)
                affected = {
                    a
                    for trip_id in changed_trips
                    for a in extractor.trips[trip_id].address_ids
                }
                id_map = candidate_id_map(old_pool, pool)
                delivered = sorted({a for trip in all_trips for a in trip.address_ids})
                examples: dict[str, AddressExample] = {}
                rebuilt = refreshed = 0
                for address_id in delivered:
                    old_example = old_examples.get(address_id)
                    if address_id not in affected and old_example is not None:
                        carried = extractor.refresh_example(old_example, id_map)
                        if carried is not None:
                            examples[address_id] = carried
                            refreshed += 1
                            continue
                    example = extractor.build_example(address_id)
                    if example is not None:
                        examples[address_id] = example
                        rebuilt += 1
            ctx.count("feature_extraction", "addresses", len(delivered))
            ctx.count("feature_extraction", "addresses_affected", len(affected))
            ctx.count("feature_extraction", "examples_rebuilt", rebuilt)
            ctx.count("feature_extraction", "examples_refreshed", refreshed)
            ctx.record(
                "feature_extraction", ctx.timings["feature_extraction_s"],
                items_in=len(delivered), items_out=len(examples),
            )

            self.context = ctx
            self.pool = pool
            self.extractor = extractor
            self.examples = examples

            # Stage 5 — warm-start the selector on the union of labels.
            if ground_truth is not None and train_ids:
                state = {
                    "extractor": extractor,
                    "examples": examples,
                    "ground_truth": ground_truth,
                    "train_ids": list(train_ids),
                    "val_ids": list(val_ids or []),
                    "selector": self.selector,
                }
                StagePlan(["training"]).run(ctx, state)
                self.selector = state["selector"]
        event(
            "dlinfma.update.complete", component="pipeline",
            n_new_trips=len(new_trips), examples_rebuilt=rebuilt,
            examples_refreshed=refreshed, n_candidates=len(pool),
        )
        return self

    # ------------------------------------------------------------------
    def predict_one(self, address_id: str) -> Point | None:
        """Inferred delivery location for one address.

        Falls back to the geocode when the address has no candidates, and
        to ``None`` when it is entirely unknown.
        """
        example = self.examples.get(address_id)
        if example is not None:
            index = self.selector.predict_index(example)
            return self.extractor.candidate_point(example.candidate_ids[index])
        address = self.addresses.get(address_id)
        return address.geocode if address is not None else None

    def predict(self, address_ids: list[str]) -> dict[str, Point]:
        """Inferred delivery locations for many addresses.

        Uses the selector's batched scoring when available (LocMatcher),
        falling back to per-address prediction otherwise; the with/without-
        example split is computed once and both paths return identical
        predictions.
        """
        if self.selector is None:
            raise RuntimeError("pipeline is not fitted")
        out: dict[str, Point] = {}
        with_examples = [a for a in address_ids if a in self.examples]
        without = [a for a in address_ids if a not in self.examples]
        if with_examples and hasattr(self.selector, "predict_index_batch"):
            examples = [self.examples[a] for a in with_examples]
            indices = self.selector.predict_index_batch(examples)
            for address_id, example, index in zip(with_examples, examples, indices):
                out[address_id] = self.extractor.candidate_point(
                    example.candidate_ids[index]
                )
        else:
            for address_id in with_examples:
                example = self.examples[address_id]
                index = self.selector.predict_index(example)
                out[address_id] = self.extractor.candidate_point(
                    example.candidate_ids[index]
                )
        for address_id in without:
            point = self.predict_one(address_id)
            if point is not None:
                out[address_id] = point
        return out
