"""The end-to-end DLInfMA pipeline (Figure 3).

``fit`` runs the two components of the framework — location candidate
generation (stay-point extraction, candidate-pool construction, candidate
retrieval) and delivery location discovery (feature extraction,
address-location matching) — and records per-stage wall-clock timings
(Section V-F reports these).  ``predict`` maps each address to the selected
candidate's location, falling back to the geocode for addresses with no
candidates (the deployed system's last-resort fallback, Section VI-A).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.candidates import CandidatePool, build_candidate_pool, build_profiles
from repro.core.features import AddressExample, FeatureConfig, FeatureExtractor
from repro.core.locmatcher import LocMatcherConfig, LocMatcherSelector
from repro.core.selectors import make_variant_selector
from repro.core.staypoints import ExtractionConfig, extract_trip_stay_points
from repro.geo import LocalProjection, Point
from repro.trajectory import Address, DeliveryTrip


@dataclass(frozen=True)
class DLInfMAConfig:
    """Pipeline configuration; defaults follow the paper."""

    cluster_distance_m: float = 40.0
    pool_method: str = "hierarchical"  # or "grid" (DLInfMA-Grid)
    extraction: ExtractionConfig = field(default_factory=ExtractionConfig)
    features: FeatureConfig = field(default_factory=FeatureConfig)
    selector: str = "locmatcher"  # or gbdt/rf/mlp/rkdt/rknet/mindist/maxtc/maxtc-ilc
    locmatcher: LocMatcherConfig = field(default_factory=LocMatcherConfig)
    seed: int = 0


@dataclass
class PipelineArtifacts:
    """Everything candidate generation produces, shareable across methods.

    Table II compares ~20 selectors over the *same* candidate pool; building
    artifacts once and passing them to each :class:`DLInfMA` avoids redoing
    stay-point extraction / clustering / feature extraction per method.
    """

    pool: CandidatePool
    extractor: FeatureExtractor
    examples: dict[str, AddressExample]
    timings: dict[str, float]


def build_artifacts(
    trips: list[DeliveryTrip],
    addresses: dict[str, Address],
    projection: LocalProjection,
    config: DLInfMAConfig | None = None,
) -> PipelineArtifacts:
    """Run the location-candidate-generation component (Section III)."""
    cfg = config or DLInfMAConfig()
    t0 = time.perf_counter()
    stay_points_by_trip = extract_trip_stay_points(trips, cfg.extraction)
    t1 = time.perf_counter()
    all_stays = [sp for stays in stay_points_by_trip.values() for sp in stays]
    pool = build_candidate_pool(
        all_stays,
        projection,
        distance_threshold_m=cfg.cluster_distance_m,
        method=cfg.pool_method,
    )
    profiles = build_profiles(all_stays, pool)
    t2 = time.perf_counter()
    extractor = FeatureExtractor(trips, stay_points_by_trip, pool, profiles, addresses)
    delivered = sorted({a for trip in trips for a in trip.address_ids})
    examples = extractor.build_examples(delivered)
    t3 = time.perf_counter()
    return PipelineArtifacts(
        pool=pool,
        extractor=extractor,
        examples=examples,
        timings={
            "stay_point_extraction_s": t1 - t0,
            "pool_construction_s": t2 - t1,
            "feature_extraction_s": t3 - t2,
        },
    )


class DLInfMA:
    """Delivery Location Inference under Mis-Annotation."""

    def __init__(self, config: DLInfMAConfig | None = None) -> None:
        self.config = config or DLInfMAConfig()
        self.pool: CandidatePool | None = None
        self.extractor: FeatureExtractor | None = None
        self.selector = None
        self.examples: dict[str, AddressExample] = {}
        self.addresses: dict[str, Address] = {}
        self.timings: dict[str, float] = {}

    # ------------------------------------------------------------------
    def fit(
        self,
        trips: list[DeliveryTrip],
        addresses: dict[str, Address],
        ground_truth: dict[str, Point],
        train_ids: list[str],
        val_ids: list[str] | None = None,
        projection: LocalProjection | None = None,
        artifacts: PipelineArtifacts | None = None,
    ) -> "DLInfMA":
        """Run candidate generation (unless ``artifacts`` are supplied) and
        train the selector.

        ``ground_truth`` only needs to cover ``train_ids``/``val_ids`` —
        the labeled delivery locations couriers provided (Section V-A).
        """
        self.addresses = dict(addresses)
        if projection is None:
            first = next(iter(addresses.values()))
            projection = LocalProjection(first.geocode)
        if artifacts is None:
            artifacts = build_artifacts(trips, addresses, projection, self.config)
        self.pool = artifacts.pool
        self.extractor = artifacts.extractor
        self.examples = artifacts.examples
        self.timings = dict(artifacts.timings)

        t3 = time.perf_counter()
        train_examples = self._labeled(train_ids, ground_truth)
        val_examples = self._labeled(val_ids or [], ground_truth)
        self.selector = self._make_selector()
        self.selector.fit(train_examples, val_examples or None)
        self.timings["training_s"] = time.perf_counter() - t3
        return self

    def _labeled(
        self, address_ids: list[str], ground_truth: dict[str, Point]
    ) -> list[AddressExample]:
        out = []
        for address_id in address_ids:
            example = self.examples.get(address_id)
            truth = ground_truth.get(address_id)
            if example is None or truth is None:
                continue
            self.extractor.label_example(example, truth)
            out.append(example)
        return out

    def _make_selector(self):
        cfg = self.config
        if cfg.selector == "locmatcher":
            return LocMatcherSelector(cfg.features, cfg.locmatcher)
        return make_variant_selector(cfg.selector, cfg.features, seed=cfg.seed)

    # ------------------------------------------------------------------
    def predict_one(self, address_id: str) -> Point | None:
        """Inferred delivery location for one address.

        Falls back to the geocode when the address has no candidates, and
        to ``None`` when it is entirely unknown.
        """
        example = self.examples.get(address_id)
        if example is not None:
            index = self.selector.predict_index(example)
            return self.extractor.candidate_point(example.candidate_ids[index])
        address = self.addresses.get(address_id)
        return address.geocode if address is not None else None

    def predict(self, address_ids: list[str]) -> dict[str, Point]:
        """Inferred delivery locations for many addresses.

        Uses the selector's batched scoring when available (LocMatcher),
        falling back to per-address prediction otherwise.
        """
        if self.selector is None:
            raise RuntimeError("pipeline is not fitted")
        out: dict[str, Point] = {}
        with_examples = [a for a in address_ids if a in self.examples]
        without = [a for a in address_ids if a not in self.examples]
        if with_examples and hasattr(self.selector, "predict_index_batch"):
            examples = [self.examples[a] for a in with_examples]
            indices = self.selector.predict_index_batch(examples)
            for address_id, example, index in zip(with_examples, examples, indices):
                out[address_id] = self.extractor.candidate_point(
                    example.candidate_ids[index]
                )
        else:
            without = list(address_ids)
        for address_id in without:
            point = self.predict_one(address_id)
            if point is not None:
                out[address_id] = point
        return out
