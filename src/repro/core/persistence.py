"""Save/load fitted DLInfMA artifacts.

The deployed system (Section VI-A) separates offline inference from online
queries; persistence is the seam: a fitted pipeline's pool, profiles and
LocMatcher weights go to disk as ``.npz`` + JSON, and the inferred
address→location table as plain JSON for the query store.
"""

from __future__ import annotations

import json
import pathlib
from typing import Union

import numpy as np

from repro.core.candidates import CandidatePool, LocationCandidate, LocationProfile, TIME_BINS
from repro.core.locmatcher import LocMatcherSelector
from repro.geo import LocalProjection, Point
from repro.trajectory import StayPoint

PathLike = Union[str, pathlib.Path]


def save_stay_points(stay_points_by_trip: dict[str, list[StayPoint]], path: PathLike) -> None:
    """Write per-trip stay points as JSON (the extraction-stage artifact)."""
    payload = {
        trip_id: [
            [sp.lng, sp.lat, sp.t_arrive, sp.t_leave, sp.courier_id, sp.n_points]
            for sp in stays
        ]
        for trip_id, stays in stay_points_by_trip.items()
    }
    pathlib.Path(path).write_text(json.dumps(payload))


def load_stay_points(path: PathLike) -> dict[str, list[StayPoint]]:
    """Read stay points previously written by :func:`save_stay_points`."""
    payload = json.loads(pathlib.Path(path).read_text())
    return {
        trip_id: [
            StayPoint(lng, lat, t_arrive, t_leave, courier_id, n_points)
            for lng, lat, t_arrive, t_leave, courier_id, n_points in rows
        ]
        for trip_id, rows in payload.items()
    }


def save_candidate_pool(pool: CandidatePool, path: PathLike) -> None:
    """Write a candidate pool (with projection origin) as JSON."""
    payload = {
        "origin": pool.projection.origin.as_tuple(),
        "candidates": [
            {
                "candidate_id": c.candidate_id,
                "x": c.x,
                "y": c.y,
                "lng": c.lng,
                "lat": c.lat,
                "weight": c.weight,
            }
            for c in pool.candidates
        ],
    }
    pathlib.Path(path).write_text(json.dumps(payload))


def load_candidate_pool(path: PathLike) -> CandidatePool:
    """Read a pool previously written by :func:`save_candidate_pool`."""
    payload = json.loads(pathlib.Path(path).read_text())
    projection = LocalProjection(Point(*payload["origin"]))
    candidates = [LocationCandidate(**c) for c in payload["candidates"]]
    return CandidatePool(candidates, projection)


def save_profiles(profiles: dict[int, LocationProfile], path: PathLike) -> None:
    """Write location profiles as a compressed ``.npz``."""
    ids = np.array(sorted(profiles), dtype=int)
    data = np.stack([profiles[int(i)].as_vector() for i in ids]) if len(ids) else np.zeros((0, 2 + TIME_BINS))
    np.savez_compressed(pathlib.Path(path), ids=ids, data=data)


def load_profiles(path: PathLike) -> dict[int, LocationProfile]:
    """Read profiles previously written by :func:`save_profiles`."""
    archive = np.load(pathlib.Path(path))
    out: dict[int, LocationProfile] = {}
    for i, row in zip(archive["ids"], archive["data"]):
        out[int(i)] = LocationProfile(
            avg_duration_s=float(row[0]),
            n_couriers=int(row[1]),
            time_hist=row[2:].copy(),
        )
    return out


def save_locmatcher(selector: LocMatcherSelector, path: PathLike) -> None:
    """Write a fitted LocMatcher's weights + normalization state (.npz)."""
    if selector.net is None:
        raise RuntimeError("selector is not fitted")
    state = {f"param::{k}": v for k, v in selector.net.state_dict().items()}
    state["scaler_mean"] = (
        selector.scaler.mean_ if selector.scaler.mean_ is not None else np.zeros(0)
    )
    state["scaler_scale"] = (
        selector.scaler.scale_ if selector.scaler.scale_ is not None else np.zeros(0)
    )
    state["deliv_norm"] = np.array([selector._deliv_mean, selector._deliv_std])
    np.savez_compressed(pathlib.Path(path), **state)


def load_locmatcher_into(selector: LocMatcherSelector, path: PathLike) -> LocMatcherSelector:
    """Load weights into a selector built with the *same* configs.

    The caller constructs the selector (feature + model config define the
    architecture) and this restores the trained state, so no training data
    is needed at serving time.
    """
    from repro.core.locmatcher import LocMatcherNet

    archive = np.load(pathlib.Path(path))
    if selector.net is None:
        selector.net = LocMatcherNet(
            n_scalar=len(selector.feature_config.scalar_columns()),
            hist_dim=len(selector.feature_config.hist_columns()),
            config=selector.config,
            use_address_context=selector.feature_config.use_address,
        )
    params = {
        k[len("param::"):]: archive[k] for k in archive.files if k.startswith("param::")
    }
    selector.net.load_state_dict(params)
    selector.net.eval()
    mean = archive["scaler_mean"]
    scale = archive["scaler_scale"]
    if mean.size:
        selector.scaler.mean_ = mean
        selector.scaler.scale_ = scale
    selector._deliv_mean, selector._deliv_std = map(float, archive["deliv_norm"])
    return selector


def save_locations(locations: dict[str, Point], path: PathLike) -> None:
    """Write an address→location table as JSON (the store's payload)."""
    payload = {a: p.as_tuple() for a, p in sorted(locations.items())}
    pathlib.Path(path).write_text(json.dumps(payload))


def load_locations(path: PathLike) -> dict[str, Point]:
    """Read a table previously written by :func:`save_locations`."""
    payload = json.loads(pathlib.Path(path).read_text())
    return {a: Point(lng, lat) for a, (lng, lat) in payload.items()}
