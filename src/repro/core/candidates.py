"""Stage 2 of DLInfMA: candidate-pool construction and location profiles.

Stay points are clustered with threshold centroid-linkage hierarchical
clustering (``D = 40 m`` by default); each cluster centroid becomes a
*location candidate*.  For efficiency the pool is built in bi-weekly
batches and merged incrementally, exactly as Section III-B describes.

Each candidate also gets a *profile* from the stay points assigned to it:
average stay duration, number of distinct couriers, and a 24-bin
hour-of-day visit distribution (Section III-B's three profiles).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.cluster import Cluster, grid_merge, hierarchical_cluster, merge_weighted_clusters
from repro.geo import GridIndex, LocalProjection
from repro.trajectory import StayPoint

#: Number of hour-of-day bins in the visit-time distribution profile.
TIME_BINS = 24


@dataclass(frozen=True)
class LocationCandidate:
    """One entry of the candidate pool (projected meters + lng/lat)."""

    candidate_id: int
    x: float
    y: float
    lng: float
    lat: float
    weight: float


@dataclass(frozen=True)
class LocationProfile:
    """Aggregate behaviour of couriers at a candidate location."""

    avg_duration_s: float
    n_couriers: int
    time_hist: np.ndarray  # shape (TIME_BINS,), sums to 1 when any visits

    def as_vector(self) -> np.ndarray:
        """``[avg_duration_s, n_couriers, *time_hist]``."""
        return np.concatenate([[self.avg_duration_s, float(self.n_couriers)], self.time_hist])


class CandidatePool:
    """The pool of location candidates with a nearest-lookup index."""

    def __init__(self, candidates: list[LocationCandidate], projection: LocalProjection) -> None:
        self.candidates = list(candidates)
        self.projection = projection
        self.by_id = {c.candidate_id: c for c in self.candidates}
        self._index = GridIndex(cell_size_m=60.0)
        for c in self.candidates:
            self._index.insert(c.candidate_id, c.x, c.y)

    def __len__(self) -> int:
        return len(self.candidates)

    def content_key(self) -> tuple:
        """Stable identity for engine fingerprinting."""
        return (
            "CandidatePool",
            self.projection.content_key(),
            tuple((c.candidate_id, c.x, c.y, c.weight) for c in self.candidates),
        )

    def nearest(self, x: float, y: float) -> LocationCandidate | None:
        """The candidate closest to meter coordinates (x, y)."""
        cid = self._index.nearest(x, y)
        return None if cid is None else self.by_id[cid]

    def within(self, x: float, y: float, radius_m: float) -> list[LocationCandidate]:
        """Candidates within ``radius_m`` of (x, y)."""
        return [self.by_id[cid] for cid in self._index.query_radius(x, y, radius_m)]


def build_candidate_pool(
    stay_points: list[StayPoint],
    projection: LocalProjection,
    distance_threshold_m: float = 40.0,
    batch_period_s: float = 14 * 86_400.0,
    method: str = "hierarchical",
) -> CandidatePool:
    """Cluster stay points into a candidate pool.

    ``method`` selects the clustering: ``"hierarchical"`` (ours, built in
    bi-weekly batches then merged) or ``"grid"`` (the DLInfMA-Grid variant,
    plain D x D binning).
    """
    if method not in ("hierarchical", "grid"):
        raise ValueError(f"unknown pool construction method: {method!r}")
    if not stay_points:
        return CandidatePool([], projection)

    coords = _project(stay_points, projection)
    if method == "grid":
        clusters = grid_merge(coords, distance_threshold_m)
    else:
        clusters = _biweekly_hierarchical(
            stay_points, coords, distance_threshold_m, batch_period_s
        )
    candidates = []
    for i, cluster in enumerate(sorted(clusters, key=lambda c: (c.x, c.y))):
        lng, lat = projection.to_lnglat(cluster.x, cluster.y)
        candidates.append(
            LocationCandidate(
                candidate_id=i,
                x=cluster.x,
                y=cluster.y,
                lng=float(lng),
                lat=float(lat),
                weight=cluster.weight,
            )
        )
    return CandidatePool(candidates, projection)


def _project(stay_points: list[StayPoint], projection: LocalProjection) -> np.ndarray:
    lng = np.array([sp.lng for sp in stay_points])
    lat = np.array([sp.lat for sp in stay_points])
    x, y = projection.to_xy(lng, lat)
    return np.column_stack([np.atleast_1d(x), np.atleast_1d(y)])


def _biweekly_hierarchical(
    stay_points: list[StayPoint],
    coords: np.ndarray,
    threshold: float,
    period_s: float,
) -> list[Cluster]:
    """Cluster per bi-weekly batch, merging each batch into the pool."""
    t0 = min(sp.t for sp in stay_points)
    batches: dict[int, list[int]] = defaultdict(list)
    for i, sp in enumerate(stay_points):
        batches[int((sp.t - t0) // period_s)].append(i)
    pool: list[Cluster] = []
    for period in sorted(batches):
        batch_coords = coords[batches[period]]
        if pool:
            pool = merge_weighted_clusters(pool, batch_coords, threshold)
        else:
            pool = hierarchical_cluster(batch_coords, threshold)
    return pool


def candidate_id_map(old_pool: CandidatePool, new_pool: CandidatePool) -> dict[int, int]:
    """Old-id -> new-id for candidates whose centroid did not move.

    Ids are reassigned west-to-east on every pool build, so incremental
    merges invalidate raw ids even for untouched clusters; coordinates are
    the stable identity (a merge recomputes a centroid, so any absorbed
    cluster drops out of this map — exactly the candidates whose features
    must be rebuilt rather than remapped).
    """
    by_coord = {
        (round(c.x, 6), round(c.y, 6)): c.candidate_id for c in new_pool.candidates
    }
    out: dict[int, int] = {}
    for c in old_pool.candidates:
        new_id = by_coord.get((round(c.x, 6), round(c.y, 6)))
        if new_id is not None:
            out[c.candidate_id] = new_id
    return out


def assign_stay_points(
    stay_points: list[StayPoint], pool: CandidatePool
) -> list[int | None]:
    """Nearest candidate id per stay point (None when the pool is empty)."""
    if len(pool) == 0:
        return [None] * len(stay_points)
    coords = _project(stay_points, pool.projection)
    return [pool.nearest(float(x), float(y)).candidate_id for x, y in coords]


def build_profiles(
    stay_points: list[StayPoint], pool: CandidatePool
) -> dict[int, LocationProfile]:
    """Compute the three location profiles per candidate (Section III-B)."""
    durations: dict[int, list[float]] = defaultdict(list)
    couriers: dict[int, set[str]] = defaultdict(set)
    hists: dict[int, np.ndarray] = defaultdict(lambda: np.zeros(TIME_BINS))
    for sp, cid in zip(stay_points, assign_stay_points(stay_points, pool)):
        if cid is None:
            continue
        durations[cid].append(sp.duration_s)
        couriers[cid].add(sp.courier_id)
        hour = int((sp.t % 86_400.0) // 3_600.0) % TIME_BINS
        hists[cid][hour] += 1.0
    profiles: dict[int, LocationProfile] = {}
    for candidate in pool.candidates:
        cid = candidate.candidate_id
        ds = durations.get(cid, [])
        hist = hists[cid] if cid in hists else np.zeros(TIME_BINS)
        total = hist.sum()
        profiles[cid] = LocationProfile(
            avg_duration_s=float(np.mean(ds)) if ds else 0.0,
            n_couriers=len(couriers.get(cid, ())),
            time_hist=hist / total if total > 0 else hist,
        )
    return profiles
