"""Stage 1 of DLInfMA: stay-point extraction from couriers' trajectories.

Noise filtering followed by stay-point detection (paper defaults
``D_max = 20 m``, ``T_min = 30 s``, Section III-A).  The paper implements
this stage with trajectory-level parallelization (Section V-F); pass
``workers`` to fan the per-trip work out over processes.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field

from repro.trajectory import (
    DeliveryTrip,
    NoiseFilterConfig,
    StayPoint,
    StayPointConfig,
    detect_stay_points,
    filter_noise,
)


@dataclass(frozen=True)
class ExtractionConfig:
    """Noise-filter + stay-point thresholds.

    ``workers`` > 1 routes extraction through a process pool; it affects
    only wall-clock time, never the extracted stay points.
    """

    noise: NoiseFilterConfig = field(default_factory=NoiseFilterConfig)
    stay: StayPointConfig = field(default_factory=StayPointConfig)
    workers: int | None = None


def _extract_one(args: tuple[DeliveryTrip, ExtractionConfig]) -> tuple[str, list[StayPoint]]:
    trip, config = args
    cleaned = filter_noise(trip.trajectory, config.noise)
    return trip.trip_id, detect_stay_points(cleaned, config.stay)


def extract_trip_stay_points(
    trips: list[DeliveryTrip],
    config: ExtractionConfig | None = None,
    workers: int | None = None,
) -> dict[str, list[StayPoint]]:
    """Stay points per trip id, from cleaned trajectories.

    ``workers`` > 1 runs trips through a process pool (trajectory-level
    parallelization); the default is serial, which is faster at small
    scales because of pickling overhead.  When ``workers`` is None the
    value from ``config.workers`` applies, so the pipeline config reaches
    this point without every caller re-plumbing it.
    """
    config = config or ExtractionConfig()
    if workers is None:
        workers = config.workers
    if workers is not None and workers > 1 and len(trips) > 1:
        with multiprocessing.Pool(workers) as pool:
            pairs = pool.map(_extract_one, [(trip, config) for trip in trips])
        return dict(pairs)
    return dict(_extract_one((trip, config)) for trip in trips)
