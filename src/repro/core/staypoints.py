"""Stage 1 of DLInfMA: stay-point extraction from couriers' trajectories.

Noise filtering followed by stay-point detection (paper defaults
``D_max = 20 m``, ``T_min = 30 s``, Section III-A).  The paper implements
this stage with trajectory-level parallelization (Section V-F); pass
``workers`` to fan the per-trip work out over processes.
"""

from __future__ import annotations

import multiprocessing
import os
from collections import Counter
from dataclasses import dataclass, field

from repro.obs import event, get_registry
from repro.obs import span as obs_span
from repro.trajectory import (
    DeliveryTrip,
    NoiseFilterConfig,
    StayPoint,
    StayPointConfig,
    detect_stay_points,
    filter_noise,
)


@dataclass(frozen=True)
class ExtractionConfig:
    """Noise-filter + stay-point thresholds.

    ``workers`` > 1 routes extraction through a process pool; it affects
    only wall-clock time, never the extracted stay points.
    """

    noise: NoiseFilterConfig = field(default_factory=NoiseFilterConfig)
    stay: StayPointConfig = field(default_factory=StayPointConfig)
    workers: int | None = None


def _extract_one(args: tuple[DeliveryTrip, ExtractionConfig]) -> tuple[str, list[StayPoint]]:
    trip, config = args
    cleaned = filter_noise(trip.trajectory, config.noise)
    return trip.trip_id, detect_stay_points(cleaned, config.stay)


def _extract_one_tagged(
    args: tuple[DeliveryTrip, ExtractionConfig],
) -> tuple[int, str, list[StayPoint]]:
    """Pool-worker variant: tags the result with the worker's pid so the
    parent can attribute per-worker item counts."""
    trip_id, stays = _extract_one(args)
    return os.getpid(), trip_id, stays


def _count_worker_items(per_worker: Counter, per_worker_stays: Counter) -> None:
    registry = get_registry()
    trips_counter = registry.counter(
        "staypoint_extraction_trips_total",
        "Trips processed by stay-point extraction, labeled by worker",
    )
    stays_counter = registry.counter(
        "staypoint_extraction_stay_points_total",
        "Stay points extracted, labeled by worker",
    )
    for worker, n in per_worker.items():
        trips_counter.inc(n, worker=worker)
        stays_counter.inc(per_worker_stays[worker], worker=worker)


def extract_trip_stay_points(
    trips: list[DeliveryTrip],
    config: ExtractionConfig | None = None,
    workers: int | None = None,
) -> dict[str, list[StayPoint]]:
    """Stay points per trip id, from cleaned trajectories.

    ``workers`` > 1 runs trips through a process pool (trajectory-level
    parallelization); the default is serial, which is faster at small
    scales because of pickling overhead.  When ``workers`` is None the
    value from ``config.workers`` applies, so the pipeline config reaches
    this point without every caller re-plumbing it.

    Per-worker trip/stay-point counts land in the metrics registry
    (``staypoint_extraction_*_total{worker=...}``) for both the serial
    path (worker ``"serial"``) and the fan-out path (worker = pool pid).
    """
    config = config or ExtractionConfig()
    if workers is None:
        workers = config.workers
    parallel = workers is not None and workers > 1 and len(trips) > 1
    with obs_span(
        "staypoint.extract", n_trips=len(trips), workers=workers if parallel else 1
    ):
        per_worker: Counter = Counter()
        per_worker_stays: Counter = Counter()
        if parallel:
            with multiprocessing.Pool(workers) as pool:
                tagged = pool.map(_extract_one_tagged, [(trip, config) for trip in trips])
            out = {}
            for pid, trip_id, stays in tagged:
                out[trip_id] = stays
                per_worker[str(pid)] += 1
                per_worker_stays[str(pid)] += len(stays)
        else:
            out = dict(_extract_one((trip, config)) for trip in trips)
            per_worker["serial"] = len(trips)
            per_worker_stays["serial"] = sum(len(v) for v in out.values())
        _count_worker_items(per_worker, per_worker_stays)
    event(
        "staypoint.extraction.complete", level="debug", component="staypoints",
        n_trips=len(trips), n_workers=len(per_worker),
        n_stay_points=sum(per_worker_stays.values()),
    )
    return out
