"""Stage 3+4 of DLInfMA: candidate retrieval and feature extraction.

Retrieval (Section III-C): within each trip involving an address, only
candidates whose stay time is no later than the recorded delivery time can
be the delivery location; the address's candidate set is the union over its
trips.

Features (Section IV-A):

- matching: trip coverage ``TC`` (Eq. 1), location commonality ``LC``
  (Eq. 2, building-level; the address-level variant is kept for the
  DLInfMA-LC_addr ablation), distance to the geocoded location;
- profile: average stay duration, number of couriers, 24-bin visit-time
  distribution;
- address: number of deliveries, POI category.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.core.candidates import (
    CandidatePool,
    LocationProfile,
    TIME_BINS,
    assign_stay_points,
)
from repro.geo import Point
from repro.trajectory import Address, DeliveryTrip, StayPoint

# Full feature-matrix layout (per candidate row).
COL_TC = 0
COL_LC_BUILDING = 1
COL_LC_ADDRESS = 2
COL_DIST = 3
COL_DURATION = 4
COL_COURIERS = 5
HIST_START = 6
N_FEATURES = HIST_START + TIME_BINS


@dataclass(frozen=True)
class FeatureConfig:
    """Which feature families feed the selector (for ablations)."""

    use_tc: bool = True
    use_lc: bool = True
    use_dist: bool = True
    use_profile: bool = True
    use_address: bool = True
    lc_mode: str = "building"

    def __post_init__(self) -> None:
        if self.lc_mode not in ("building", "address"):
            raise ValueError("lc_mode must be 'building' or 'address'")

    def scalar_columns(self) -> list[int]:
        """Indices of the scalar candidate features to use."""
        cols: list[int] = []
        if self.use_tc:
            cols.append(COL_TC)
        if self.use_lc:
            cols.append(COL_LC_BUILDING if self.lc_mode == "building" else COL_LC_ADDRESS)
        if self.use_dist:
            cols.append(COL_DIST)
        if self.use_profile:
            cols.extend([COL_DURATION, COL_COURIERS])
        return cols

    def hist_columns(self) -> list[int]:
        """Indices of the time-distribution bins (empty when unused)."""
        if not self.use_profile:
            return []
        return list(range(HIST_START, HIST_START + TIME_BINS))


@dataclass
class AddressExample:
    """One address with its retrieved candidates and features."""

    address_id: str
    candidate_ids: list[int]
    features: np.ndarray  # (n_candidates, N_FEATURES)
    n_deliveries: int
    poi_category: int
    label: int | None = None  # index into candidate_ids (set for train/val)

    @property
    def n_candidates(self) -> int:
        return len(self.candidate_ids)


@dataclass
class TripVisit:
    """One candidate visit inside a trip."""

    candidate_id: int
    t: float
    duration_s: float


class FeatureExtractor:
    """Computes per-address candidate sets and features from a pool."""

    def __init__(
        self,
        trips: list[DeliveryTrip],
        stay_points_by_trip: dict[str, list[StayPoint]],
        pool: CandidatePool,
        profiles: dict[int, LocationProfile],
        addresses: dict[str, Address],
    ) -> None:
        self.trips = {t.trip_id: t for t in trips}
        self.pool = pool
        self.profiles = profiles
        self.addresses = addresses
        self.visits_by_trip = self._map_visits(stay_points_by_trip)
        self.candidates_by_trip = {
            trip_id: {v.candidate_id for v in visits}
            for trip_id, visits in self.visits_by_trip.items()
        }
        self.trips_by_address: dict[str, list[str]] = defaultdict(list)
        self.trips_by_building: dict[str, set[str]] = defaultdict(set)
        for trip in trips:
            for address_id in sorted(trip.address_ids):
                self.trips_by_address[address_id].append(trip.trip_id)
                address = addresses.get(address_id)
                if address is not None:
                    self.trips_by_building[address.building_id].add(trip.trip_id)
        # Reverse index: candidate -> trips passing through it.
        self.trips_by_candidate: dict[int, set[str]] = defaultdict(set)
        for trip_id, cids in self.candidates_by_trip.items():
            for cid in cids:
                self.trips_by_candidate[cid].add(trip_id)
        self.n_trips = len(trips)
        self._geo_xy: dict[str, tuple[float, float]] = {}

    def _map_visits(
        self, stay_points_by_trip: dict[str, list[StayPoint]]
    ) -> dict[str, list[TripVisit]]:
        out: dict[str, list[TripVisit]] = {}
        for trip_id, stays in stay_points_by_trip.items():
            cids = assign_stay_points(stays, self.pool)
            out[trip_id] = [
                TripVisit(candidate_id=cid, t=sp.t, duration_s=sp.duration_s)
                for sp, cid in zip(stays, cids)
                if cid is not None
            ]
        return out

    # ------------------------------------------------------------------
    def retrieve_candidates(self, address_id: str) -> list[int]:
        """Union over trips of time-bounded candidate visits (Sec III-C)."""
        found: set[int] = set()
        for trip_id in self.trips_by_address.get(address_id, ()):
            trip = self.trips[trip_id]
            bound = max(
                (w.t_delivered for w in trip.waybills if w.address_id == address_id),
                default=None,
            )
            if bound is None:
                continue
            for visit in self.visits_by_trip.get(trip_id, ()):
                if visit.t <= bound:
                    found.add(visit.candidate_id)
        return sorted(found)

    def _geocode_xy(self, address_id: str) -> tuple[float, float]:
        if address_id not in self._geo_xy:
            geocode = self.addresses[address_id].geocode
            self._geo_xy[address_id] = self.pool.projection.to_xy(geocode.lng, geocode.lat)
        return self._geo_xy[address_id]

    def build_example(self, address_id: str) -> AddressExample | None:
        """Features for one address; None when it has no candidates."""
        if address_id not in self.addresses:
            return None
        candidate_ids = self.retrieve_candidates(address_id)
        if not candidate_ids:
            return None
        address = self.addresses[address_id]
        involved = self.trips_by_address[address_id]
        involved_set = set(involved)
        building_trips = self.trips_by_building.get(address.building_id, set())
        n_other_building = self.n_trips - len(building_trips)
        n_other_address = self.n_trips - len(involved_set)
        gx, gy = self._geocode_xy(address_id)

        features = np.zeros((len(candidate_ids), N_FEATURES))
        for row, cid in enumerate(candidate_ids):
            trips_through = self.trips_by_candidate.get(cid, set())
            tc = len(trips_through & involved_set) / len(involved_set)
            lc_building = (
                len(trips_through - building_trips) / n_other_building
                if n_other_building > 0
                else 0.0
            )
            lc_address = (
                len(trips_through - involved_set) / n_other_address
                if n_other_address > 0
                else 0.0
            )
            candidate = self.pool.by_id[cid]
            dist = float(np.hypot(candidate.x - gx, candidate.y - gy))
            profile = self.profiles[cid]
            features[row, COL_TC] = tc
            features[row, COL_LC_BUILDING] = lc_building
            features[row, COL_LC_ADDRESS] = lc_address
            features[row, COL_DIST] = dist
            features[row, COL_DURATION] = profile.avg_duration_s
            features[row, COL_COURIERS] = profile.n_couriers
            features[row, HIST_START:] = profile.time_hist
        return AddressExample(
            address_id=address_id,
            candidate_ids=candidate_ids,
            features=features,
            n_deliveries=len(involved),
            poi_category=address.poi_category,
        )

    def build_examples(self, address_ids: list[str]) -> dict[str, AddressExample]:
        """Examples for many addresses (skipping ones with no candidates)."""
        out: dict[str, AddressExample] = {}
        for address_id in address_ids:
            example = self.build_example(address_id)
            if example is not None:
                out[address_id] = example
        return out

    # ------------------------------------------------------------------
    # Incremental-update support (Section VI-A's periodic re-inference).
    # ------------------------------------------------------------------
    def visit_signature(self, trip_id: str) -> tuple:
        """Geometry + time signature of a trip's candidate visits.

        Candidate *ids* are not comparable across pools (they are reassigned
        west-to-east on every build), so change detection between an old and
        a new pool compares visit sequences by candidate coordinates.
        """
        return tuple(
            (
                round(self.pool.by_id[v.candidate_id].x, 6),
                round(self.pool.by_id[v.candidate_id].y, 6),
                v.t,
                v.duration_s,
            )
            for v in self.visits_by_trip.get(trip_id, ())
        )

    def refresh_example(
        self, old: AddressExample, id_map: dict[int, int]
    ) -> AddressExample | None:
        """Carry a structurally unchanged example over to this pool.

        Valid only when the address gained no trips and none of its trips'
        visit geometry changed.  Candidate ids are remapped through
        ``id_map`` (old id -> new id at identical coordinates); the
        commonality (LC) columns — whose denominators involve the *global*
        trip count — and the profile columns are recomputed cheaply, while
        trip coverage, distance and the address features are reused as-is.
        Returns None when the example cannot be carried over (the caller
        should fall back to a full :meth:`build_example`).
        """
        try:
            candidate_ids = [id_map[cid] for cid in old.candidate_ids]
        except KeyError:
            return None
        # Ids order candidates west-to-east in every pool, so identical
        # coordinates must keep identical row order; bail out otherwise.
        if any(b <= a for a, b in zip(candidate_ids, candidate_ids[1:])):
            return None
        address = self.addresses.get(old.address_id)
        if address is None:
            return None
        involved = self.trips_by_address.get(old.address_id, [])
        involved_set = set(involved)
        building_trips = self.trips_by_building.get(address.building_id, set())
        n_other_building = self.n_trips - len(building_trips)
        n_other_address = self.n_trips - len(involved_set)
        features = old.features.copy()
        for row, cid in enumerate(candidate_ids):
            trips_through = self.trips_by_candidate.get(cid, set())
            features[row, COL_LC_BUILDING] = (
                len(trips_through - building_trips) / n_other_building
                if n_other_building > 0
                else 0.0
            )
            features[row, COL_LC_ADDRESS] = (
                len(trips_through - involved_set) / n_other_address
                if n_other_address > 0
                else 0.0
            )
            profile = self.profiles[cid]
            features[row, COL_DURATION] = profile.avg_duration_s
            features[row, COL_COURIERS] = profile.n_couriers
            features[row, HIST_START:] = profile.time_hist
        return AddressExample(
            address_id=old.address_id,
            candidate_ids=candidate_ids,
            features=features,
            n_deliveries=len(involved),
            poi_category=old.poi_category,
            label=old.label,
        )

    # ------------------------------------------------------------------
    def label_example(self, example: AddressExample, true_location: Point) -> None:
        """Set the positive label as the candidate nearest the ground truth
        (how the paper derives supervised labels, Section V-A)."""
        tx, ty = self.pool.projection.to_xy(true_location.lng, true_location.lat)
        dists = [
            np.hypot(self.pool.by_id[cid].x - tx, self.pool.by_id[cid].y - ty)
            for cid in example.candidate_ids
        ]
        example.label = int(np.argmin(dists))

    def candidate_point(self, candidate_id: int) -> Point:
        """The lng/lat of a candidate."""
        candidate = self.pool.by_id[candidate_id]
        return Point(candidate.lng, candidate.lat)
