"""Alternative candidate selectors: the paper's variants and heuristics.

All selectors implement the same protocol as
:class:`~repro.core.locmatcher.LocMatcherSelector`:

- ``fit(train, val)`` on labeled :class:`AddressExample` lists (heuristics
  ignore it),
- ``scores(example)`` returning one score per candidate,
- ``predict_index(example)``.

Variants reproduced (Section V-B):

- MinDist / MaxTC / MaxTC-ILC — heuristic baselines over our candidates;
- DLInfMA-GBDT / -RF / -MLP — independent binary classification per
  candidate (Figure 7(a)), class weight 8:2 for the rare positives;
- DLInfMA-RkDT / -RkNet — pairwise ranking (Figure 7(b)).
"""

from __future__ import annotations

import numpy as np

from repro.core.features import (
    AddressExample,
    COL_DIST,
    COL_LC_BUILDING,
    COL_TC,
    FeatureConfig,
)
from repro.ml import (
    GradientBoostingClassifier,
    MLPClassifier,
    PairwiseRankingTree,
    RandomForestClassifier,
    RankNet,
    RankingGroup,
    StandardScaler,
)


class HeuristicSelector:
    """Score candidates with a single rule; no training involved."""

    MODES = ("mindist", "maxtc", "maxtc-ilc")

    def __init__(self, mode: str) -> None:
        if mode not in self.MODES:
            raise ValueError(f"mode must be one of {self.MODES}")
        self.mode = mode

    def fit(self, train=None, val=None) -> "HeuristicSelector":
        """No-op (kept for interface parity)."""
        return self

    def scores(self, example: AddressExample) -> np.ndarray:
        feats = example.features
        if self.mode == "mindist":
            return -feats[:, COL_DIST]
        if self.mode == "maxtc":
            return feats[:, COL_TC]
        # TC-ILC (Eq. 5): TC x inverse LC.  Like IDF, the inverse is taken
        # through a smoothed log so that a candidate seen in one trip but
        # shared with nobody cannot outrank a candidate seen in every trip.
        return feats[:, COL_TC] * np.log(1.0 / (feats[:, COL_LC_BUILDING] + 5e-2))

    def predict_index(self, example: AddressExample) -> int:
        """Index of the best candidate under the heuristic."""
        return int(self.scores(example).argmax())


def _feature_matrix(example: AddressExample, config: FeatureConfig) -> np.ndarray:
    cols = config.scalar_columns() + config.hist_columns()
    return example.features[:, cols]


class ClassifierSelector:
    """Per-candidate binary classification (Figure 7(a)).

    ``model`` must provide sklearn-style ``fit(x, y, [sample_weight])`` and
    ``predict_proba``; the positive class is the labeled candidate.  The
    8:2 class weight of the paper maps to a 4x positive sample weight.
    """

    def __init__(
        self,
        model,
        feature_config: FeatureConfig | None = None,
        positive_weight: float = 4.0,
        supports_sample_weight: bool = True,
    ) -> None:
        self.model = model
        self.feature_config = feature_config or FeatureConfig()
        self.positive_weight = positive_weight
        self.supports_sample_weight = supports_sample_weight
        self.scaler = StandardScaler()
        self._fitted = False

    def fit(self, train: list[AddressExample], val=None) -> "ClassifierSelector":
        """Stack every candidate row of every example and fit."""
        train = [e for e in train if e.label is not None]
        if not train:
            raise ValueError("no labeled training examples")
        rows, labels = [], []
        for example in train:
            feats = _feature_matrix(example, self.feature_config)
            rows.append(feats)
            y = np.zeros(example.n_candidates, dtype=int)
            y[example.label] = 1
            labels.append(y)
        x = self.scaler.fit_transform(np.vstack(rows))
        y = np.concatenate(labels)
        if self.supports_sample_weight:
            weights = np.where(y == 1, self.positive_weight, 1.0)
            self.model.fit(x, y, sample_weight=weights)
        else:
            self.model.fit(x, y)
        self._fitted = True
        return self

    def scores(self, example: AddressExample) -> np.ndarray:
        """Positive-class probability per candidate."""
        if not self._fitted:
            raise RuntimeError("selector is not fitted")
        x = self.scaler.transform(_feature_matrix(example, self.feature_config))
        proba = self.model.predict_proba(x)
        return proba[:, -1]

    def predict_index(self, example: AddressExample) -> int:
        """Candidate with the highest positive probability."""
        return int(self.scores(example).argmax())


class RankingSelector:
    """Pairwise ranking over each example's candidate set (Figure 7(b))."""

    def __init__(self, ranker, feature_config: FeatureConfig | None = None) -> None:
        self.ranker = ranker
        self.feature_config = feature_config or FeatureConfig()
        self._fitted = False

    def fit(self, train: list[AddressExample], val=None) -> "RankingSelector":
        """Build ranking groups (one per address) and fit the ranker."""
        groups = [
            RankingGroup(_feature_matrix(e, self.feature_config), e.label)
            for e in train
            if e.label is not None and e.n_candidates >= 2
        ]
        if not groups:
            raise ValueError("no multi-candidate labeled training examples")
        self.ranker.fit(groups)
        self._fitted = True
        return self

    def scores(self, example: AddressExample) -> np.ndarray:
        """Ranker scores (win counts or net scores) per candidate."""
        if not self._fitted:
            raise RuntimeError("selector is not fitted")
        return self.ranker.scores(_feature_matrix(example, self.feature_config))

    def predict_index(self, example: AddressExample) -> int:
        """Candidate ranked first."""
        return int(self.scores(example).argmax())


def make_variant_selector(
    name: str,
    feature_config: FeatureConfig | None = None,
    seed: int = 0,
):
    """Factory for the paper's selector variants by name.

    Accepted names: ``gbdt``, ``rf``, ``mlp``, ``rkdt``, ``rknet``,
    ``mindist``, ``maxtc``, ``maxtc-ilc``.
    """
    rng = np.random.default_rng(seed)
    feature_config = feature_config or FeatureConfig()
    name = name.lower()
    if name in HeuristicSelector.MODES:
        return HeuristicSelector(name)
    if name == "gbdt":
        return ClassifierSelector(
            GradientBoostingClassifier(n_estimators=150, max_depth=3, rng=rng),
            feature_config,
        )
    if name == "rf":
        return ClassifierSelector(
            RandomForestClassifier(n_estimators=60, max_depth=10, rng=rng),
            feature_config,
        )
    if name == "mlp":
        return ClassifierSelector(
            MLPClassifier(hidden=16, rng=rng),
            feature_config,
            supports_sample_weight=False,
        )
    if name == "rkdt":
        return RankingSelector(PairwiseRankingTree(max_leaf_nodes=1024, rng=rng), feature_config)
    if name == "rknet":
        return RankingSelector(RankNet(hidden=16, rng=rng), feature_config)
    raise ValueError(f"unknown selector variant: {name!r}")
