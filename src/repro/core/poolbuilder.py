"""Streaming candidate-pool maintenance.

The deployed system re-runs inference periodically as new trips arrive
(Section VI-A), and candidate pools are built "in a bi-weekly manner and
then merged with existing ones" (Section III-B).  This builder is the
production-facing surface for that: feed stay-point batches as they land;
the pool stays valid (all centroids >= D apart) after every batch.
"""

from __future__ import annotations

import numpy as np

from repro.cluster import Cluster, hierarchical_cluster, merge_weighted_clusters
from repro.core.candidates import CandidatePool, LocationCandidate
from repro.geo import LocalProjection
from repro.trajectory import StayPoint


class CandidatePoolBuilder:
    """Accumulates stay-point batches into a continuously valid pool."""

    def __init__(
        self, projection: LocalProjection, distance_threshold_m: float = 40.0
    ) -> None:
        if distance_threshold_m <= 0:
            raise ValueError("distance_threshold_m must be positive")
        self.projection = projection
        self.distance_threshold_m = distance_threshold_m
        self._clusters: list[Cluster] = []
        self._n_batches = 0
        self._n_points = 0

    @classmethod
    def from_pool(
        cls, pool: CandidatePool, distance_threshold_m: float = 40.0
    ) -> "CandidatePoolBuilder":
        """Resume incremental building from a materialized pool.

        Merging only ever consults centroids and weights, so a pool
        round-tripped through :func:`~repro.core.persistence.save_candidate_pool`
        (or produced by a previous builder) seeds a builder that behaves
        exactly like the one that created it.
        """
        builder = cls(pool.projection, distance_threshold_m)
        builder._clusters = [
            Cluster(x=c.x, y=c.y, weight=c.weight, members=[]) for c in pool.candidates
        ]
        builder._n_batches = 1 if pool.candidates else 0
        builder._n_points = int(round(sum(c.weight for c in pool.candidates)))
        return builder

    @property
    def n_batches(self) -> int:
        """How many batches have been merged so far."""
        return self._n_batches

    @property
    def n_points(self) -> int:
        """Total stay points consumed."""
        return self._n_points

    def add_batch(self, stay_points: list[StayPoint]) -> int:
        """Cluster one batch and merge it into the pool.

        Returns the current number of candidates.  Empty batches are
        counted but change nothing.
        """
        self._n_batches += 1
        if not stay_points:
            return len(self._clusters)
        lng = np.array([sp.lng for sp in stay_points])
        lat = np.array([sp.lat for sp in stay_points])
        x, y = self.projection.to_xy(lng, lat)
        coords = np.column_stack([np.atleast_1d(x), np.atleast_1d(y)])
        if self._clusters:
            self._clusters = merge_weighted_clusters(
                self._clusters, coords, self.distance_threshold_m
            )
        else:
            self._clusters = hierarchical_cluster(coords, self.distance_threshold_m)
        self._n_points += len(stay_points)
        return len(self._clusters)

    def build(self) -> CandidatePool:
        """Materialize the current pool (ids assigned west-to-east)."""
        candidates = []
        for i, cluster in enumerate(sorted(self._clusters, key=lambda c: (c.x, c.y))):
            lng, lat = self.projection.to_lnglat(cluster.x, cluster.y)
            candidates.append(
                LocationCandidate(
                    candidate_id=i,
                    x=cluster.x,
                    y=cluster.y,
                    lng=float(lng),
                    lat=float(lat),
                    weight=cluster.weight,
                )
            )
        return CandidatePool(candidates, self.projection)
