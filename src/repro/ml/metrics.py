"""Classification metrics for the candidate-selector models.

The paper evaluates end-to-end location error; these metrics support the
intermediate diagnosis the variants need (e.g. how well a binary
classifier separates true delivery candidates before argmax selection).
"""

from __future__ import annotations

import numpy as np


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exact label matches."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape or y_true.size == 0:
        raise ValueError("need equal, non-empty label arrays")
    return float((y_true == y_pred).mean())


def precision_recall_f1(
    y_true: np.ndarray, y_pred: np.ndarray, positive=1
) -> tuple[float, float, float]:
    """Binary precision/recall/F1 for the ``positive`` label.

    Empty denominators yield 0.0 (no predicted positives -> precision 0,
    no actual positives -> recall 0).
    """
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape or y_true.size == 0:
        raise ValueError("need equal, non-empty label arrays")
    tp = float(((y_pred == positive) & (y_true == positive)).sum())
    fp = float(((y_pred == positive) & (y_true != positive)).sum())
    fn = float(((y_pred != positive) & (y_true == positive)).sum())
    precision = tp / (tp + fp) if tp + fp > 0 else 0.0
    recall = tp / (tp + fn) if tp + fn > 0 else 0.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall > 0 else 0.0
    return precision, recall, f1


def roc_auc(y_true: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve via the rank statistic (ties averaged).

    Equivalent to the probability a random positive outscores a random
    negative.  Requires both classes present.
    """
    y_true = np.asarray(y_true).astype(bool)
    scores = np.asarray(scores, dtype=float)
    if y_true.shape != scores.shape or y_true.size == 0:
        raise ValueError("need equal, non-empty arrays")
    n_pos = int(y_true.sum())
    n_neg = int((~y_true).sum())
    if n_pos == 0 or n_neg == 0:
        raise ValueError("roc_auc needs both classes present")
    order = np.argsort(scores, kind="stable")
    ranks = np.empty(len(scores))
    ranks[order] = np.arange(1, len(scores) + 1)
    # Average ranks over tied scores.
    sorted_scores = scores[order]
    i = 0
    while i < len(scores):
        j = i
        while j + 1 < len(scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        if j > i:
            ranks[order[i : j + 1]] = (i + 1 + j + 1) / 2.0
        i = j + 1
    rank_sum_pos = float(ranks[y_true].sum())
    return (rank_sum_pos - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg)


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray, labels=None) -> np.ndarray:
    """``(k, k)`` confusion counts with ``labels`` row/col ordering."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape or y_true.size == 0:
        raise ValueError("need equal, non-empty label arrays")
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    labels = list(labels)
    index = {label: i for i, label in enumerate(labels)}
    out = np.zeros((len(labels), len(labels)), dtype=int)
    for t, p in zip(y_true, y_pred):
        out[index[t], index[p]] += 1
    return out
