"""Gradient-boosted decision trees — DLInfMA-GBDT variant.

Binary classification with logistic loss and Newton leaf updates
(Friedman's TreeBoost).  Paper hyperparameter: 150 boosting stages.
"""

from __future__ import annotations

import numpy as np

from repro.ml.tree import DecisionTreeRegressor


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -500, 500)))


class GradientBoostingClassifier:
    """Binary logistic GBDT over {0, 1} labels."""

    def __init__(
        self,
        n_estimators: int = 150,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 1,
        rng: np.random.Generator | None = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.rng = rng or np.random.default_rng(0)
        self.init_score_: float = 0.0
        self.stages_: list[tuple[DecisionTreeRegressor, np.ndarray]] = []

    def fit(
        self, x: np.ndarray, y: np.ndarray, sample_weight: np.ndarray | None = None
    ) -> "GradientBoostingClassifier":
        """Boost ``n_estimators`` regression trees on logistic residuals."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if set(np.unique(y)) - {0.0, 1.0}:
            raise ValueError("labels must be 0/1")
        n = len(y)
        w = np.ones(n) if sample_weight is None else np.asarray(sample_weight, dtype=float)

        pos = float((y * w).sum())
        total = float(w.sum())
        p0 = np.clip(pos / total, 1e-6, 1.0 - 1e-6)
        self.init_score_ = float(np.log(p0 / (1.0 - p0)))
        f = np.full(n, self.init_score_)
        self.stages_ = []
        for _ in range(self.n_estimators):
            p = _sigmoid(f)
            residual = y - p
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                rng=self.rng,
            )
            tree.fit(x, residual, sample_weight=w)
            # Newton step per leaf: sum(residual) / sum(p (1 - p)).
            leaf_of = tree.apply(x)
            n_leaves = leaf_of.max() + 1 if len(leaf_of) else 0
            num = np.zeros(n_leaves)
            den = np.zeros(n_leaves)
            np.add.at(num, leaf_of, residual * w)
            np.add.at(den, leaf_of, p * (1.0 - p) * w)
            values = np.where(den > 1e-12, num / np.maximum(den, 1e-12), 0.0)
            f = f + self.learning_rate * values[leaf_of]
            self.stages_.append((tree, values))
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Raw additive score (log-odds)."""
        if not self.stages_:
            raise RuntimeError("model is not fitted")
        x = np.asarray(x, dtype=float)
        f = np.full(len(x), self.init_score_)
        for tree, values in self.stages_:
            f += self.learning_rate * values[tree.apply(x)]
        return f

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """``(n, 2)`` probabilities for classes [0, 1]."""
        p1 = _sigmoid(self.decision_function(x))
        return np.column_stack([1.0 - p1, p1])

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard 0/1 labels."""
        return (self.decision_function(x) > 0).astype(int)

    @property
    def feature_importances_(self) -> np.ndarray:
        """Mean normalized split-gain importance across boosting stages."""
        if not self.stages_:
            raise RuntimeError("model is not fitted")
        return np.mean([tree.feature_importances_ for tree, _ in self.stages_], axis=0)


class GradientBoostingRegressor:
    """Squared-loss GBDT (used for ablation/utility purposes)."""

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 1,
        rng: np.random.Generator | None = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.rng = rng or np.random.default_rng(0)
        self.init_: float = 0.0
        self.trees_: list[DecisionTreeRegressor] = []

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GradientBoostingRegressor":
        """Boost trees on squared-loss residuals."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        self.init_ = float(y.mean())
        f = np.full(len(y), self.init_)
        self.trees_ = []
        for _ in range(self.n_estimators):
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                rng=self.rng,
            )
            tree.fit(x, y - f)
            f = f + self.learning_rate * tree.predict(x)
            self.trees_.append(tree)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted regression target per row."""
        if not self.trees_:
            raise RuntimeError("model is not fitted")
        x = np.asarray(x, dtype=float)
        f = np.full(len(x), self.init_)
        for tree in self.trees_:
            f += self.learning_rate * tree.predict(x)
        return f
