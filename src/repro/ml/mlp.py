"""A small sklearn-style MLP classifier on the repro.nn substrate.

The DLInfMA-MLP variant feeds candidate features into one hidden layer with
16 neurons (paper Section V-B) and classifies each candidate independently.
"""

from __future__ import annotations

import numpy as np

from repro.nn import Adam, Linear, ReLU, Sequential, Tensor
from repro.nn.functional import binary_cross_entropy_with_logits
from repro.ml.scaler import StandardScaler


class MLPClassifier:
    """Binary classifier with one hidden layer and weighted BCE loss."""

    def __init__(
        self,
        hidden: int = 16,
        epochs: int = 60,
        lr: float = 3e-3,
        batch_size: int = 64,
        pos_weight: float = 4.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if hidden < 1 or epochs < 1 or batch_size < 1:
            raise ValueError("hidden, epochs and batch_size must be >= 1")
        self.hidden = hidden
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size
        self.pos_weight = pos_weight
        self.rng = rng or np.random.default_rng(0)
        self.model: Sequential | None = None
        self.scaler = StandardScaler()

    def fit(self, x: np.ndarray, y: np.ndarray) -> "MLPClassifier":
        """Train on ``(n, d)`` features and 0/1 labels."""
        x = self.scaler.fit_transform(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float)
        if set(np.unique(y)) - {0.0, 1.0}:
            raise ValueError("labels must be 0/1")
        n, d = x.shape
        self.model = Sequential(
            Linear(d, self.hidden, rng=self.rng),
            ReLU(),
            Linear(self.hidden, 1, rng=self.rng),
        )
        opt = Adam(self.model.parameters(), lr=self.lr)
        for _ in range(self.epochs):
            order = self.rng.permutation(n)
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                opt.zero_grad()
                logits = self.model(Tensor(x[idx])).reshape(len(idx))
                loss = binary_cross_entropy_with_logits(
                    logits, y[idx], pos_weight=self.pos_weight
                )
                loss.backward()
                opt.step()
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Raw logit per row."""
        if self.model is None:
            raise RuntimeError("model is not fitted")
        x = self.scaler.transform(np.asarray(x, dtype=float))
        return self.model(Tensor(x)).data.reshape(-1)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """``(n, 2)`` probabilities for classes [0, 1]."""
        z = self.decision_function(x)
        p1 = 1.0 / (1.0 + np.exp(-z))
        return np.column_stack([1.0 - p1, p1])

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard 0/1 labels."""
        return (self.decision_function(x) > 0).astype(int)
