"""Classical ML substrate (replaces scikit-learn for this reproduction)."""

from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor
from repro.ml.forest import RandomForestClassifier
from repro.ml.gbdt import GradientBoostingClassifier, GradientBoostingRegressor
from repro.ml.mlp import MLPClassifier
from repro.ml.ranking import PairwiseRankingTree, RankNet, RankingGroup
from repro.ml.scaler import StandardScaler
from repro.ml.metrics import accuracy, confusion_matrix, precision_recall_f1, roc_auc

__all__ = [
    "accuracy",
    "confusion_matrix",
    "precision_recall_f1",
    "roc_auc",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "RandomForestClassifier",
    "GradientBoostingClassifier",
    "GradientBoostingRegressor",
    "MLPClassifier",
    "PairwiseRankingTree",
    "RankNet",
    "RankingGroup",
    "StandardScaler",
]
