"""Pairwise learning-to-rank over candidate groups.

A *group* is one address's candidate set: an ``(n_i, d)`` feature matrix
plus the index of the positive (true delivery-location) candidate.  Both
rankers train on within-group (positive, negative) pairs:

- :class:`PairwiseRankingTree` — GeoRank / DLInfMA-RkDT: a decision-tree
  classifier on feature differences; inference counts pairwise wins in a
  voting manner (quadratic comparisons, as the paper notes).
- :class:`RankNet` — DLInfMA-RkNet: a shared scoring MLP trained with the
  pairwise logistic loss; inference scores each candidate directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.scaler import StandardScaler
from repro.ml.tree import DecisionTreeClassifier
from repro.nn import Adam, Linear, ReLU, Sequential, Tensor
from repro.nn.functional import pairwise_logistic_loss


@dataclass(frozen=True)
class RankingGroup:
    """One training group: candidate features and the positive index."""

    features: np.ndarray
    positive_index: int

    def __post_init__(self) -> None:
        features = np.asarray(self.features, dtype=float)
        if features.ndim != 2:
            raise ValueError("features must be (n, d)")
        if not 0 <= self.positive_index < len(features):
            raise ValueError("positive_index out of range")
        object.__setattr__(self, "features", features)


def _make_pairs(
    groups: list[RankingGroup], max_negatives: int | None, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Feature differences (pos - neg and neg - pos) with 1/0 labels."""
    diffs, labels = [], []
    for group in groups:
        pos = group.features[group.positive_index]
        negatives = np.delete(np.arange(len(group.features)), group.positive_index)
        if max_negatives is not None and len(negatives) > max_negatives:
            negatives = rng.choice(negatives, size=max_negatives, replace=False)
        for j in negatives:
            diffs.append(pos - group.features[j])
            labels.append(1)
            diffs.append(group.features[j] - pos)
            labels.append(0)
    if not diffs:
        raise ValueError("no training pairs (all groups have a single candidate?)")
    return np.array(diffs), np.array(labels)


class PairwiseRankingTree:
    """Decision-tree pairwise ranker (1024 leaves max, per the paper)."""

    def __init__(
        self,
        max_leaf_nodes: int = 1024,
        max_negatives: int | None = 30,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.rng = rng or np.random.default_rng(0)
        self.max_negatives = max_negatives
        self.tree = DecisionTreeClassifier(max_leaf_nodes=max_leaf_nodes, rng=self.rng)

    def fit(self, groups: list[RankingGroup]) -> "PairwiseRankingTree":
        """Train the pairwise comparator."""
        diffs, labels = _make_pairs(groups, self.max_negatives, self.rng)
        self.tree.fit(diffs, labels)
        return self

    def scores(self, features: np.ndarray) -> np.ndarray:
        """Win counts from all-pairs voting within one candidate set."""
        features = np.asarray(features, dtype=float)
        n = len(features)
        if n == 1:
            return np.zeros(1)
        # Build all ordered pair differences in one batch.
        ii, jj = np.nonzero(~np.eye(n, dtype=bool))
        diffs = features[ii] - features[jj]
        p_win = self.tree.predict_proba(diffs)[:, list(self.tree.classes_).index(1)]
        wins = np.zeros(n)
        np.add.at(wins, ii, (p_win > 0.5).astype(float))
        return wins

    def predict_best(self, features: np.ndarray) -> int:
        """Index of the candidate winning the most comparisons."""
        return int(self.scores(features).argmax())


class RankNet:
    """Burges-style RankNet with a shared scoring MLP (16 hidden units)."""

    def __init__(
        self,
        hidden: int = 16,
        epochs: int = 60,
        lr: float = 3e-3,
        batch_size: int = 64,
        max_negatives: int | None = 30,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.hidden = hidden
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size
        self.max_negatives = max_negatives
        self.rng = rng or np.random.default_rng(0)
        self.model: Sequential | None = None
        self.scaler = StandardScaler()

    def fit(self, groups: list[RankingGroup]) -> "RankNet":
        """Train the scoring network on (positive, negative) pairs."""
        pos_feats, neg_feats = [], []
        for group in groups:
            pos = group.features[group.positive_index]
            negatives = np.delete(np.arange(len(group.features)), group.positive_index)
            if self.max_negatives is not None and len(negatives) > self.max_negatives:
                negatives = self.rng.choice(negatives, size=self.max_negatives, replace=False)
            for j in negatives:
                pos_feats.append(pos)
                neg_feats.append(group.features[j])
        if not pos_feats:
            raise ValueError("no training pairs (all groups have a single candidate?)")
        pos_arr = np.array(pos_feats)
        neg_arr = np.array(neg_feats)
        self.scaler.fit(np.vstack([pos_arr, neg_arr]))
        pos_arr = self.scaler.transform(pos_arr)
        neg_arr = self.scaler.transform(neg_arr)

        d = pos_arr.shape[1]
        self.model = Sequential(
            Linear(d, self.hidden, rng=self.rng),
            ReLU(),
            Linear(self.hidden, 1, rng=self.rng),
        )
        opt = Adam(self.model.parameters(), lr=self.lr)
        n = len(pos_arr)
        for _ in range(self.epochs):
            order = self.rng.permutation(n)
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                opt.zero_grad()
                s_pos = self.model(Tensor(pos_arr[idx])).reshape(len(idx))
                s_neg = self.model(Tensor(neg_arr[idx])).reshape(len(idx))
                loss = pairwise_logistic_loss(s_pos, s_neg)
                loss.backward()
                opt.step()
        return self

    def scores(self, features: np.ndarray) -> np.ndarray:
        """Learned score per candidate."""
        if self.model is None:
            raise RuntimeError("model is not fitted")
        features = self.scaler.transform(np.asarray(features, dtype=float))
        return self.model(Tensor(features)).data.reshape(-1)

    def predict_best(self, features: np.ndarray) -> int:
        """Index of the highest-scoring candidate."""
        return int(self.scores(features).argmax())
