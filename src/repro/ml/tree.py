"""CART decision trees (classification and regression).

Replaces scikit-learn for the paper's tree-based baselines and variants:
GeoRank / DLInfMA-RkDT use a decision tree as the pairwise base learner
(1024 leaves max), DLInfMA-RF bags classification trees, and DLInfMA-GBDT
boosts regression trees.

Split search is vectorized per feature: sort, form cumulative statistics,
and score every midpoint in one pass.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

import numpy as np


@dataclass
class _Node:
    """A tree node; leaves have ``feature == -1``."""

    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    value: np.ndarray = field(default_factory=lambda: np.zeros(1))
    n_samples: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0


class _BaseTree:
    """Shared growth machinery; subclasses define impurity and leaf values."""

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_leaf_nodes: int | None = None,
        max_features: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if max_depth is not None and max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        if max_leaf_nodes is not None and max_leaf_nodes < 2:
            raise ValueError("max_leaf_nodes must be >= 2")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_leaf_nodes = max_leaf_nodes
        self.max_features = max_features
        self.rng = rng or np.random.default_rng(0)
        self.root: _Node | None = None
        self.n_features_: int | None = None
        self.feature_importances_: np.ndarray | None = None

    # -- subclass API ---------------------------------------------------
    def _leaf_value(self, y: np.ndarray, w: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _impurity(self, y: np.ndarray, w: np.ndarray) -> float:
        raise NotImplementedError

    def _best_split(
        self, x: np.ndarray, y: np.ndarray, w: np.ndarray, features: np.ndarray
    ) -> tuple[int, float, float] | None:
        raise NotImplementedError

    # -- fitting ----------------------------------------------------------
    def fit(self, x: np.ndarray, y: np.ndarray, sample_weight: np.ndarray | None = None):
        """Grow the tree on ``(n, d)`` features and ``(n,)`` targets."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y)
        if x.ndim != 2:
            raise ValueError("x must be 2-D")
        if len(x) != len(y):
            raise ValueError("x and y length mismatch")
        if len(x) == 0:
            raise ValueError("cannot fit on an empty dataset")
        w = (
            np.ones(len(y), dtype=float)
            if sample_weight is None
            else np.asarray(sample_weight, dtype=float)
        )
        if w.shape != (len(y),):
            raise ValueError("sample_weight must align with y")
        self.n_features_ = x.shape[1]
        self._prepare_targets(y)
        self._importance_acc = np.zeros(self.n_features_)
        if self.max_leaf_nodes is None:
            self.root = self._grow_depth_first(x, y, w, depth=0)
        else:
            self.root = self._grow_best_first(x, y, w)
        total = self._importance_acc.sum()
        self.feature_importances_ = (
            self._importance_acc / total if total > 0 else self._importance_acc.copy()
        )
        return self

    def _candidate_features(self) -> np.ndarray:
        d = self.n_features_
        if self.max_features is None or self.max_features >= d:
            return np.arange(d)
        return self.rng.choice(d, size=self.max_features, replace=False)

    def _make_leaf(self, y: np.ndarray, w: np.ndarray) -> _Node:
        return _Node(value=self._leaf_value(y, w), n_samples=float(w.sum()))

    def _splittable(self, y: np.ndarray, depth: int | None) -> bool:
        if len(y) < self.min_samples_split:
            return False
        if depth is not None and self.max_depth is not None and depth >= self.max_depth:
            return False
        return True

    def _grow_depth_first(self, x, y, w, depth: int) -> _Node:
        node = self._make_leaf(y, w)
        if not self._splittable(y, depth):
            return node
        split = self._best_split(x, y, w, self._candidate_features())
        if split is None:
            return node
        feature, threshold, gain = split
        self._importance_acc[feature] += gain * float(w.sum())
        mask = x[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow_depth_first(x[mask], y[mask], w[mask], depth + 1)
        node.right = self._grow_depth_first(x[~mask], y[~mask], w[~mask], depth + 1)
        return node

    def _grow_best_first(self, x, y, w) -> _Node:
        """Grow by repeatedly splitting the leaf with the largest gain,
        until ``max_leaf_nodes`` is reached (how sklearn bounds leaves)."""
        counter = itertools.count()
        root = self._make_leaf(y, w)
        heap: list[tuple[float, int, _Node, np.ndarray, int]] = []

        def try_queue(node: _Node, idx: np.ndarray, depth: int) -> None:
            if not self._splittable(y[idx], depth):
                return
            split = self._best_split(x[idx], y[idx], w[idx], self._candidate_features())
            if split is None:
                return
            feature, threshold, gain = split
            node.feature = feature  # provisional; reverted if never popped
            node.threshold = threshold
            heapq.heappush(heap, (-gain, next(counter), node, idx, depth))

        all_idx = np.arange(len(y))
        try_queue(root, all_idx, 0)
        n_leaves = 1
        popped: list[tuple[_Node, np.ndarray, int]] = []
        while heap and n_leaves < self.max_leaf_nodes:
            neg_gain, _, node, idx, depth = heapq.heappop(heap)
            popped.append((node, idx, depth))
            self._importance_acc[node.feature] += -neg_gain * float(w[idx].sum())
            mask = x[idx, node.feature] <= node.threshold
            left_idx, right_idx = idx[mask], idx[~mask]
            node.left = self._make_leaf(y[left_idx], w[left_idx])
            node.right = self._make_leaf(y[right_idx], w[right_idx])
            n_leaves += 1
            try_queue(node.left, left_idx, depth + 1)
            try_queue(node.right, right_idx, depth + 1)
        # Any nodes still queued keep leaf semantics: clear provisional split.
        for _, _, node, _, _ in heap:
            node.feature = -1
        return root

    # -- prediction -------------------------------------------------------
    def _predict_values(self, x: np.ndarray) -> np.ndarray:
        if self.root is None:
            raise RuntimeError("tree is not fitted")
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != self.n_features_:
            raise ValueError(f"expected (n, {self.n_features_}) features")
        out = np.empty((len(x),) + self.root.value.shape, dtype=float)
        for i, row in enumerate(x):
            node = self.root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out

    def n_leaves(self) -> int:
        """Number of leaf nodes in the fitted tree."""
        if self.root is None:
            return 0
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                count += 1
            else:
                stack.extend([node.left, node.right])
        return count

    def depth(self) -> int:
        """Maximum root-to-leaf depth of the fitted tree."""
        if self.root is None:
            return 0

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self.root)

    def _prepare_targets(self, y: np.ndarray) -> None:  # noqa: B027 - optional hook
        pass


class DecisionTreeClassifier(_BaseTree):
    """Gini-impurity CART classifier; ``predict_proba`` gives class shares."""

    def _prepare_targets(self, y: np.ndarray) -> None:
        self.classes_ = np.unique(y)
        if len(self.classes_) < 1:
            raise ValueError("no classes in y")

    def _class_counts(self, y: np.ndarray, w: np.ndarray) -> np.ndarray:
        counts = np.zeros(len(self.classes_))
        for k, cls in enumerate(self.classes_):
            counts[k] = w[y == cls].sum()
        return counts

    def _leaf_value(self, y: np.ndarray, w: np.ndarray) -> np.ndarray:
        counts = self._class_counts(y, w)
        total = counts.sum()
        return counts / total if total > 0 else np.full(len(counts), 1.0 / len(counts))

    def _impurity(self, y: np.ndarray, w: np.ndarray) -> float:
        p = self._leaf_value(y, w)
        return float(1.0 - (p * p).sum())

    def _best_split(self, x, y, w, features):
        n = len(y)
        y_codes = np.searchsorted(self.classes_, y)
        k = len(self.classes_)
        onehot = np.zeros((n, k))
        onehot[np.arange(n), y_codes] = 1.0
        weighted = onehot * w[:, None]
        total_counts = weighted.sum(axis=0)
        total_w = w.sum()
        parent_gini = 1.0 - ((total_counts / total_w) ** 2).sum()

        best: tuple[int, float, float] | None = None
        best_gain = 1e-12
        for f in features:
            order = np.argsort(x[:, f], kind="stable")
            xs = x[order, f]
            cum_counts = np.cumsum(weighted[order], axis=0)
            cum_w = np.cumsum(w[order])
            # Valid split positions: between distinct adjacent values.
            pos = np.nonzero(xs[:-1] < xs[1:])[0]
            if len(pos) == 0:
                continue
            if self.min_samples_leaf > 1:
                pos = pos[
                    (pos + 1 >= self.min_samples_leaf)
                    & (n - pos - 1 >= self.min_samples_leaf)
                ]
                if len(pos) == 0:
                    continue
            left_w = cum_w[pos]
            right_w = total_w - left_w
            left_counts = cum_counts[pos]
            right_counts = total_counts[None, :] - left_counts
            gini_l = 1.0 - ((left_counts / left_w[:, None]) ** 2).sum(axis=1)
            gini_r = 1.0 - ((right_counts / right_w[:, None]) ** 2).sum(axis=1)
            children = (left_w * gini_l + right_w * gini_r) / total_w
            gains = parent_gini - children
            j = int(gains.argmax())
            if gains[j] > best_gain:
                best_gain = float(gains[j])
                threshold = float((xs[pos[j]] + xs[pos[j] + 1]) / 2.0)
                best = (int(f), threshold, best_gain)
        return best

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """``(n, n_classes)`` class-probability estimates."""
        return self._predict_values(x)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Most likely class label per row."""
        proba = self.predict_proba(x)
        return self.classes_[proba.argmax(axis=1)]


class DecisionTreeRegressor(_BaseTree):
    """Variance-reduction CART regressor."""

    def _leaf_value(self, y: np.ndarray, w: np.ndarray) -> np.ndarray:
        total = w.sum()
        mean = float((y * w).sum() / total) if total > 0 else 0.0
        return np.array([mean])

    def _impurity(self, y: np.ndarray, w: np.ndarray) -> float:
        total = w.sum()
        if total <= 0:
            return 0.0
        mean = (y * w).sum() / total
        return float((w * (y - mean) ** 2).sum() / total)

    def _best_split(self, x, y, w, features):
        n = len(y)
        y = y.astype(float)
        total_w = w.sum()
        total_sum = (y * w).sum()
        total_sq = (y * y * w).sum()
        parent_sse = total_sq - total_sum * total_sum / total_w

        best: tuple[int, float, float] | None = None
        best_gain = 1e-12
        for f in features:
            order = np.argsort(x[:, f], kind="stable")
            xs = x[order, f]
            yw = (y * w)[order]
            yyw = (y * y * w)[order]
            ws = w[order]
            cum_sum = np.cumsum(yw)
            cum_sq = np.cumsum(yyw)
            cum_w = np.cumsum(ws)
            pos = np.nonzero(xs[:-1] < xs[1:])[0]
            if len(pos) == 0:
                continue
            if self.min_samples_leaf > 1:
                pos = pos[
                    (pos + 1 >= self.min_samples_leaf)
                    & (n - pos - 1 >= self.min_samples_leaf)
                ]
                if len(pos) == 0:
                    continue
            lw = cum_w[pos]
            rw = total_w - lw
            ls = cum_sum[pos]
            rs = total_sum - ls
            lq = cum_sq[pos]
            rq = total_sq - lq
            sse = (lq - ls * ls / lw) + (rq - rs * rs / rw)
            gains = parent_sse - sse
            j = int(gains.argmax())
            if gains[j] > best_gain:
                best_gain = float(gains[j])
                threshold = float((xs[pos[j]] + xs[pos[j] + 1]) / 2.0)
                best = (int(f), threshold, best_gain)
        return best

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted target per row."""
        return self._predict_values(x)[:, 0]

    def leaves(self) -> list[_Node]:
        """All leaf nodes in deterministic (left-first DFS) order."""
        if self.root is None:
            raise RuntimeError("tree is not fitted")
        out: list[_Node] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                out.append(node)
            else:
                stack.append(node.right)
                stack.append(node.left)
        return out

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Stable leaf index (DFS order) each row lands in."""
        leaf_ids = {id(node): k for k, node in enumerate(self.leaves())}
        x = np.asarray(x, dtype=float)
        out = np.empty(len(x), dtype=int)
        for i, row in enumerate(x):
            node = self.root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = leaf_ids[id(node)]
        return out
