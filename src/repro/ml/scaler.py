"""Feature standardization."""

from __future__ import annotations

import numpy as np


class StandardScaler:
    """Zero-mean unit-variance scaling; constant features map to zero."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "StandardScaler":
        """Learn per-feature mean and standard deviation."""
        x = np.asarray(x, dtype=float)
        if x.ndim != 2:
            raise ValueError("x must be 2-D")
        if len(x) == 0:
            raise ValueError("cannot fit on an empty dataset")
        self.mean_ = x.mean(axis=0)
        std = x.std(axis=0)
        self.scale_ = np.where(std > 1e-12, std, 1.0)
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Apply the learned standardization."""
        if self.mean_ is None:
            raise RuntimeError("scaler is not fitted")
        x = np.asarray(x, dtype=float)
        return (x - self.mean_) / self.scale_

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        """Fit then transform in one call."""
        return self.fit(x).transform(x)

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        """Undo the standardization."""
        if self.mean_ is None:
            raise RuntimeError("scaler is not fitted")
        return np.asarray(x, dtype=float) * self.scale_ + self.mean_
