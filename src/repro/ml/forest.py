"""Random forest classifier (bagged CART trees) — DLInfMA-RF variant.

Paper hyperparameters: 400 trees, max depth 10.
"""

from __future__ import annotations

import numpy as np

from repro.ml.tree import DecisionTreeClassifier


class RandomForestClassifier:
    """Bootstrap-aggregated gini trees with sqrt-feature subsampling."""

    def __init__(
        self,
        n_estimators: int = 400,
        max_depth: int | None = 10,
        min_samples_leaf: int = 1,
        max_features: int | str | None = "sqrt",
        rng: np.random.Generator | None = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = rng or np.random.default_rng(0)
        self.trees_: list[DecisionTreeClassifier] = []
        self.classes_: np.ndarray | None = None

    def _resolve_max_features(self, d: int) -> int | None:
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(d)))
        if self.max_features is None:
            return None
        return int(self.max_features)

    def fit(
        self, x: np.ndarray, y: np.ndarray, sample_weight: np.ndarray | None = None
    ) -> "RandomForestClassifier":
        """Fit ``n_estimators`` trees on bootstrap resamples."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y)
        n, d = x.shape
        self.classes_ = np.unique(y)
        max_features = self._resolve_max_features(d)
        w = np.ones(n) if sample_weight is None else np.asarray(sample_weight, dtype=float)
        self.trees_ = []
        for _ in range(self.n_estimators):
            idx = self.rng.integers(0, n, size=n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                rng=self.rng,
            )
            tree.fit(x[idx], y[idx], sample_weight=w[idx])
            self.trees_.append(tree)
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Average of per-tree class probabilities, aligned to classes_."""
        if not self.trees_:
            raise RuntimeError("forest is not fitted")
        x = np.asarray(x, dtype=float)
        total = np.zeros((len(x), len(self.classes_)))
        for tree in self.trees_:
            proba = tree.predict_proba(x)
            cols = np.searchsorted(self.classes_, tree.classes_)
            total[:, cols] += proba
        return total / len(self.trees_)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Majority-probability class per row."""
        proba = self.predict_proba(x)
        return self.classes_[proba.argmax(axis=1)]

    @property
    def feature_importances_(self) -> np.ndarray:
        """Mean normalized split-gain importance across trees."""
        if not self.trees_:
            raise RuntimeError("forest is not fitted")
        return np.mean([t.feature_importances_ for t in self.trees_], axis=0)
