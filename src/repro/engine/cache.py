"""Content-fingerprint artifact caching for engine stages.

A stage's cache key is a SHA-256 fingerprint over (stage name, config,
inputs).  When the key matches a previous run, the stage's artifacts are
loaded from disk instead of recomputed — this is how a run resumes after
an interruption, and how repeated experiment sweeps skip the expensive
candidate-generation stages when config + data are unchanged.

Artifacts are written through :class:`ArtifactCodec` pairs; the DLInfMA
stages use the save/load functions from :mod:`repro.core.persistence`, so
the cache speaks the same on-disk formats as the deployed system.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
from dataclasses import dataclass
from typing import Any, Callable, Union

import numpy as np

from repro.obs import get_registry

PathLike = Union[str, pathlib.Path]


# ----------------------------------------------------------------------
# Fingerprinting
# ----------------------------------------------------------------------
def _update(h: "hashlib._Hash", obj: Any) -> None:
    """Feed one object into the hash, with an unambiguous type prefix."""
    if obj is None:
        h.update(b"N")
    elif isinstance(obj, bool):
        h.update(b"B1" if obj else b"B0")
    elif isinstance(obj, int):
        h.update(b"I" + str(obj).encode())
    elif isinstance(obj, float):
        h.update(b"F" + np.float64(obj).tobytes())
    elif isinstance(obj, str):
        h.update(b"S" + obj.encode())
    elif isinstance(obj, bytes):
        h.update(b"Y" + obj)
    elif isinstance(obj, np.ndarray):
        h.update(b"A" + str(obj.dtype).encode() + str(obj.shape).encode())
        h.update(np.ascontiguousarray(obj).tobytes())
    elif isinstance(obj, (np.integer, np.floating)):
        _update(h, obj.item())
    elif isinstance(obj, (list, tuple)):
        h.update(b"L" + str(len(obj)).encode())
        for item in obj:
            _update(h, item)
    elif isinstance(obj, (set, frozenset)):
        h.update(b"E" + str(len(obj)).encode())
        for item in sorted(obj, key=repr):
            _update(h, item)
    elif isinstance(obj, dict):
        h.update(b"D" + str(len(obj)).encode())
        for key in sorted(obj, key=repr):
            _update(h, key)
            _update(h, obj[key])
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        h.update(b"C" + type(obj).__qualname__.encode())
        for f in dataclasses.fields(obj):
            _update(h, f.name)
            _update(h, getattr(obj, f.name))
    elif hasattr(obj, "content_key"):
        h.update(b"K")
        _update(h, obj.content_key())
    else:
        raise TypeError(
            f"cannot fingerprint {type(obj).__name__}; add a content_key() "
            "method or pass a fingerprintable summary instead"
        )


def fingerprint(*objects: Any) -> str:
    """Stable hex digest of arbitrarily nested python/numpy content."""
    h = hashlib.sha256()
    for obj in objects:
        _update(h, obj)
    return h.hexdigest()[:20]


# ----------------------------------------------------------------------
# Codecs + cache
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ArtifactCodec:
    """How one stage output goes to/from disk."""

    suffix: str
    save: Callable[[Any, pathlib.Path], None]
    load: Callable[[pathlib.Path], Any]


class ArtifactCache:
    """Directory-backed store of stage artifacts keyed by fingerprint."""

    def __init__(self, directory: PathLike) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _manifest_path(self, stage_name: str, key: str) -> pathlib.Path:
        return self.directory / f"{stage_name}-{key}.manifest.json"

    def _artifact_path(self, stage_name: str, key: str, output: str, suffix: str) -> pathlib.Path:
        return self.directory / f"{stage_name}-{key}.{output}{suffix}"

    def load(
        self, stage_name: str, key: str, codecs: dict[str, ArtifactCodec]
    ) -> dict[str, Any] | None:
        """All cached outputs for (stage, key), or None on any miss.

        Every lookup increments ``artifact_cache_hits_total`` /
        ``artifact_cache_misses_total`` (labeled by stage) in the global
        metrics registry.
        """
        out = self._load(stage_name, key, codecs)
        name = (
            "artifact_cache_hits_total" if out is not None else "artifact_cache_misses_total"
        )
        get_registry().counter(
            name, "Artifact cache lookups by outcome, labeled by stage"
        ).inc(stage=stage_name)
        return out

    def _load(
        self, stage_name: str, key: str, codecs: dict[str, ArtifactCodec]
    ) -> dict[str, Any] | None:
        manifest_path = self._manifest_path(stage_name, key)
        if not manifest_path.exists():
            return None
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if set(manifest.get("outputs", [])) != set(codecs):
            return None
        out: dict[str, Any] = {}
        for output, codec in codecs.items():
            path = self._artifact_path(stage_name, key, output, codec.suffix)
            if not path.exists():
                return None
            out[output] = codec.load(path)
        return out

    def store(
        self,
        stage_name: str,
        key: str,
        outputs: dict[str, Any],
        codecs: dict[str, ArtifactCodec],
    ) -> None:
        """Persist the cacheable outputs of one stage execution."""
        get_registry().counter(
            "artifact_cache_stores_total", "Artifact cache writes, labeled by stage"
        ).inc(stage=stage_name)
        for output, codec in codecs.items():
            path = self._artifact_path(stage_name, key, output, codec.suffix)
            codec.save(outputs[output], path)
        manifest = {"stage": stage_name, "key": key, "outputs": sorted(codecs)}
        self._manifest_path(stage_name, key).write_text(json.dumps(manifest))
