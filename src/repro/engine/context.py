"""Run-level instrumentation shared by every pipeline stage.

A :class:`RunContext` travels through one engine run (a full fit or an
incremental update): it carries the pipeline configuration, accumulates
per-stage wall-clock timings (the Section V-F numbers), item counters
(how much work each stage actually did — the evidence that an incremental
run is O(new data)), and an optional :class:`~repro.engine.cache.ArtifactCache`
for resuming runs from disk.

Timing is a thin consumer of the :mod:`repro.obs` span API: every
:meth:`RunContext.timed` block opens a tracing span (a no-op unless
tracing is configured), so the ``timings`` dict, the trace file, and the
metrics registry all describe the same measured intervals.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterable, Iterator

from repro.obs import span as obs_span
from repro.obs.prof import active_memory_profiler
from repro.obs.trace import Span


@dataclass
class StageRecord:
    """What one stage execution did: duration, volume, cache status."""

    name: str
    seconds: float
    items_in: int | None = None
    items_out: int | None = None
    cached: bool = False


class RunContext:
    """Mutable state threaded through one engine run.

    ``timings`` maps ``"<stage>_s"`` to wall-clock seconds — the key
    convention every consumer (benchmarks, ``repro evaluate --timings``,
    :class:`~repro.apps.service.ServiceStats`) relies on.  ``counters``
    holds ``"<stage>.<metric>"`` item counts.  ``records`` keeps one
    :class:`StageRecord` per stage *execution*, in execution order — the
    authoritative ordering for reports.
    """

    def __init__(self, config: Any = None, cache: Any = None, label: str = "run") -> None:
        self.config = config
        self.cache = cache
        self.label = label
        self.timings: dict[str, float] = {}
        self.counters: dict[str, int] = {}
        self.records: list[StageRecord] = []

    # ------------------------------------------------------------------
    @contextmanager
    def timed(self, name: str, **attributes: Any) -> Iterator[Span | None]:
        """Time a block as stage ``name`` (accumulates on repeats).

        Opens a tracing span of the same name (yielded so callers can
        attach attributes mid-flight; ``None`` when tracing is off), so
        trace durations and ``timings`` agree.
        """
        t0 = time.perf_counter()
        with obs_span(name, run=self.label, **attributes) as sp:
            try:
                yield sp
            finally:
                key = f"{name}_s"
                self.timings[key] = self.timings.get(key, 0.0) + (time.perf_counter() - t0)
                memory = active_memory_profiler()
                if memory is not None:
                    # Opt-in per-stage memory capture (--memory): one
                    # labeled tracemalloc reading per timed stage.
                    memory.snapshot(f"{self.label}:{name}")

    def count(self, stage: str, metric: str, n: int) -> None:
        """Record an item counter for a stage (accumulates on repeats)."""
        key = f"{stage}.{metric}"
        self.counters[key] = self.counters.get(key, 0) + int(n)

    def record(
        self,
        name: str,
        seconds: float,
        items_in: int | None = None,
        items_out: int | None = None,
        cached: bool = False,
    ) -> StageRecord:
        """Append a :class:`StageRecord` (kept in execution order)."""
        rec = StageRecord(name, seconds, items_in, items_out, cached)
        self.records.append(rec)
        return rec

    # ------------------------------------------------------------------
    def merge_timings(
        self,
        timings: dict[str, float],
        records: Iterable[StageRecord] = (),
    ) -> None:
        """Adopt timings produced elsewhere (e.g. shared artifacts).

        Pass the producing context's ``records`` too so the adopted stages
        keep their execution order in :meth:`timing_rows` instead of
        appearing after locally-run stages.
        """
        merged = list(records)
        if merged:
            self.records = merged + self.records
        for key, value in timings.items():
            self.timings[key] = self.timings.get(key, 0.0) + float(value)

    def timing_rows(self) -> list[tuple[str, float]]:
        """``(stage, seconds)`` rows in execution order.

        Ordering follows ``records`` (first execution wins); timings with
        no record — e.g. merged from artifacts built elsewhere without
        records — are appended afterwards in insertion order.
        """
        rows: list[tuple[str, float]] = []
        seen: set[str] = set()
        for rec in self.records:
            if rec.name in seen:
                continue
            seen.add(rec.name)
            rows.append((rec.name, self.timings.get(f"{rec.name}_s", rec.seconds)))
        for key, value in self.timings.items():
            name = key[: -len("_s")] if key.endswith("_s") else key
            if name not in seen:
                seen.add(name)
                rows.append((name, value))
        return rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stages = ", ".join(f"{k}={v:.3f}" for k, v in self.timings.items())
        return f"RunContext({self.label!r}, {stages})"
