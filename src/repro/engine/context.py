"""Run-level instrumentation shared by every pipeline stage.

A :class:`RunContext` travels through one engine run (a full fit or an
incremental update): it carries the pipeline configuration, accumulates
per-stage wall-clock timings (the Section V-F numbers), item counters
(how much work each stage actually did — the evidence that an incremental
run is O(new data)), and an optional :class:`~repro.engine.cache.ArtifactCache`
for resuming runs from disk.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator


@dataclass
class StageRecord:
    """What one stage execution did: duration, volume, cache status."""

    name: str
    seconds: float
    items_in: int | None = None
    items_out: int | None = None
    cached: bool = False


class RunContext:
    """Mutable state threaded through one engine run.

    ``timings`` maps ``"<stage>_s"`` to wall-clock seconds — the key
    convention every consumer (benchmarks, ``repro evaluate --timings``,
    :class:`~repro.apps.service.ServiceStats`) relies on.  ``counters``
    holds ``"<stage>.<metric>"`` item counts.
    """

    def __init__(self, config: Any = None, cache: Any = None, label: str = "run") -> None:
        self.config = config
        self.cache = cache
        self.label = label
        self.timings: dict[str, float] = {}
        self.counters: dict[str, int] = {}
        self.records: list[StageRecord] = []

    # ------------------------------------------------------------------
    @contextmanager
    def timed(self, name: str) -> Iterator[None]:
        """Time a block as stage ``name`` (accumulates on repeats)."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            key = f"{name}_s"
            self.timings[key] = self.timings.get(key, 0.0) + (time.perf_counter() - t0)

    def count(self, stage: str, metric: str, n: int) -> None:
        """Record an item counter for a stage (accumulates on repeats)."""
        key = f"{stage}.{metric}"
        self.counters[key] = self.counters.get(key, 0) + int(n)

    def record(
        self,
        name: str,
        seconds: float,
        items_in: int | None = None,
        items_out: int | None = None,
        cached: bool = False,
    ) -> StageRecord:
        """Append a :class:`StageRecord` (kept in execution order)."""
        rec = StageRecord(name, seconds, items_in, items_out, cached)
        self.records.append(rec)
        return rec

    # ------------------------------------------------------------------
    def merge_timings(self, timings: dict[str, float]) -> None:
        """Adopt timings produced elsewhere (e.g. shared artifacts)."""
        for key, value in timings.items():
            self.timings[key] = self.timings.get(key, 0.0) + float(value)

    def timing_rows(self) -> list[tuple[str, float]]:
        """``(stage, seconds)`` rows in a stable, reportable order."""
        return [(k[: -len("_s")], v) for k, v in self.timings.items()]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stages = ", ".join(f"{k}={v:.3f}" for k, v in self.timings.items())
        return f"RunContext({self.label!r}, {stages})"
