"""The stage abstraction: typed, registered, resumable pipeline steps.

A :class:`Stage` is a named function with a declared input/output contract
over a shared state dict.  A :class:`StagePlan` executes a sequence of
stages, enforcing the contract, timing and counting every step through the
:class:`~repro.engine.context.RunContext`, and consulting the run's
:class:`~repro.engine.cache.ArtifactCache` for stages that declared disk
codecs.

Stages register globally by name (:func:`register_stage` / :func:`stage`)
so plans can be declared as name lists and later PRs can swap
implementations (sharded, async, multi-backend) behind stable names.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.engine.cache import ArtifactCodec, fingerprint
from repro.engine.context import RunContext
from repro.obs import event, get_registry
from repro.obs import span as obs_span


@dataclass(frozen=True)
class Stage:
    """One pipeline step with a declared state contract.

    ``fn(ctx, **inputs)`` must return a dict covering ``outputs``.
    ``cache_codecs`` marks outputs that can round-trip through the artifact
    cache; a stage is only ever cache-skipped when *all* of its outputs
    have codecs.  ``cache_inputs`` optionally narrows which inputs feed the
    cache key, and ``cache_config`` projects the run config down to the
    fields this stage actually reads (e.g. ``workers`` changes parallelism,
    not results, so it must not invalidate cached extractions).
    """

    name: str
    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    fn: Callable[..., dict[str, Any]]
    cache_codecs: dict[str, ArtifactCodec] = field(default_factory=dict)
    cache_inputs: tuple[str, ...] | None = None
    cache_config: Callable[[Any], Any] | None = None

    @property
    def cacheable(self) -> bool:
        return bool(self.cache_codecs) and set(self.cache_codecs) == set(self.outputs)

    def run(self, ctx: RunContext, state: dict[str, Any]) -> dict[str, Any]:
        """Execute against ``state``, validating the contract."""
        missing = [k for k in self.inputs if k not in state]
        if missing:
            raise KeyError(f"stage {self.name!r} missing inputs: {missing}")
        out = self.fn(ctx, **{k: state[k] for k in self.inputs})
        if not isinstance(out, dict):
            raise TypeError(f"stage {self.name!r} must return a dict of outputs")
        undeclared = set(out) - set(self.outputs)
        absent = set(self.outputs) - set(out)
        if undeclared or absent:
            raise ValueError(
                f"stage {self.name!r} output mismatch: "
                f"undeclared={sorted(undeclared)} absent={sorted(absent)}"
            )
        return out


_REGISTRY: dict[str, Stage] = {}


def register_stage(stage_obj: Stage, replace: bool = False) -> Stage:
    """Add a stage to the global registry (name collision is an error)."""
    if not replace and stage_obj.name in _REGISTRY:
        raise ValueError(f"stage {stage_obj.name!r} is already registered")
    _REGISTRY[stage_obj.name] = stage_obj
    return stage_obj


def stage(
    name: str,
    inputs: Sequence[str],
    outputs: Sequence[str],
    cache_codecs: dict[str, ArtifactCodec] | None = None,
    cache_inputs: Sequence[str] | None = None,
    cache_config: Callable[[Any], Any] | None = None,
    replace: bool = False,
) -> Callable[[Callable[..., dict[str, Any]]], Stage]:
    """Decorator: register ``fn`` as a stage and return the Stage object."""

    def decorator(fn: Callable[..., dict[str, Any]]) -> Stage:
        return register_stage(
            Stage(
                name=name,
                inputs=tuple(inputs),
                outputs=tuple(outputs),
                fn=fn,
                cache_codecs=dict(cache_codecs or {}),
                cache_inputs=tuple(cache_inputs) if cache_inputs is not None else None,
                cache_config=cache_config,
            ),
            replace=replace,
        )

    return decorator


def get_stage(name: str) -> Stage:
    """Look a registered stage up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown stage {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def available_stages() -> list[str]:
    """Registered stage names, sorted."""
    return sorted(_REGISTRY)


def _maybe_len(value: Any) -> int | None:
    try:
        return len(value)
    except TypeError:
        return None


class StagePlan:
    """An ordered sequence of stages executed over a shared state dict."""

    def __init__(self, stages: Iterable[Stage | str]) -> None:
        self.stages: list[Stage] = [
            get_stage(s) if isinstance(s, str) else s for s in stages
        ]

    def run(self, ctx: RunContext, state: dict[str, Any]) -> dict[str, Any]:
        """Run every stage in order, mutating and returning ``state``.

        Cacheable stages are fingerprinted over (name, config, inputs);
        on a hit their artifacts load from disk and ``fn`` never runs.
        """
        stage_hist = get_registry().histogram(
            "engine_stage_seconds", "Wall-clock seconds per engine stage execution"
        )
        for stg in self.stages:
            key = None
            if ctx.cache is not None and stg.cacheable:
                key_inputs = stg.cache_inputs if stg.cache_inputs is not None else stg.inputs
                cfg_part = (
                    stg.cache_config(ctx.config) if stg.cache_config is not None else ctx.config
                )
                key = fingerprint(
                    stg.name, cfg_part, {k: state.get(k) for k in key_inputs}
                )
                cached = ctx.cache.load(stg.name, key, stg.cache_codecs)
                if cached is not None:
                    with obs_span(stg.name, run=ctx.label, cached=True, cache_key=key):
                        state.update(cached)
                    ctx.timings.setdefault(f"{stg.name}_s", 0.0)
                    ctx.count(stg.name, "cache_hits", 1)
                    ctx.record(stg.name, 0.0, cached=True)
                    event(
                        "stage.cache_hit", level="debug", component="engine",
                        stage=stg.name, run=ctx.label, key=key,
                    )
                    continue
            t0 = time.perf_counter()
            with ctx.timed(stg.name, cached=False) as sp:
                out = stg.run(ctx, state)
                items_in = _maybe_len(state.get(stg.inputs[0])) if stg.inputs else None
                items_out = _maybe_len(out.get(stg.outputs[0])) if stg.outputs else None
                if sp is not None:
                    sp.set("items_in", items_in)
                    sp.set("items_out", items_out)
            seconds = time.perf_counter() - t0
            stage_hist.observe(seconds, stage=stg.name)
            ctx.record(stg.name, seconds, items_in=items_in, items_out=items_out)
            state.update(out)
            if key is not None:
                ctx.cache.store(stg.name, key, out, stg.cache_codecs)
            event(
                "stage.complete", level="debug", component="engine",
                stage=stg.name, run=ctx.label, seconds=seconds,
                items_in=items_in, items_out=items_out,
            )
        return state
