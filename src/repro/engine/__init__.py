"""Staged incremental inference engine.

The production skeleton behind DLInfMA: pipelines are expressed as
registered :class:`Stage` objects with typed input/output contracts, run
by a :class:`StagePlan` under a :class:`RunContext` that records per-stage
wall-clock timings and item counters, with content-fingerprint artifact
caching (:class:`ArtifactCache`) for resuming runs from disk.
"""

from repro.engine.cache import ArtifactCache, ArtifactCodec, fingerprint
from repro.engine.context import RunContext, StageRecord
from repro.engine.stage import (
    Stage,
    StagePlan,
    available_stages,
    get_stage,
    register_stage,
    stage,
)

__all__ = [
    "ArtifactCache",
    "ArtifactCodec",
    "fingerprint",
    "RunContext",
    "StageRecord",
    "Stage",
    "StagePlan",
    "available_stages",
    "get_stage",
    "register_stage",
    "stage",
]
