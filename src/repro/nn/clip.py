"""Gradient clipping utilities."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.tensor import Tensor


def clip_grad_norm(params: Sequence[Tensor], max_norm: float) -> float:
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm.  Parameters without gradients are
    skipped; clipping is a no-op when the norm is already within bounds.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    total = 0.0
    grads = [p.grad for p in params if p.grad is not None]
    for g in grads:
        # np.dot on the raveled gradient is one BLAS call with no
        # temporary, vs an elementwise square plus a reduce.
        flat = g.ravel()
        total += float(np.dot(flat, flat))
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for g in grads:
            g *= scale
    return norm


def clip_grad_value(params: Sequence[Tensor], max_value: float) -> None:
    """Clamp every gradient element into ``[-max_value, max_value]``."""
    if max_value <= 0:
        raise ValueError("max_value must be positive")
    for p in params:
        if p.grad is not None:
            np.clip(p.grad, -max_value, max_value, out=p.grad)
