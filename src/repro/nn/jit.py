"""Replay layer: trace a step once, then replay its fused schedule.

:class:`TracedStep` wraps a function that takes numpy arrays, does its
work through :class:`~repro.nn.Tensor` ops, and returns numpy arrays
(realized outputs).  The first call for a given input-shape/dtype
signature executes normally with a :class:`~repro.nn.schedule.PlanRecorder`
installed, capturing every scheduled kernel into a slot program.  Later
calls with the same signature skip Python graph construction, autograd
bookkeeping, and scheduling entirely: the recorded kernels are re-run
over a slot table with the new input buffers.

Side effects that replays must reproduce are handled explicitly:

- **parameters** — slots holding a parameter's array re-read ``p.data``
  every replay, so ``load_state_dict`` (which swaps arrays) keeps working;
- **gradients** — after a traced ``backward()``, each parameter's grad
  slot is written back to ``p.grad`` at the end of every replay;
- **randomness** — ``gen`` nodes (dropout masks) re-invoke their callable
  per replay, advancing the module's RNG exactly as eager mode would;
- **buffer reuse** — intermediates whose alias group is dead are donated
  as ``out=`` targets for later shape/dtype-matching kernels.

When lazy mode is disabled (``REPRO_NN_EAGER=1``) the wrapped function is
called directly and nothing is traced.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.nn.graph import lazy_enabled
from repro.nn.schedule import PlanRecorder, pop_recorder, push_recorder


class _Plan:
    """A finalized replayable program for one input signature."""

    __slots__ = (
        "steps",
        "slot_arrays",
        "input_slots",
        "param_slots",
        "grad_slots",
        "output_slots",
        "single_output",
        "n_donated",
        "run",
    )

    def __init__(self):
        self.steps = []  # (fn, in_slots, out_slot, donate_slot, is_gen, dtype)
        self.slot_arrays = []
        self.input_slots = []
        self.param_slots = []  # (slot, param)
        self.grad_slots = []  # (slot, param)
        self.output_slots = []
        self.single_output = True
        self.n_donated = 0
        self.run = None  # compiled straight-line replay program


def _signature(arrays: Sequence[np.ndarray]):
    return tuple((a.shape, a.dtype.str) for a in arrays)


def _plan_donation(plan: _Plan) -> None:
    """Assign ``out=`` donation targets to out-capable steps.

    A produced slot's buffer may be reused once its *alias group* (itself
    plus any movement-op views taken of it) is dead and no member is an
    input, parameter, output, or gradient slot.  Donation targets are
    always arrays produced earlier in the same replay, never trace-time
    constants, so concurrent replays of one plan cannot alias.
    """
    n_slots = len(plan.slot_arrays)
    parent = list(range(n_slots))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    protected = set()
    for slot in plan.input_slots:
        if slot is not None:
            protected.add(slot)
    protected.update(slot for slot, _ in plan.param_slots)
    protected.update(slot for slot, _ in plan.grad_slots)
    protected.update(plan.output_slots)
    produced_at: dict[int, int] = {}
    last_use: dict[int, int] = {}
    for t, (fn, in_slots, out_slot, out_capable, is_movement, is_gen, dtype) in (
        enumerate(plan.steps)
    ):
        for s in in_slots:
            last_use[s] = t
        produced_at[out_slot] = t
        if is_movement and in_slots:
            parent[find(out_slot)] = find(in_slots[0])

    # Trace-time constants (leaf slots never produced by a step) must not
    # be written into: they are shared with live tensors and the graph.
    for slot in range(n_slots):
        if slot not in produced_at:
            protected.add(slot)

    group_last: dict[int, int] = {}
    group_protected: set[int] = set()
    for slot in range(n_slots):
        root = find(slot)
        use = last_use.get(slot, -1)
        if use > group_last.get(root, -1):
            group_last[root] = use
        if slot in protected or (
            slot in produced_at
            and plan.steps[produced_at[slot]][4]  # movement output: a view
        ):
            group_protected.add(root)

    # Walk the steps, freeing dead groups and matching them to later
    # out-capable steps of identical shape and dtype.
    free: dict[tuple, list[int]] = {}
    shape_of = [None if a is None else a.shape for a in plan.slot_arrays]
    for t, step in enumerate(plan.steps):
        fn, in_slots, out_slot, out_capable, is_movement, is_gen, dtype = step
        donate = None
        if out_capable:
            bucket = free.get((shape_of[out_slot], dtype.str))
            if bucket:
                donate = bucket.pop()
                plan.n_donated += 1
        plan.steps[t] = (fn, in_slots, out_slot, donate, is_gen, dtype)
        for s in set(in_slots):
            root = find(s)
            if (
                group_last.get(root) == t
                and root not in group_protected
                and s in produced_at
                and s != out_slot
            ):
                free.setdefault((shape_of[s], dtype_of(plan, s)), []).append(s)


def dtype_of(plan: _Plan, slot: int) -> str:
    arr = plan.slot_arrays[slot]
    return arr.dtype.str if arr is not None else ""


def _render_sum(arg, src: str, a: np.ndarray, namespace: dict) -> str | None:
    """BLAS rendering for a contiguous sum over leading or trailing axes.

    ``ufunc.reduce`` with an explicit axis costs ~10µs in dispatch alone,
    several times the actual summation on LocMatcher-sized batches.  When
    the trace-time input is C-contiguous and the reduced axes form a
    leading or trailing block, the sum is a single gemv against a cached
    ones vector; shapes are fixed per plan, so the reshape dimensions can
    be baked into the source.
    """
    axis, keepdims = arg
    ndim = a.ndim
    if ndim == 0 or a.size == 0 or a.dtype.kind != "f" or not a.flags.c_contiguous:
        return None
    if axis is None:
        axes = tuple(range(ndim))
    else:
        raw = axis if isinstance(axis, tuple) else (axis,)
        axes = tuple(sorted(ax % ndim for ax in raw))
    if len(set(axes)) != len(axes):
        return None

    def ones(n: int) -> str:
        name = f"_ones{n}{a.dtype.char}"
        namespace[name] = np.ones(n, dtype=a.dtype)
        return name

    if axes == tuple(range(ndim)):
        # Full reduction to a scalar; the shape-() coercion line that the
        # compiler emits after every scalar-producing step re-wraps it.
        return None if keepdims else f"({src}.reshape(-1) @ {ones(a.size)})"
    red = 1
    for d in axes:
        red *= a.shape[d]
    rest = a.size // red
    if axes == tuple(range(len(axes))):  # leading block
        expr = f"({ones(red)} @ {src}.reshape({red}, {rest}))"
    elif axes == tuple(range(ndim - len(axes), ndim)):  # trailing block
        expr = f"({src}.reshape({rest}, {red}) @ {ones(red)})"
    else:
        return None
    if keepdims:
        out_shape = tuple(1 if d in axes else a.shape[d] for d in range(ndim))
    else:
        out_shape = tuple(a.shape[d] for d in range(ndim) if d not in axes)
    if out_shape == (rest,):
        return expr
    return f"{expr}.reshape({out_shape!r})"


def _render_inline(kind: str, arg, args: list[str]) -> str | None:
    """Direct numpy source for an interpreted step (None: call the fn).

    Args whose ``repr`` is exact (ints, bools, None, tuples thereof) are
    baked into the source; anything else (e.g. ``getitem`` slices) keeps
    the closure call.
    """
    if kind == "matmul":
        return f"np.matmul({args[0]}, {args[1]})"
    if kind == "sum":
        axis, keepdims = arg
        return f"np.add.reduce({args[0]}, axis={axis!r}, keepdims={keepdims!r})"
    if kind == "max":
        axis, keepdims = arg
        return f"np.maximum.reduce({args[0]}, axis={axis!r}, keepdims={keepdims!r})"
    if kind == "cumsum":
        return f"np.cumsum({args[0]}, axis={arg!r})"
    if kind == "reshape":
        return f"{args[0]}.reshape({arg!r})"
    if kind == "transpose":
        return f"{args[0]}.transpose({arg!r})"
    if kind == "swapaxes":
        return f"{args[0]}.swapaxes({arg[0]!r}, {arg[1]!r})"
    if kind == "expand":
        return f"np.broadcast_to({args[0]}, {arg!r})"
    if kind == "cat":
        return f"np.concatenate(({', '.join(args)},), axis={arg!r})"
    if kind == "stack":
        return f"np.stack(({', '.join(args)},), axis={arg!r})"
    return None


def _compile_program(plan: _Plan) -> Callable:
    """Unroll the plan into one generated function over local variables.

    The interpreted replay loop pays per step for tuple unpacking, slot
    list indexing, and branch dispatch — on LocMatcher-sized plans
    (hundreds of steps per batch) that overhead rivals the numpy work.
    Generating straight-line code (``v12 = f3(v4, v7)``) keeps every
    intermediate in a Python local and bakes donation targets, gen
    re-rolls, and dtype guards into the source.  The function reads leaf
    and input slots from ``slots`` and writes back only the slots read
    afterwards (gradients and outputs).
    """
    lines = ["def _program(slots):"]
    namespace: dict = {"np": np, "_nd": np.ndarray, "_asarray": np.asarray}
    written: set[int] = set()
    loaded: set[int] = set()

    def ensure(slot: int) -> None:
        if slot not in written and slot not in loaded:
            lines.append(f"    v{slot} = slots[{slot}]")
            loaded.add(slot)

    for t, (fn, in_slots, out_slot, donate, is_gen, dtype) in enumerate(plan.steps):
        namespace[f"d{t}"] = dtype
        for s in in_slots:
            ensure(s)
        if donate is not None:
            ensure(donate)
        arg_names = [f"v{s}" for s in in_slots]
        args = ", ".join(arg_names)
        call = None
        if is_gen:
            call = f"f{t}()"
        elif donate is not None:
            call = f"f{t}({args}, _out=v{donate})"
        else:
            kind = getattr(fn, "_kind", None)
            if kind == "sum":
                a = plan.slot_arrays[in_slots[0]]
                if a is not None:
                    call = _render_sum(fn._arg, arg_names[0], a, namespace)
            if call is None and kind is not None:
                call = _render_inline(kind, fn._arg, arg_names)
            if call is None:
                call = f"f{t}({args})"
        if f"f{t}(" in call:
            namespace[f"f{t}"] = fn
        lines.append(f"    v{out_slot} = {call}")
        out_arr = plan.slot_arrays[out_slot]
        if out_arr is not None and out_arr.shape == ():
            # Full reductions yield numpy scalars, not ndarrays.
            lines.append(
                f"    if not isinstance(v{out_slot}, _nd):"
                f" v{out_slot} = _asarray(v{out_slot})"
            )
        lines.append(
            f"    if v{out_slot}.dtype != d{t}:"
            f" v{out_slot} = v{out_slot}.astype(d{t})"
        )
        written.add(out_slot)
    for slot in {*plan.output_slots, *(s for s, _ in plan.grad_slots)}:
        ensure(slot)
        lines.append(f"    slots[{slot}] = v{slot}")
    src = "\n".join(lines) + "\n"
    exec(src, namespace)  # noqa: S102 - generated from recorded plan steps
    program = namespace["_program"]
    program.__doc__ = src
    return program


class TracedStep:
    """Trace-and-replay wrapper around an array-in/array-out step function.

    Parameters
    ----------
    fn:
        ``fn(*arrays) -> ndarray | tuple[ndarray, ...]``.  Must consume
        every input through Tensor ops (an unused or silently copied
        input would be frozen into the trace) and return realized
        arrays (e.g. ``loss.numpy()``).
    params:
        Parameters whose ``.data`` slots are refreshed and whose ``.grad``
        (if produced by the trace) is written back on every replay.
    """

    def __init__(self, fn: Callable, params: Iterable = ()) -> None:
        self.fn = fn
        self.params = list(params)
        self.plans: dict[tuple, _Plan] = {}
        self._lock = threading.RLock()

    def reset(self) -> None:
        """Drop all traced plans (e.g. after changing the architecture)."""
        with self._lock:
            self.plans.clear()

    @property
    def n_plans(self) -> int:
        return len(self.plans)

    def __call__(self, *arrays: np.ndarray):
        if not lazy_enabled():
            return self.fn(*arrays)
        key = _signature(arrays)
        with self._lock:
            plan = self.plans.get(key)
            if plan is None:
                plan = self._trace(arrays)
                self.plans[key] = plan
                return self._structure(plan, [plan.slot_arrays[s] for s in plan.output_slots])
            return self._replay(plan, arrays)

    # ------------------------------------------------------------------
    def _trace(self, arrays: Sequence[np.ndarray]) -> _Plan:
        for p in self.params:
            p.grad = None
        recorder = PlanRecorder()
        push_recorder(recorder)
        try:
            outputs = self.fn(*arrays)
        finally:
            pop_recorder()
        plan = _Plan()
        plan.steps = list(recorder.steps)
        plan.slot_arrays = list(recorder.slot_arrays)
        single = not isinstance(outputs, (tuple, list))
        out_arrays = [outputs] if single else list(outputs)
        plan.single_output = single
        for i, out in enumerate(out_arrays):
            slot = recorder.slot_of_array(np.asarray(out))
            if slot is None:
                raise RuntimeError(
                    f"traced output {i} is not a realized graph array; "
                    "return Tensor.numpy() results from the traced fn"
                )
            plan.output_slots.append(slot)
        for i, arr in enumerate(arrays):
            slot = recorder.slot_of_array(arr)
            if slot is None:
                raise RuntimeError(
                    f"traced input {i} (shape {arr.shape}) never reached the "
                    "graph — it was unused or copied (dtype/layout mismatch?)"
                )
            plan.input_slots.append(slot)
        for p in self.params:
            slot = recorder.slot_of_array(p.data)
            if slot is not None:
                plan.param_slots.append((slot, p))
            gslot = recorder.slot_of_array(p.grad)
            if gslot is not None:
                plan.grad_slots.append((gslot, p))
        _plan_donation(plan)
        plan.run = _compile_program(plan)
        return plan

    def _replay(self, plan: _Plan, arrays: Sequence[np.ndarray]):
        slots = list(plan.slot_arrays)
        for slot, p in plan.param_slots:
            slots[slot] = p.data
        for pos, slot in enumerate(plan.input_slots):
            slots[slot] = arrays[pos]
        plan.run(slots)
        for slot, p in plan.grad_slots:
            g = slots[slot]
            p.grad = g if g.flags.writeable else g.copy()
        return self._structure(plan, [slots[s] for s in plan.output_slots])

    @staticmethod
    def _structure(plan: _Plan, outs: list):
        return outs[0] if plan.single_output else tuple(outs)


def jit(params: Iterable = ()) -> Callable:
    """Decorator form of :class:`TracedStep`.

    ::

        @jit(params=model.parameters())
        def step(x, y):
            ...
            return loss.numpy()
    """

    def wrap(fn: Callable) -> TracedStep:
        return TracedStep(fn, params=params)

    return wrap
