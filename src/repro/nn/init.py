"""Weight initialization schemes."""

from __future__ import annotations

import numpy as np

from repro.nn.graph import DEFAULT_DTYPE

_GLOBAL_SEED = np.random.default_rng(0)


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator | None = None) -> np.ndarray:
    """Glorot/Xavier uniform init for a (fan_in, fan_out)-style shape."""
    rng = rng or _GLOBAL_SEED
    fan_in, fan_out = _fans(shape)
    limit = float(np.sqrt(6.0 / (fan_in + fan_out)))
    return rng.uniform(-limit, limit, size=shape).astype(DEFAULT_DTYPE)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator | None = None) -> np.ndarray:
    """He uniform init (ReLU gain)."""
    rng = rng or _GLOBAL_SEED
    fan_in, _ = _fans(shape)
    limit = float(np.sqrt(6.0 / fan_in))
    return rng.uniform(-limit, limit, size=shape).astype(DEFAULT_DTYPE)


def normal(shape: tuple[int, ...], std: float = 0.02, rng: np.random.Generator | None = None) -> np.ndarray:
    """Zero-mean Gaussian init."""
    rng = rng or _GLOBAL_SEED
    return rng.normal(0.0, std, size=shape).astype(DEFAULT_DTYPE)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    # Conv kernels (out_ch, in_ch, kh, kw).
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive
