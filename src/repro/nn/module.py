"""Module base class: parameter discovery, train/eval mode, state dicts."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.nn.tensor import Tensor


class Module:
    """Base class for layers and models.

    Parameters are ``Tensor`` attributes with ``requires_grad=True``;
    :meth:`parameters` finds them recursively through ``Module``,
    ``list``/``tuple``-of-``Module`` and ``dict`` attributes.
    """

    def __init__(self) -> None:
        self.training = True

    # Subclasses implement forward(); __call__ delegates.
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------
    def _children(self) -> Iterator["Module"]:
        for value in self.__dict__.values():
            if isinstance(value, Module):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield item
            elif isinstance(value, dict):
                for item in value.values():
                    if isinstance(item, Module):
                        yield item

    def _own_parameters(self) -> Iterator[tuple[str, Tensor]]:
        for attr, value in self.__dict__.items():
            if isinstance(value, Tensor) and value.requires_grad:
                yield attr, value

    def parameters(self) -> list[Tensor]:
        """All trainable tensors, depth-first and deduplicated."""
        seen: set[int] = set()
        out: list[Tensor] = []

        def visit(module: "Module") -> None:
            for _, p in module._own_parameters():
                if id(p) not in seen:
                    seen.add(id(p))
                    out.append(p)
            for child in module._children():
                visit(child)

        visit(self)
        return out

    def named_parameters(self, prefix: str = "") -> list[tuple[str, Tensor]]:
        """``(dotted_name, tensor)`` pairs for every trainable parameter."""
        out: list[tuple[str, Tensor]] = []
        for attr, p in self._own_parameters():
            out.append((f"{prefix}{attr}", p))
        for name, value in self.__dict__.items():
            if isinstance(value, Module):
                out.extend(value.named_parameters(f"{prefix}{name}."))
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        out.extend(item.named_parameters(f"{prefix}{name}.{i}."))
            elif isinstance(value, dict):
                for key, item in value.items():
                    if isinstance(item, Module):
                        out.extend(item.named_parameters(f"{prefix}{name}.{key}."))
        return out

    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for p in self.parameters():
            p.zero_grad()

    def train(self) -> "Module":
        """Enable training mode (dropout active) recursively."""
        self.training = True
        for child in self._children():
            child.train()
        return self

    def eval(self) -> "Module":
        """Enable inference mode (dropout off) recursively."""
        self.training = False
        for child in self._children():
            child.eval()
        return self

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter array, keyed by dotted name."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter arrays previously produced by :meth:`state_dict`."""
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, array in state.items():
            p = params[name]
            # Cast to the parameter's dtype (float32 end-to-end policy):
            # states saved under either engine load into the same precision
            # the model computes in.
            array = np.asarray(array, dtype=p.data.dtype)
            if array.shape != p.data.shape:
                raise ValueError(f"shape mismatch for {name}: {array.shape} vs {p.data.shape}")
            p.data = array.copy()

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return sum(p.size for p in self.parameters())
