"""Optimizers and learning-rate schedules."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.tensor import Tensor


class Optimizer:
    """Base optimizer over a fixed parameter list."""

    def __init__(self, params: Sequence[Tensor], lr: float) -> None:
        params = list(params)
        if not params:
            raise ValueError("no parameters to optimize")
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.params = params
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear all parameter gradients."""
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: Sequence[Tensor], lr: float = 1e-2, momentum: float = 0.0) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            v *= self.momentum
            v += p.grad
            p.data -= self.lr * v


class Adam(Optimizer):
    """Adam (Kingma & Ba); paper settings: beta1=0.9, beta2=0.999, lr=1e-4."""

    def __init__(
        self,
        params: Sequence[Tensor],
        lr: float = 1e-4,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._t = 0
        # Moments live in one flat buffer per kind when every parameter
        # shares a dtype; the per-param lists below are then views into
        # it, so serialization and the per-param fallback see the same
        # memory while the fast path runs ~10 big ufunc calls instead of
        # ~10 per parameter.
        dtypes = {p.data.dtype for p in self.params}
        if len(dtypes) == 1:
            total = sum(p.data.size for p in self.params)
            dtype = dtypes.pop()
            self._flat_m = np.zeros(total, dtype=dtype)
            self._flat_v = np.zeros(total, dtype=dtype)
            self._flat_g = np.empty(total, dtype=dtype)
            self._flat_u = np.empty(total, dtype=dtype)

            def views(flat: np.ndarray) -> list[np.ndarray]:
                out, offset = [], 0
                for p in self.params:
                    out.append(flat[offset : offset + p.data.size].reshape(p.data.shape))
                    offset += p.data.size
                return out

            self._m = views(self._flat_m)
            self._v = views(self._flat_v)
            self._gviews = views(self._flat_g)
            self._scratch = views(self._flat_u)
        else:
            self._flat_m = None
            self._m = [np.zeros_like(p.data) for p in self.params]
            self._v = [np.zeros_like(p.data) for p in self.params]
            self._scratch = [np.empty_like(p.data) for p in self.params]

    def step(self) -> None:
        self._t += 1
        b1c = 1.0 - self.beta1 ** self._t
        b2c = 1.0 - self.beta2 ** self._t
        b1, b2 = self.beta1, self.beta2
        scale = self.lr / b1c
        grads = [p.grad for p in self.params]
        if self._flat_m is not None and all(g is not None for g in grads):
            for gv, g in zip(self._gviews, grads):
                np.copyto(gv, g)
            if self.weight_decay:
                for gv, p in zip(self._gviews, self.params):
                    gv += self.weight_decay * p.data
            g, m, v, u = self._flat_g, self._flat_m, self._flat_v, self._flat_u
            m *= b1
            np.multiply(g, 1.0 - b1, out=u)
            m += u
            v *= b2
            np.multiply(g, g, out=u)
            u *= 1.0 - b2
            v += u
            np.divide(v, b2c, out=u)
            np.sqrt(u, out=u)
            u += self.eps
            np.divide(m, u, out=u)
            u *= scale
            for p, uview in zip(self.params, self._scratch):
                p.data -= uview
            return
        for p, m, v, u in zip(self.params, self._m, self._v, self._scratch):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            # All update math runs in the per-param scratch buffer: an
            # optimizer step allocates nothing, which matters when it runs
            # once per (small) batch against a jit-replayed train step.
            m *= b1
            np.multiply(g, 1.0 - b1, out=u)
            m += u
            v *= b2
            np.multiply(g, g, out=u)
            u *= 1.0 - b2
            v += u
            np.divide(v, b2c, out=u)
            np.sqrt(u, out=u)
            u += self.eps
            np.divide(m, u, out=u)
            u *= scale
            p.data -= u


class StepLR:
    """Halve-style decay: multiply lr by ``gamma`` every ``step_size`` epochs.

    The paper halves the LocMatcher learning rate every 5 epochs.
    """

    def __init__(self, optimizer: Optimizer, step_size: int = 5, gamma: float = 0.5) -> None:
        if step_size < 1:
            raise ValueError("step_size must be >= 1")
        if not 0.0 < gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self) -> None:
        """Advance one epoch, decaying when the boundary is crossed."""
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma

    @property
    def current_lr(self) -> float:
        """The optimizer's current learning rate."""
        return self.optimizer.lr
