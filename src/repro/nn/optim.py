"""Optimizers and learning-rate schedules."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.tensor import Tensor


class Optimizer:
    """Base optimizer over a fixed parameter list."""

    def __init__(self, params: Sequence[Tensor], lr: float) -> None:
        params = list(params)
        if not params:
            raise ValueError("no parameters to optimize")
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.params = params
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear all parameter gradients."""
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: Sequence[Tensor], lr: float = 1e-2, momentum: float = 0.0) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            v *= self.momentum
            v += p.grad
            p.data -= self.lr * v


class Adam(Optimizer):
    """Adam (Kingma & Ba); paper settings: beta1=0.9, beta2=0.999, lr=1e-4."""

    def __init__(
        self,
        params: Sequence[Tensor],
        lr: float = 1e-4,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1c = 1.0 - self.beta1 ** self._t
        b2c = 1.0 - self.beta2 ** self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * (g * g)
            m_hat = m / b1c
            v_hat = v / b2c
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class StepLR:
    """Halve-style decay: multiply lr by ``gamma`` every ``step_size`` epochs.

    The paper halves the LocMatcher learning rate every 5 epochs.
    """

    def __init__(self, optimizer: Optimizer, step_size: int = 5, gamma: float = 0.5) -> None:
        if step_size < 1:
            raise ValueError("step_size must be >= 1")
        if not 0.0 < gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self) -> None:
        """Advance one epoch, decaying when the boundary is crossed."""
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma

    @property
    def current_lr(self) -> float:
        """The optimizer's current learning rate."""
        return self.optimizer.lr
