"""Reverse-mode autodiff on numpy arrays.

A :class:`Tensor` wraps an ``ndarray`` and records the operations applied to
it; :meth:`Tensor.backward` walks the recorded graph in reverse topological
order accumulating gradients.  Broadcasting is supported: gradients are
summed back down to each operand's shape.

This is the substrate replacing PyTorch for the paper's neural models
(LocMatcher's transformer, the LSTM pointer variant, and the UNet baseline).

Gradient flow: every op output carries a ``_backward`` closure that, given
the output gradient, deposits contributions into each parent's ``_pending``
slot via :meth:`Tensor._receive`.  The engine in :meth:`Tensor.backward`
drains ``_pending`` in reverse topological order, so each closure runs
exactly once with the fully accumulated gradient.  Leaves (no ``_backward``)
accumulate into ``.grad``.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence, Union

import numpy as np

Scalar = Union[int, float]
TensorLike = Union["Tensor", np.ndarray, Scalar, Sequence]


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (inverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with an autograd tape."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "_pending", "name")
    __array_priority__ = 100  # make numpy defer to our __r*__ operators

    def __init__(
        self,
        data: TensorLike,
        requires_grad: bool = False,
        name: str | None = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self._pending: np.ndarray | None = None
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    def item(self) -> float:
        """The scalar value; raises if not a one-element tensor."""
        if self.data.size != 1:
            raise ValueError("item() requires a one-element tensor")
        return float(self.data.reshape(-1)[0])

    def numpy(self) -> np.ndarray:
        """The underlying array (shared, not copied)."""
        return self.data

    # ------------------------------------------------------------------
    # Graph plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _lift(value: TensorLike) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make(
        self,
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        out = Tensor(data)
        if any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(p for p in parents if p.requires_grad)
            out._backward = backward
        return out

    def detach(self) -> "Tensor":
        """A tensor sharing the same data but cut off from the graph."""
        return Tensor(self.data)

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64, copy=True)
        else:
            self.grad = self.grad + grad

    def _receive(self, grad: np.ndarray) -> None:
        """Deposit a gradient contribution (called by child op closures)."""
        if self._pending is None:
            self._pending = np.array(grad, dtype=np.float64, copy=True)
        else:
            self._pending = self._pending + grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to ones, so a scalar loss needs no argument.
        Leaf tensors with ``requires_grad`` end up with ``.grad`` set.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=np.float64)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"gradient shape {grad.shape} does not match tensor {self.data.shape}"
                )

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._receive(grad)
        for node in reversed(topo):
            g = node._pending
            node._pending = None
            if g is None:
                continue
            if node._backward is None:
                node._accumulate(g)
            else:
                node._backward(g)

    # ------------------------------------------------------------------
    # Arithmetic ops
    # ------------------------------------------------------------------
    def __add__(self, other: TensorLike) -> "Tensor":
        other = self._lift(other)
        a, b = self, other

        def backward(g: np.ndarray) -> None:
            if a.requires_grad:
                a._receive(_unbroadcast(g, a.shape))
            if b.requires_grad:
                b._receive(_unbroadcast(g, b.shape))

        return self._make(a.data + b.data, (a, b), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        a = self

        def backward(g: np.ndarray) -> None:
            a._receive(-g)

        return self._make(-a.data, (a,), backward)

    def __sub__(self, other: TensorLike) -> "Tensor":
        other = self._lift(other)
        a, b = self, other

        def backward(g: np.ndarray) -> None:
            if a.requires_grad:
                a._receive(_unbroadcast(g, a.shape))
            if b.requires_grad:
                b._receive(_unbroadcast(-g, b.shape))

        return self._make(a.data - b.data, (a, b), backward)

    def __rsub__(self, other: TensorLike) -> "Tensor":
        return self._lift(other).__sub__(self)

    def __mul__(self, other: TensorLike) -> "Tensor":
        other = self._lift(other)
        a, b = self, other

        def backward(g: np.ndarray) -> None:
            if a.requires_grad:
                a._receive(_unbroadcast(g * b.data, a.shape))
            if b.requires_grad:
                b._receive(_unbroadcast(g * a.data, b.shape))

        return self._make(a.data * b.data, (a, b), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: TensorLike) -> "Tensor":
        other = self._lift(other)
        a, b = self, other

        def backward(g: np.ndarray) -> None:
            if a.requires_grad:
                a._receive(_unbroadcast(g / b.data, a.shape))
            if b.requires_grad:
                b._receive(_unbroadcast(-g * a.data / (b.data * b.data), b.shape))

        return self._make(a.data / b.data, (a, b), backward)

    def __rtruediv__(self, other: TensorLike) -> "Tensor":
        return self._lift(other).__truediv__(self)

    def __pow__(self, exponent: Scalar) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        a = self

        def backward(g: np.ndarray) -> None:
            a._receive(g * exponent * np.power(a.data, exponent - 1))

        return self._make(np.power(a.data, float(exponent)), (a,), backward)

    def __matmul__(self, other: TensorLike) -> "Tensor":
        other = self._lift(other)
        a, b = self, other
        if a.ndim < 2 or b.ndim < 2:
            raise ValueError("matmul requires tensors with ndim >= 2")

        def backward(g: np.ndarray) -> None:
            if a.requires_grad:
                ga = np.matmul(g, b.data.swapaxes(-1, -2))
                a._receive(_unbroadcast(ga, a.shape))
            if b.requires_grad:
                gb = np.matmul(a.data.swapaxes(-1, -2), g)
                b._receive(_unbroadcast(gb, b.shape))

        return self._make(np.matmul(a.data, b.data), (a, b), backward)

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        a = self
        out_data = np.exp(a.data)

        def backward(g: np.ndarray) -> None:
            a._receive(g * out_data)

        return self._make(out_data, (a,), backward)

    def log(self) -> "Tensor":
        a = self

        def backward(g: np.ndarray) -> None:
            a._receive(g / a.data)

        return self._make(np.log(a.data), (a,), backward)

    def sqrt(self) -> "Tensor":
        a = self
        out_data = np.sqrt(a.data)

        def backward(g: np.ndarray) -> None:
            a._receive(g / (2.0 * out_data))

        return self._make(out_data, (a,), backward)

    def tanh(self) -> "Tensor":
        a = self
        out_data = np.tanh(a.data)

        def backward(g: np.ndarray) -> None:
            a._receive(g * (1.0 - out_data * out_data))

        return self._make(out_data, (a,), backward)

    def sigmoid(self) -> "Tensor":
        a = self
        out_data = 1.0 / (1.0 + np.exp(-np.clip(a.data, -500, 500)))

        def backward(g: np.ndarray) -> None:
            a._receive(g * out_data * (1.0 - out_data))

        return self._make(out_data, (a,), backward)

    def relu(self) -> "Tensor":
        a = self
        mask = a.data > 0

        def backward(g: np.ndarray) -> None:
            a._receive(g * mask)

        return self._make(a.data * mask, (a,), backward)

    # ------------------------------------------------------------------
    # Reductions and shape ops
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        a = self
        out_data = a.data.sum(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray) -> None:
            grad = g
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else axis
                for ax in sorted(ax % a.ndim for ax in axes):
                    grad = np.expand_dims(grad, ax)
            a._receive(np.broadcast_to(grad, a.shape))

        return self._make(out_data, (a,), backward)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = (axis,) if isinstance(axis, int) else axis
            count = int(np.prod([self.shape[ax] for ax in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        """Max along ``axis``; gradient flows to the first argmax per slice."""
        a = self
        out_keep = a.data.max(axis=axis, keepdims=True)
        mask = a.data == out_keep
        first = np.cumsum(mask, axis=axis) == 1
        mask = mask & first

        def backward(g: np.ndarray) -> None:
            grad = g if keepdims else np.expand_dims(g, axis)
            a._receive(np.broadcast_to(grad, a.shape) * mask)

        out_data = out_keep if keepdims else out_keep.squeeze(axis)
        return self._make(out_data, (a,), backward)

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        a = self
        old_shape = a.shape

        def backward(g: np.ndarray) -> None:
            a._receive(g.reshape(old_shape))

        return self._make(a.data.reshape(shape), (a,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        a = self
        if not axes:
            axes = tuple(reversed(range(a.ndim)))
        inverse = tuple(np.argsort(axes))

        def backward(g: np.ndarray) -> None:
            a._receive(g.transpose(inverse))

        return self._make(a.data.transpose(axes), (a,), backward)

    def swapaxes(self, ax1: int, ax2: int) -> "Tensor":
        a = self

        def backward(g: np.ndarray) -> None:
            a._receive(g.swapaxes(ax1, ax2))

        return self._make(a.data.swapaxes(ax1, ax2), (a,), backward)

    def __getitem__(self, index) -> "Tensor":
        a = self

        def backward(g: np.ndarray) -> None:
            grad = np.zeros_like(a.data)
            np.add.at(grad, index, g)
            a._receive(grad)

        return self._make(a.data[index], (a,), backward)


def cat(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    ts = [Tensor._lift(t) for t in tensors]
    if not ts:
        raise ValueError("cat() of no tensors")
    data = np.concatenate([t.data for t in ts], axis=axis)
    sizes = [t.shape[axis] for t in ts]
    offsets = np.cumsum([0] + sizes)

    out = Tensor(data)
    if any(t.requires_grad for t in ts):
        out.requires_grad = True
        out._parents = tuple(t for t in ts if t.requires_grad)

        def backward(g: np.ndarray) -> None:
            for t, start, stop in zip(ts, offsets[:-1], offsets[1:]):
                if t.requires_grad:
                    index = [slice(None)] * g.ndim
                    index[axis % g.ndim] = slice(start, stop)
                    t._receive(g[tuple(index)])

        out._backward = backward
    return out


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient routing."""
    ts = [Tensor._lift(t) for t in tensors]
    if not ts:
        raise ValueError("stack() of no tensors")
    data = np.stack([t.data for t in ts], axis=axis)
    out = Tensor(data)
    if any(t.requires_grad for t in ts):
        out.requires_grad = True
        out._parents = tuple(t for t in ts if t.requires_grad)

        def backward(g: np.ndarray) -> None:
            slices = np.moveaxis(g, axis, 0)
            for t, gs in zip(ts, slices):
                if t.requires_grad:
                    t._receive(gs)

        out._backward = backward
    return out
