"""Reverse-mode autodiff over the lazy op graph.

A :class:`Tensor` wraps a :class:`~repro.nn.graph.LazyBuffer` and records
the operations applied to it.  In lazy mode (the default) an op builds an
IR node and returns immediately; the scheduler in
:mod:`repro.nn.schedule` fuses and executes the graph when a concrete
value is demanded (``.numpy()`` / ``.data`` / ``.item()``), or when
:meth:`Tensor.backward` finalizes leaf gradients.  With
``REPRO_NN_EAGER=1`` every op computes immediately with the exact
formulas of the original eager engine.

This is the substrate replacing PyTorch for the paper's neural models
(LocMatcher's transformer, the LSTM pointer variant, and the UNet
baseline).

Gradient flow: every op output carries a ``_backward`` closure that,
given the output gradient (itself a buffer in lazy mode, so the whole
backward pass is traceable), deposits contributions into each parent's
``_pending`` slot via :meth:`Tensor._receive`.  The engine in
:meth:`Tensor.backward` drains ``_pending`` in reverse topological order,
then realizes all leaf gradients in a single fused schedule.

Dtype policy: an explicit ``dtype=`` wins; floating-point input arrays
keep their precision (finite-difference checks hand in float64);
everything else is cast to float32, the standard compute dtype.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence, Union

import numpy as np

from repro.nn import graph
from repro.nn.graph import DEFAULT_DTYPE, LazyBuffer, lazy_enabled

Scalar = Union[int, float]
TensorLike = Union["Tensor", np.ndarray, Scalar, Sequence]


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (inverse of numpy broadcasting)."""
    return graph.unbroadcast(grad, shape)


class Tensor:
    """An array value (lazy or concrete) with an autograd tape."""

    __slots__ = ("_buf", "grad", "requires_grad", "_backward", "_parents", "_pending", "name")
    __array_priority__ = 100  # make numpy defer to our __r*__ operators

    def __init__(
        self,
        data: TensorLike,
        requires_grad: bool = False,
        name: str | None = None,
        dtype=None,
    ) -> None:
        if isinstance(data, Tensor):
            buf = data._buf
            if dtype is not None and np.dtype(dtype) != buf.dtype:
                buf = LazyBuffer.const(graph.realize(buf).astype(dtype))
        else:
            arr = np.asarray(data)
            if dtype is not None:
                arr = np.asarray(arr, dtype=dtype)
            elif arr.dtype.kind != "f":
                arr = arr.astype(DEFAULT_DTYPE)
            buf = LazyBuffer.const(arr)
        buf.refs += 1
        self._buf = buf
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._backward: Callable | None = None
        self._parents: tuple[Tensor, ...] = ()
        self._pending = None  # ndarray or LazyBuffer during backward()
        self.name = name

    @classmethod
    def _from_buf(cls, buf: LazyBuffer) -> "Tensor":
        out = cls.__new__(cls)
        buf.refs += 1
        out._buf = buf
        out.grad = None
        out.requires_grad = False
        out._backward = None
        out._parents = ()
        out._pending = None
        out.name = None
        return out

    # ------------------------------------------------------------------
    # Realization boundary
    # ------------------------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        """The concrete array; forces realization of the lazy graph."""
        return graph.realize(self._buf)

    @data.setter
    def data(self, value) -> None:
        # Rewraps without copying so `p.data -= ...` keeps array identity
        # (the JIT's parameter slots rely on in-place updates).
        buf = LazyBuffer.const(np.asarray(value))
        buf.refs += 1
        self._buf.refs -= 1
        self._buf = buf

    def __del__(self) -> None:
        try:
            self._buf.refs -= 1
        except AttributeError:  # partially constructed / interpreter teardown
            pass

    def numpy(self) -> np.ndarray:
        """The underlying array (shared, not copied); realizes if lazy."""
        return graph.realize(self._buf)

    def item(self) -> float:
        """The scalar value; raises if not a one-element tensor."""
        if self.size != 1:
            raise ValueError("item() requires a one-element tensor")
        return float(graph.realize(self._buf).reshape(-1)[0])

    def realize(self) -> "Tensor":
        """Force computation of this tensor's value (no-op when eager)."""
        graph.realize(self._buf)
        return self

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self._buf.shape

    @property
    def ndim(self) -> int:
        return len(self._buf.shape)

    @property
    def size(self) -> int:
        return self._buf.size

    @property
    def dtype(self) -> np.dtype:
        return self._buf.dtype

    def __len__(self) -> int:
        if not self._buf.shape:
            raise TypeError("len() of a 0-d tensor")
        return self._buf.shape[0]

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    # ------------------------------------------------------------------
    # Graph plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _lift(value: TensorLike, ref_dtype=None) -> "Tensor":
        if isinstance(value, Tensor):
            return value
        if ref_dtype is not None and isinstance(value, (int, float)):
            # Weak scalar: adopt the other operand's dtype so python
            # constants never promote float32 graphs to float64.
            return Tensor(np.asarray(value, dtype=ref_dtype))
        return Tensor(value)

    def _val(self):
        """The op operand: the buffer in lazy mode, the array in eager."""
        if lazy_enabled():
            return self._buf
        return graph.realize(self._buf)

    def _make(self, value, parents: tuple["Tensor", ...], backward) -> "Tensor":
        buf = value if isinstance(value, LazyBuffer) else LazyBuffer.const(value)
        out = Tensor._from_buf(buf)
        if any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(p for p in parents if p.requires_grad)
            out._backward = backward
            # The stored closure captures operand/output buffers directly
            # (``a_val``/``b_val``/``out_val``), outliving their tensors;
            # pin them so the scheduler never reuses their arrays as
            # kernel output scratch.
            buf.pinned = True
            for p in parents:
                p._buf.pinned = True
        return out

    def detach(self) -> "Tensor":
        """A tensor sharing the same (possibly lazy) value, off the graph."""
        return Tensor._from_buf(self._buf)

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None

    def _receive(self, g) -> None:
        """Deposit a gradient contribution (called by child op closures)."""
        self._pending = g if self._pending is None else graph.add(self._pending, g)

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to ones, so a scalar loss needs no argument.
        Leaf tensors with ``requires_grad`` end up with ``.grad`` set.
        In lazy mode the whole backward pass is recorded as graph nodes
        and all leaf gradients realize in one fused schedule.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            grad = np.ones(self.shape, dtype=self.dtype)
        else:
            grad = np.array(grad, dtype=self.dtype, copy=True)
            if grad.shape != self.shape:
                raise ValueError(
                    f"gradient shape {grad.shape} does not match tensor {self.shape}"
                )

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._receive(grad)
        leaves: list[tuple[Tensor, object]] = []
        for node in reversed(topo):
            g = node._pending
            node._pending = None
            if g is None:
                continue
            if node._backward is None:
                leaves.append((node, g))
            else:
                node._backward(g)

        # Realize every leaf gradient in one schedule, then assign.
        graph.realize_buffers([g for _, g in leaves if isinstance(g, LazyBuffer)])
        assigned: set[int] = set()
        for leaf, g in leaves:
            arr = graph.realize(g) if isinstance(g, LazyBuffer) else np.asarray(g)
            if id(arr) in assigned or not arr.flags.writeable:
                arr = arr.copy()  # clip utilities mutate grads in place
            assigned.add(id(arr))
            leaf.grad = arr if leaf.grad is None else leaf.grad + arr

    # ------------------------------------------------------------------
    # Arithmetic ops
    # ------------------------------------------------------------------
    def __add__(self, other: TensorLike) -> "Tensor":
        other = self._lift(other, self.dtype)
        a, b = self, other

        def backward(g) -> None:
            if a.requires_grad:
                a._receive(graph.unbroadcast(g, a.shape))
            if b.requires_grad:
                b._receive(graph.unbroadcast(g, b.shape))

        return self._make(graph.add(a._val(), b._val()), (a, b), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        a = self

        def backward(g) -> None:
            a._receive(graph.neg(g))

        return self._make(graph.neg(a._val()), (a,), backward)

    def __sub__(self, other: TensorLike) -> "Tensor":
        other = self._lift(other, self.dtype)
        a, b = self, other

        def backward(g) -> None:
            if a.requires_grad:
                a._receive(graph.unbroadcast(g, a.shape))
            if b.requires_grad:
                b._receive(graph.unbroadcast(graph.neg(g), b.shape))

        return self._make(graph.sub(a._val(), b._val()), (a, b), backward)

    def __rsub__(self, other: TensorLike) -> "Tensor":
        return self._lift(other, self.dtype).__sub__(self)

    def __mul__(self, other: TensorLike) -> "Tensor":
        other = self._lift(other, self.dtype)
        a, b = self, other
        a_val, b_val = a._val(), b._val()

        def backward(g) -> None:
            if a.requires_grad:
                a._receive(graph.unbroadcast(graph.mul(g, b_val), a.shape))
            if b.requires_grad:
                b._receive(graph.unbroadcast(graph.mul(g, a_val), b.shape))

        return self._make(graph.mul(a_val, b_val), (a, b), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: TensorLike) -> "Tensor":
        other = self._lift(other, self.dtype)
        a, b = self, other
        a_val, b_val = a._val(), b._val()

        def backward(g) -> None:
            if a.requires_grad:
                a._receive(graph.unbroadcast(graph.div(g, b_val), a.shape))
            if b.requires_grad:
                num = graph.mul(graph.neg(g), a_val)
                den = graph.mul(b_val, b_val)
                b._receive(graph.unbroadcast(graph.div(num, den), b.shape))

        return self._make(graph.div(a_val, b_val), (a, b), backward)

    def __rtruediv__(self, other: TensorLike) -> "Tensor":
        return self._lift(other, self.dtype).__truediv__(self)

    def __pow__(self, exponent: Scalar) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        a = self
        a_val = a._val()
        exponent = float(exponent)

        def backward(g) -> None:
            a._receive(
                graph.mul(graph.mul(g, exponent), graph.pow_scalar(a_val, exponent - 1.0))
            )

        return self._make(graph.pow_scalar(a_val, exponent), (a,), backward)

    def __matmul__(self, other: TensorLike) -> "Tensor":
        other = self._lift(other, self.dtype)
        a, b = self, other
        if a.ndim < 2 or b.ndim < 2:
            raise ValueError("matmul requires tensors with ndim >= 2")
        a_val, b_val = a._val(), b._val()

        def backward(g) -> None:
            if a.requires_grad:
                ga = graph.matmul(g, graph.swapaxes(b_val, -1, -2))
                a._receive(graph.unbroadcast(ga, a.shape))
            if b.requires_grad:
                gb = graph.matmul(graph.swapaxes(a_val, -1, -2), g)
                b._receive(graph.unbroadcast(gb, b.shape))

        return self._make(graph.matmul(a_val, b_val), (a, b), backward)

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        a = self
        out_val = graph.exp(a._val())

        def backward(g) -> None:
            a._receive(graph.mul(g, out_val))

        return self._make(out_val, (a,), backward)

    def log(self) -> "Tensor":
        a = self
        a_val = a._val()

        def backward(g) -> None:
            a._receive(graph.div(g, a_val))

        return self._make(graph.log(a_val), (a,), backward)

    def sqrt(self) -> "Tensor":
        a = self
        out_val = graph.sqrt(a._val())

        def backward(g) -> None:
            a._receive(graph.div(g, graph.mul(out_val, 2.0)))

        return self._make(out_val, (a,), backward)

    def tanh(self) -> "Tensor":
        a = self
        out_val = graph.tanh(a._val())

        def backward(g) -> None:
            a._receive(graph.mul(g, graph.sub(1.0, graph.mul(out_val, out_val))))

        return self._make(out_val, (a,), backward)

    def sigmoid(self) -> "Tensor":
        a = self
        out_val = graph.sigmoid(a._val())

        def backward(g) -> None:
            a._receive(graph.mul(graph.mul(g, out_val), graph.sub(1.0, out_val)))

        return self._make(out_val, (a,), backward)

    def relu(self) -> "Tensor":
        a = self
        a_val = a._val()

        def backward(g) -> None:
            a._receive(graph.mul(g, graph.gtz(a_val)))

        return self._make(graph.relu(a_val), (a,), backward)

    # ------------------------------------------------------------------
    # Reductions and shape ops
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        a = self
        a_shape = a.shape

        def backward(g) -> None:
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else axis
                keep = list(g.shape)
                for ax in sorted(ax % len(a_shape) for ax in axes):
                    keep.insert(ax, 1)
                g = graph.reshape(g, tuple(keep))
            elif axis is None and not keepdims:
                g = graph.reshape(g, tuple(1 for _ in a_shape))
            a._receive(graph.broadcast_to(g, a_shape))

        return self._make(graph.sum_(a._val(), axis=axis, keepdims=keepdims), (a,), backward)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = (axis,) if isinstance(axis, int) else axis
            count = int(np.prod([self.shape[ax] for ax in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        """Max along ``axis``; gradient flows to the first argmax per slice."""
        a = self
        a_val = a._val()
        a_shape = a.shape
        out_keep = graph.max_(a_val, axis=axis, keepdims=True)
        if a.requires_grad and isinstance(out_keep, LazyBuffer):
            # Captured by the closure below but neither an operand nor the
            # output buffer, so _make's pinning would miss it.
            out_keep.pinned = True

        def backward(g) -> None:
            hit = graph.eq(a_val, graph.broadcast_to(out_keep, a_shape))
            first = graph.eq(graph.cumsum(hit, axis), 1.0)
            mask = graph.mul(hit, first)
            if not keepdims:
                keep = list(g.shape)
                keep.insert(axis % len(a_shape), 1)
                g = graph.reshape(g, tuple(keep))
            a._receive(graph.mul(graph.broadcast_to(g, a_shape), mask))

        if keepdims:
            out_val = out_keep
        else:
            out_val = graph.reshape(
                out_keep, graph.reduce_shape(a_shape, axis, False)
            ) if isinstance(out_keep, LazyBuffer) else out_keep.squeeze(axis)
        return self._make(out_val, (a,), backward)

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        a = self
        old_shape = a.shape

        def backward(g) -> None:
            a._receive(graph.reshape(g, old_shape))

        return self._make(graph.reshape(a._val(), shape), (a,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        a = self
        if not axes:
            axes = tuple(reversed(range(a.ndim)))
        inverse = tuple(int(i) for i in np.argsort(axes))

        def backward(g) -> None:
            a._receive(graph.transpose(g, inverse))

        return self._make(graph.transpose(a._val(), axes), (a,), backward)

    def swapaxes(self, ax1: int, ax2: int) -> "Tensor":
        a = self

        def backward(g) -> None:
            a._receive(graph.swapaxes(g, ax1, ax2))

        return self._make(graph.swapaxes(a._val(), ax1, ax2), (a,), backward)

    def __getitem__(self, index) -> "Tensor":
        a = self
        a_shape, a_dtype = a.shape, a.dtype

        def backward(g) -> None:
            a._receive(graph.scatter_add(g, index, a_shape, a_dtype))

        return self._make(graph.getitem(a._val(), index), (a,), backward)


def cat(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    ts = [Tensor._lift(t) for t in tensors]
    if not ts:
        raise ValueError("cat() of no tensors")
    vals = [t._val() for t in ts]
    out_val = graph.cat(vals, axis=axis)
    sizes = [t.shape[axis] for t in ts]
    offsets = np.cumsum([0] + sizes)
    ndim = len(ts[0].shape)

    out = Tensor._from_buf(
        out_val if isinstance(out_val, LazyBuffer) else LazyBuffer.const(out_val)
    )
    if any(t.requires_grad for t in ts):
        out.requires_grad = True
        out._parents = tuple(t for t in ts if t.requires_grad)

        def backward(g) -> None:
            for t, start, stop in zip(ts, offsets[:-1], offsets[1:]):
                if t.requires_grad:
                    index = [slice(None)] * ndim
                    index[axis % ndim] = slice(int(start), int(stop))
                    t._receive(graph.getitem(g, tuple(index)))

        out._backward = backward
    return out


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient routing."""
    ts = [Tensor._lift(t) for t in tensors]
    if not ts:
        raise ValueError("stack() of no tensors")
    vals = [t._val() for t in ts]
    out_val = graph.stack(vals, axis=axis)
    ndim = len(ts[0].shape) + 1
    axis_n = axis % ndim

    out = Tensor._from_buf(
        out_val if isinstance(out_val, LazyBuffer) else LazyBuffer.const(out_val)
    )
    if any(t.requires_grad for t in ts):
        out.requires_grad = True
        out._parents = tuple(t for t in ts if t.requires_grad)

        def backward(g) -> None:
            for i, t in enumerate(ts):
                if t.requires_grad:
                    index = tuple(
                        i if d == axis_n else slice(None) for d in range(ndim)
                    )
                    t._receive(graph.getitem(g, index))

        out._backward = backward
    return out
