"""A from-scratch numpy autograd neural-network framework.

Replaces PyTorch for the paper's models: LocMatcher's transformer encoder
and additive attention, the LSTM pointer variant (DLInfMA-PN), the MLP and
RankNet variants, and the UNet-based baseline.
"""

from repro.nn.graph import (
    DEFAULT_DTYPE,
    NEG_INF,
    eager_mode,
    lazy_enabled,
    lazy_mode,
    set_lazy,
)
from repro.nn.jit import TracedStep, jit
from repro.nn.tensor import Tensor, cat, stack
from repro.nn.module import Module
from repro.nn.layers import (
    Linear,
    Embedding,
    LayerNorm,
    Dropout,
    ReLU,
    Tanh,
    Sigmoid,
    Sequential,
)
from repro.nn.attention import (
    MultiHeadSelfAttention,
    TransformerEncoderLayer,
    TransformerEncoder,
)
from repro.nn.recurrent import GRU, LSTM
from repro.nn.conv import Conv2d, MaxPool2d, conv2d, max_pool2d, pad2d, upsample_nearest
from repro.nn.optim import Optimizer, SGD, Adam, StepLR
from repro.nn.clip import clip_grad_norm, clip_grad_value
from repro.nn.serialize import (
    load_optimizer,
    load_optimizer_state,
    optimizer_state,
    save_optimizer,
)
from repro.nn import functional
from repro.nn import init

__all__ = [
    "Tensor",
    "cat",
    "stack",
    "DEFAULT_DTYPE",
    "NEG_INF",
    "eager_mode",
    "lazy_enabled",
    "lazy_mode",
    "set_lazy",
    "TracedStep",
    "jit",
    "Module",
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Sequential",
    "MultiHeadSelfAttention",
    "TransformerEncoderLayer",
    "TransformerEncoder",
    "GRU",
    "LSTM",
    "clip_grad_norm",
    "clip_grad_value",
    "load_optimizer",
    "load_optimizer_state",
    "optimizer_state",
    "save_optimizer",
    "Conv2d",
    "MaxPool2d",
    "conv2d",
    "max_pool2d",
    "pad2d",
    "upsample_nearest",
    "Optimizer",
    "SGD",
    "Adam",
    "StepLR",
    "functional",
    "init",
]
