"""Recurrent layers: LSTM (the DLInfMA-PN pointer-network variant) and GRU."""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.graph import DEFAULT_DTYPE
from repro.nn.module import Module
from repro.nn.tensor import Tensor, stack


class LSTM(Module):
    """A single-layer LSTM processing ``(B, T, input_size)`` batches.

    Returns the full hidden sequence ``(B, T, hidden_size)`` and the final
    ``(h, c)`` pair.  Gate order in the fused weight matrices is
    ``[input, forget, cell, output]``.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_x = Tensor(init.xavier_uniform((input_size, 4 * hidden_size), rng), requires_grad=True)
        self.w_h = Tensor(init.xavier_uniform((hidden_size, 4 * hidden_size), rng), requires_grad=True)
        bias = np.zeros(4 * hidden_size, dtype=DEFAULT_DTYPE)
        bias[hidden_size : 2 * hidden_size] = 1.0  # forget-gate bias trick
        self.bias = Tensor(bias, requires_grad=True)

    def forward(
        self, x: Tensor, state: tuple[Tensor, Tensor] | None = None
    ) -> tuple[Tensor, tuple[Tensor, Tensor]]:
        if x.ndim != 3 or x.shape[-1] != self.input_size:
            raise ValueError(f"expected (B, T, {self.input_size}), got {x.shape}")
        b, t, _ = x.shape
        h_dim = self.hidden_size
        if state is None:
            h = Tensor(np.zeros((b, h_dim), dtype=x.dtype))
            c = Tensor(np.zeros((b, h_dim), dtype=x.dtype))
        else:
            h, c = state
        outputs = []
        for step in range(t):
            x_t = x[:, step, :]  # (B, input)
            gates = x_t @ self.w_x + h @ self.w_h + self.bias  # (B, 4H)
            i_gate = gates[:, 0:h_dim].sigmoid()
            f_gate = gates[:, h_dim : 2 * h_dim].sigmoid()
            g_gate = gates[:, 2 * h_dim : 3 * h_dim].tanh()
            o_gate = gates[:, 3 * h_dim : 4 * h_dim].sigmoid()
            c = f_gate * c + i_gate * g_gate
            h = o_gate * c.tanh()
            outputs.append(h)
        return stack(outputs, axis=1), (h, c)


class GRU(Module):
    """A single-layer GRU over ``(B, T, input_size)`` batches.

    Gate order in the fused weights is ``[reset, update, new]``.  Returns
    the hidden sequence and the final hidden state.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_x = Tensor(init.xavier_uniform((input_size, 3 * hidden_size), rng), requires_grad=True)
        self.w_h = Tensor(init.xavier_uniform((hidden_size, 3 * hidden_size), rng), requires_grad=True)
        self.bias = Tensor(np.zeros(3 * hidden_size, dtype=DEFAULT_DTYPE), requires_grad=True)

    def forward(
        self, x: Tensor, state: Tensor | None = None
    ) -> tuple[Tensor, Tensor]:
        if x.ndim != 3 or x.shape[-1] != self.input_size:
            raise ValueError(f"expected (B, T, {self.input_size}), got {x.shape}")
        b, t, _ = x.shape
        h_dim = self.hidden_size
        h = Tensor(np.zeros((b, h_dim), dtype=x.dtype)) if state is None else state
        outputs = []
        for step in range(t):
            x_t = x[:, step, :]
            gx = x_t @ self.w_x + self.bias  # (B, 3H)
            gh = h @ self.w_h
            r = (gx[:, 0:h_dim] + gh[:, 0:h_dim]).sigmoid()
            z = (gx[:, h_dim : 2 * h_dim] + gh[:, h_dim : 2 * h_dim]).sigmoid()
            n = (gx[:, 2 * h_dim :] + r * gh[:, 2 * h_dim :]).tanh()
            h = (1.0 - z) * n + z * h
            outputs.append(h)
        return stack(outputs, axis=1), h
