"""Scheduler/fusion layer: turn an op graph into fused kernel executions.

Given the roots to realize, the scheduler

1. topologically orders the unrealized subgraph (dead nodes are simply
   never visited — that is the dead-code elimination),
2. merges duplicate subgraphs by structural hashing (CSE),
3. collapses trivial movement chains (same-shape reshape/expand,
   identity transpose/swapaxes, reshape-of-reshape hops),
4. fuses maximal single-consumer elementwise chains into one *compiled
   kernel* — a generated Python closure evaluating a single numpy
   expression — so a chain like ``relu(x @ w + b)`` runs as one call
   instead of one dispatch per op, and
5. executes the plan in topological order, donating a dying input's
   array as the ``out=`` buffer of a fused kernel when no external
   tensor, closure, or view can still observe it.

When a :class:`PlanRecorder` is active (installed by :mod:`repro.nn.jit`)
every executed step is also appended to a replayable slot-based program;
the JIT layer adds buffer donation there, where slot lifetimes are known.
"""

from __future__ import annotations

import threading
from typing import Callable, Sequence

import numpy as np

from repro.nn.graph import LazyBuffer, sigmoid_clip

#: Ops a fused kernel may contain.
ELEMENTWISE = frozenset(
    {
        "add",
        "sub",
        "mul",
        "div",
        "maximum",
        "neg",
        "exp",
        "log",
        "sqrt",
        "tanh",
        "sigmoid",
        "relu",
        "gtz",
        "pows",
        "cmp_eq",
    }
)

#: Kinds whose output may alias their input memory (numpy views).  Their
#: outputs must never be donated as scratch space by the replay layer.
MOVEMENT = frozenset({"reshape", "transpose", "swapaxes", "expand", "getitem"})

_INFIX = {"add": "+", "sub": "-", "mul": "*", "div": "/"}
_UNARY_FN = {"exp": "np.exp", "log": "np.log", "sqrt": "np.sqrt", "tanh": "np.tanh"}
#: Top-level renderings that accept an ``out=`` keyword.
_OUT_UFUNC = {
    "add": "np.add",
    "sub": "np.subtract",
    "mul": "np.multiply",
    "div": "np.divide",
    "maximum": "np.maximum",
    "neg": "np.negative",
    "exp": "np.exp",
    "log": "np.log",
    "sqrt": "np.sqrt",
    "tanh": "np.tanh",
}

_KERNEL_CACHE: dict[str, Callable] = {}
_KERNEL_LOCK = threading.Lock()


def _render(node: LazyBuffer, operand_expr: list[str]) -> str:
    """Expression string for one elementwise node (operands pre-rendered)."""
    kind = node.kind
    if kind in _INFIX:
        a, b = operand_expr
        return f"({a} {_INFIX[kind]} {b})"
    if kind in _UNARY_FN:
        return f"{_UNARY_FN[kind]}({operand_expr[0]})"
    if kind == "neg":
        return f"(-{operand_expr[0]})"
    if kind == "maximum":
        return f"np.maximum({operand_expr[0]}, {operand_expr[1]})"
    if kind == "relu":
        return f"np.maximum({operand_expr[0]}, 0.0)"
    if kind == "sigmoid":
        clip = sigmoid_clip(node.dtype)
        return f"(1.0 / (1.0 + np.exp(-np.clip({operand_expr[0]}, -{clip}, {clip}))))"
    if kind == "gtz":
        return f"np.greater({operand_expr[0]}, 0).astype(np.{node.dtype.name})"
    if kind == "cmp_eq":
        return (
            f"np.equal({operand_expr[0]}, {operand_expr[1]})"
            f".astype(np.{node.dtype.name})"
        )
    if kind == "pows":
        return f"np.power({operand_expr[0]}, {node.arg!r})"
    raise ValueError(f"not an elementwise kind: {kind}")


def _render_out_capable(node: LazyBuffer, operand_expr: list[str]) -> str | None:
    """Top-level rendering writing into ``_out`` (None if unsupported)."""
    kind = node.kind
    if kind in _OUT_UFUNC:
        args = ", ".join(operand_expr)
        return f"{_OUT_UFUNC[kind]}({args}, out=_out)"
    if kind == "relu":
        return f"np.maximum({operand_expr[0]}, 0.0, out=_out)"
    if kind == "pows":
        return f"np.power({operand_expr[0]}, {node.arg!r}, out=_out)"
    return None


def _compile_kernel(expr: str, out_expr: str | None, arity: int) -> Callable:
    """Compile (with caching) a fused kernel ``f(i0, .., _out=None)``."""
    key = f"{arity}|{expr}|{out_expr}"
    fn = _KERNEL_CACHE.get(key)
    if fn is not None:
        return fn
    with _KERNEL_LOCK:
        fn = _KERNEL_CACHE.get(key)
        if fn is not None:
            return fn
        args = ", ".join(f"i{j}" for j in range(arity))
        if out_expr is None:
            body = f"    return {expr}\n"
        else:
            body = (
                "    if _out is None:\n"
                f"        return {expr}\n"
                f"    return {out_expr}\n"
            )
        src = f"def _kernel({args}{', ' if args else ''}_out=None):\n{body}"
        namespace: dict = {"np": np}
        exec(src, namespace)  # noqa: S102 - generated from a closed op set
        fn = namespace["_kernel"]
        fn.__doc__ = expr
        _KERNEL_CACHE[key] = fn
    return fn


def kernel_cache_size() -> int:
    return len(_KERNEL_CACHE)


# ----------------------------------------------------------------------
# Interpreted (non-fusable) kinds
# ----------------------------------------------------------------------
def _exec_matmul(arg, a, b):
    return np.matmul(a, b)


def _exec_sum(arg, a):
    axis, keepdims = arg
    return a.sum(axis=axis, keepdims=keepdims)


def _exec_max(arg, a):
    axis, keepdims = arg
    return a.max(axis=axis, keepdims=keepdims)


def _exec_cumsum(arg, a):
    return np.cumsum(a, axis=arg)


def _exec_reshape(arg, a):
    return a.reshape(arg)


def _exec_transpose(arg, a):
    return a.transpose(arg)


def _exec_swapaxes(arg, a):
    return a.swapaxes(*arg)


def _exec_expand(arg, a):
    return np.broadcast_to(a, arg)


def _exec_getitem(arg, a):
    return a[arg]


def _exec_cat(arg, *parts):
    return np.concatenate(parts, axis=arg)


def _exec_stack(arg, *parts):
    return np.stack(parts, axis=arg)


_EXEC = {
    "matmul": _exec_matmul,
    "sum": _exec_sum,
    "max": _exec_max,
    "cumsum": _exec_cumsum,
    "reshape": _exec_reshape,
    "transpose": _exec_transpose,
    "swapaxes": _exec_swapaxes,
    "expand": _exec_expand,
    "getitem": _exec_getitem,
    "cat": _exec_cat,
    "stack": _exec_stack,
}


def _bind_exec(node: LazyBuffer) -> Callable:
    """A positional callable for one interpreted node (arg pre-bound)."""
    kind = node.kind
    if kind == "gen":
        gen_fn = node.arg

        def run_gen(*_ignored, _out=None):
            return gen_fn()

        return run_gen
    if kind == "scatter":
        (index, shape), dtype = node.arg, node.dtype

        def run_scatter(a, _out=None):
            out = np.zeros(shape, dtype=dtype)
            np.add.at(out, index, a)
            return out

        return run_scatter
    base, arg = _EXEC[kind], node.arg

    def run(*inputs, _out=None):
        return base(arg, *inputs)

    # The JIT program compiler inlines interpreted kinds as direct numpy
    # calls; the tags let it recover the op from the bound closure.
    run._kind = kind
    run._arg = arg
    return run


# ----------------------------------------------------------------------
# Plan construction
# ----------------------------------------------------------------------
class _Step:
    """One executable unit: a fused kernel or an interpreted op."""

    __slots__ = ("node", "fn", "inputs", "fused_ops", "out_capable")

    def __init__(self, node, fn, inputs, fused_ops, out_capable):
        self.node = node
        self.fn = fn
        self.inputs = inputs  # tuple[LazyBuffer] — leaves or prior outputs
        self.fused_ops = fused_ops
        self.out_capable = out_capable


def _arg_cse_key(node: LazyBuffer):
    """Hashable arg key, or None when the arg defeats hashing."""
    try:
        hash(node.arg)
    except TypeError:
        return None
    return node.arg


def _build_steps(roots: Sequence[LazyBuffer]):
    """Topo-sort, CSE, collapse movement chains, and fuse under ``roots``.

    Returns ``(steps, dup_pairs, info)``.  ``dup_pairs`` lists
    ``(duplicate_node, representative_node)`` so the executor can
    propagate realized arrays onto merged-away duplicates; ``info``
    carries the merge counters plus ``no_donate`` — ids of input nodes
    whose realized arrays must never be reused as kernel output scratch
    (movement consumers create aliasing views; externally visible
    inlined interiors may be re-realized later and re-read them; nodes
    with consumer edges outside the scheduled subgraph are read again
    when those consumers realize).
    """
    # --- topological order over unrealized nodes (DCE by construction).
    order: list[LazyBuffer] = []
    state: set[int] = set()
    stack: list[tuple[LazyBuffer, bool]] = [(r, False) for r in roots]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in state or node.realized is not None:
            continue
        state.add(id(node))
        stack.append((node, True))
        for src in node.srcs:
            if id(src) not in state and src.realized is None:
                stack.append((src, False))

    # --- CSE: map structurally identical nodes to one representative.
    # The same map also carries algebraic no-op folds (``x * 1.0``,
    # ``x + 0.0`` — the autograd seed and unbroadcast paths emit these)
    # and trivial movement folds (same-shape reshape/expand, identity
    # transpose/swapaxes, reshape-of-reshape chains — the unbroadcast
    # and attention paths emit those), which eager mode executes but a
    # schedule can simply skip.
    rep: dict[int, LazyBuffer] = {}
    dup_pairs: list[tuple[LazyBuffer, LazyBuffer]] = []
    table: dict[tuple, LazyBuffer] = {}
    n_cse = 0
    n_movement = 0
    no_donate: set[int] = set()

    def fold(node: LazyBuffer, target: LazyBuffer) -> None:
        rep[id(node)] = target
        dup_pairs.append((node, target))
        if node.refs or node.pinned:
            # The duplicate stays externally observable; its realization
            # is propagated from the keeper, so the keeper's array (and
            # anything a re-realization of it would read) must survive.
            target.pinned = True

    def const_scalar(node: LazyBuffer) -> float | None:
        arr = node.realized
        if arr is not None and arr.size == 1:
            return float(arr.reshape(()))
        return None

    for node in order:  # children first
        if node.kind in ("const", "gen"):
            continue
        if node.kind in ("reshape", "expand", "transpose", "swapaxes"):
            src = rep.get(id(node.srcs[0]), node.srcs[0])
            if node.kind in ("reshape", "expand"):
                # reshape(reshape(x, s1), s2) == reshape(x, s2) and
                # broadcastability is transitive, so hop over same-kind
                # producers (the inner node dies by DCE if unused).  The
                # rewire moves a consumer edge, so the graph_consumers
                # counters must move with it or donation eligibility
                # would undercount the hop target's consumers.
                while src.kind == node.kind and src.realized is None:
                    hop = rep.get(id(src.srcs[0]), src.srcs[0])
                    node.srcs[0].graph_consumers -= 1
                    hop.graph_consumers += 1
                    node.srcs = (hop,)
                    src = hop
                    n_movement += 1
                identity = src.shape == node.shape
            elif node.kind == "transpose":
                ndim = len(node.shape)
                perm = node.arg
                if perm is None:
                    identity = ndim <= 1
                else:
                    identity = tuple(ax % ndim for ax in perm) == tuple(range(ndim))
            else:  # swapaxes
                ndim = len(node.shape) or 1
                ax1, ax2 = node.arg
                identity = ax1 % ndim == ax2 % ndim
            if identity and src.shape == node.shape and src.dtype == node.dtype:
                fold(node, src)
                n_movement += 1
                continue
        if node.kind in ("mul", "add", "sub", "div") and len(node.srcs) == 2:
            a, b = (rep.get(id(s), s) for s in node.srcs)
            target = None
            vb = const_scalar(b)
            if vb == 1.0 and node.kind in ("mul", "div"):
                target = a
            elif vb == 0.0 and node.kind in ("add", "sub"):
                target = a
            elif node.kind in ("mul", "add"):
                va = const_scalar(a)
                if (va == 1.0 and node.kind == "mul") or (va == 0.0 and node.kind == "add"):
                    target = b
            if (
                target is not None
                and target.shape == node.shape
                and target.dtype == node.dtype
            ):
                fold(node, target)
                n_cse += 1
                continue
        arg_key = _arg_cse_key(node)
        if arg_key is None and node.arg is not None:
            continue  # unhashable arg (e.g. slices) — keep unique
        srcs = tuple(rep.get(id(s), s) for s in node.srcs)
        key = (node.kind, arg_key, tuple(id(s) for s in srcs))
        found = table.get(key)
        if found is not None and found is not node:
            fold(node, found)
            n_cse += 1
        else:
            table[key] = node

    def resolve(node: LazyBuffer) -> LazyBuffer:
        return rep.get(id(node), node)

    # --- consumer counts over the representative graph.  ``consumers``
    # counts resolved edges (drives fusion decisions); ``raw_consumed``
    # counts the as-constructed edges from scheduled nodes, the same
    # unit ``LazyBuffer.graph_consumers`` counts, so comparing the two
    # reveals consumers living *outside* this schedule.
    consumers: dict[int, int] = {}
    raw_consumed: dict[int, int] = {}
    single_consumer: dict[int, LazyBuffer] = {}
    seen: set[int] = set()
    root_ids = {id(resolve(r)) for r in roots}
    dfs = [resolve(r) for r in roots]
    while dfs:
        node = dfs.pop()
        if id(node) in seen or node.realized is not None:
            continue
        seen.add(id(node))
        for raw in node.srcs:
            raw_consumed[id(raw)] = raw_consumed.get(id(raw), 0) + 1
            src = resolve(raw)
            if src.realized is not None:
                continue
            consumers[id(src)] = consumers.get(id(src), 0) + 1
            single_consumer[id(src)] = node
            if id(src) not in seen:
                dfs.append(src)

    def leaks(node: LazyBuffer) -> bool:
        """Can anything outside this schedule still observe ``node``?

        True for live tensor handles, stored backward closures, and —
        the case refs/pinned cannot see — consumer edges hanging off
        another live tensor's graph: such a consumer re-executes later
        and re-reads whatever this schedule realized.
        """
        return (
            node.refs > 0
            or node.pinned
            or node.graph_consumers > raw_consumed.get(id(node), 0)
        )

    def inlined(node: LazyBuffer) -> bool:
        if node.kind not in ELEMENTWISE or id(node) in root_ids:
            return False
        if consumers.get(id(node), 0) != 1:
            return False
        return single_consumer[id(node)].kind in ELEMENTWISE

    # --- emit steps in topological order (children before parents).
    steps: list[_Step] = []
    for node in order:
        if resolve(node) is not node or id(node) not in seen:
            continue  # merged away, or dead code never reached from roots
        if inlined(node):
            continue
        if leaks(node):
            # A consumer outside this schedule will read node.realized
            # later; the array must never be reused as kernel scratch.
            no_donate.add(id(node))
        if node.kind in ELEMENTWISE:
            operands: list[LazyBuffer] = []
            operand_ids: dict[int, int] = {}
            n_ops = 0
            leaky = False

            def render(n: LazyBuffer) -> str:
                nonlocal n_ops, leaky
                n = resolve(n)
                if n.realized is not None or not inlined(n):
                    slot = operand_ids.get(id(n))
                    if slot is None:
                        slot = len(operands)
                        operand_ids[id(n)] = slot
                        operands.append(n)
                    return f"i{slot}"
                if leaks(n):
                    # An externally held interior never realizes here; a
                    # later realize() re-executes it and re-reads these
                    # operand arrays — they must stay intact.  "Held"
                    # includes a consumer edge from another live graph
                    # (e.g. ``t = u + 1; r1, r2 = t.relu(), t * 2``
                    # realizes r1 with t inlined while r2 still needs t).
                    leaky = True
                n_ops += 1
                return _render(n, [render(s) for s in n.srcs])

            n_ops += 1
            top = [render(s) for s in node.srcs]
            expr = _render(node, top)
            out_expr = _render_out_capable(node, top)
            fn = _compile_kernel(expr, out_expr, len(operands))
            if leaky:
                no_donate.update(id(o) for o in operands)
            steps.append(_Step(node, fn, tuple(operands), n_ops, out_expr is not None))
        else:
            srcs = tuple(resolve(s) for s in node.srcs)
            if node.kind in MOVEMENT:
                # The output is (or may be) a view of the input: writing
                # into the input's array would rewrite the view.
                no_donate.update(id(s) for s in srcs)
            steps.append(_Step(node, _bind_exec(node), srcs, 1, False))

    # A merged-away duplicate inherits the keeper's realized array; if
    # the duplicate is still observable from outside the schedule, that
    # shared array must survive donation too.
    for dup, keeper in dup_pairs:
        if leaks(dup):
            no_donate.add(id(keeper))

    info = {
        "n_cse_merged": n_cse,
        "n_movement_collapsed": n_movement,
        "no_donate": no_donate,
    }
    return steps, dup_pairs, info


def describe(roots: Sequence[LazyBuffer]) -> dict:
    """Dry-run schedule introspection for tests and benchmarks."""
    steps, _dups, info = _build_steps([r for r in roots if r.realized is None])
    return {
        "n_steps": len(steps),
        "n_fused_kernels": sum(1 for s in steps if s.fused_ops > 1),
        "n_fused_ops": sum(s.fused_ops for s in steps if s.fused_ops > 1),
        "n_cse_merged": info["n_cse_merged"],
        "n_movement_collapsed": info["n_movement_collapsed"],
        "kinds": [s.node.kind for s in steps],
        "exprs": [s.fn.__doc__ for s in steps if s.fused_ops > 1],
    }


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
class PlanRecorder:
    """Collects executed steps into a replayable slot program (for JIT)."""

    def __init__(self) -> None:
        #: (fn, input_slots, output_slot, out_capable, is_movement, is_gen, dtype)
        self.steps: list[tuple] = []
        self.slot_of_node: dict[int, int] = {}
        self.slot_arrays: list[np.ndarray | None] = []
        self._arr_slot: dict[int, int] = {}
        # Both maps key by id(); every registered node/array must stay
        # alive for the recorder's lifetime or a temporary dying mid-trace
        # lets a new object reuse its id and silently steal its slot.
        self._pinned: list = []

    def _slot(self, node: LazyBuffer) -> int:
        slot = self.slot_of_node.get(id(node))
        if slot is None:
            slot = len(self.slot_arrays)
            self.slot_arrays.append(None)
            self.slot_of_node[id(node)] = slot
            self._pinned.append(node)
        return slot

    def on_leaf(self, node: LazyBuffer, array: np.ndarray) -> int:
        slot = self.slot_of_node.get(id(node))
        if slot is None:
            # A node realized to an already-tracked array (CSE duplicate or
            # a cross-pass leaf) must share that slot, or replays would feed
            # the stale trace-time array while the producer slot updates.
            slot = self._arr_slot.get(id(array))
            if slot is None:
                slot = len(self.slot_arrays)
                self.slot_arrays.append(None)
            self.slot_of_node[id(node)] = slot
            self._pinned.append(node)
        self.slot_arrays[slot] = array
        if id(array) not in self._arr_slot:
            self._arr_slot[id(array)] = slot
            self._pinned.append(array)
        return slot

    def on_step(self, step: _Step, array: np.ndarray) -> None:
        in_slots = tuple(self.slot_of_node[id(src)] for src in step.inputs)
        out_slot = self._slot(step.node)
        self.steps.append(
            (
                step.fn,
                in_slots,
                out_slot,
                step.out_capable,
                step.node.kind in MOVEMENT,
                step.node.kind == "gen",
                step.node.dtype,
            )
        )
        self.slot_arrays[out_slot] = array
        if id(array) not in self._arr_slot:
            self._arr_slot[id(array)] = out_slot
            self._pinned.append(array)

    def slot_of_array(self, array: np.ndarray | None) -> int | None:
        if array is None:
            return None
        return self._arr_slot.get(id(array))


_RECORDER: list[PlanRecorder] = []


def push_recorder(recorder: PlanRecorder) -> None:
    _RECORDER.append(recorder)


def pop_recorder() -> PlanRecorder:
    return _RECORDER.pop()


def recorder_active() -> bool:
    return bool(_RECORDER)


#: Introspection counters from the most recent executed schedule.
last_schedule_info: dict[str, int] = {}


def realize_buffers(roots: list[LazyBuffer]) -> list[np.ndarray]:
    """Realize ``roots`` (and everything they need), returning ndarrays."""
    todo = [r for r in roots if r.realized is None]
    if todo:
        steps, dup_pairs, plan = _build_steps(todo)
        recorder = _RECORDER[-1] if _RECORDER else None
        # Donation: when a fused kernel's input array dies at this step
        # (last consumer, no external tensor/closure/graph-consumer can
        # see it, not a root, not aliased by a view) and shapes/dtypes
        # match exactly,
        # the kernel writes its output into that array via ``out=``
        # instead of allocating.  Disabled while tracing — the recorder
        # keys arrays by id, and reuse would alias its slots.
        donate_ok = recorder is None
        no_donate = plan["no_donate"]
        root_ids = {id(r) for r in todo}
        pending: dict[int, int] = {}
        if donate_ok:
            for step in steps:
                for src in step.inputs:
                    pending[id(src)] = pending.get(id(src), 0) + 1
        produced: set[int] = set()  # nodes realized here to fresh arrays
        n_fused = 0
        n_donated = 0
        for step in steps:
            inputs = []
            for src in step.inputs:
                value = src.realized
                if value is None:  # pragma: no cover - scheduler invariant
                    raise RuntimeError(f"unrealized input {src.kind!r} in schedule")
                if recorder is not None and id(src) not in recorder.slot_of_node:
                    recorder.on_leaf(src, value)
                inputs.append(value)
            node = step.node
            donor = None
            if donate_ok:
                for src in step.inputs:
                    pending[id(src)] -= 1
                if step.out_capable:
                    for src in step.inputs:
                        if (
                            pending[id(src)] == 0
                            and id(src) in produced
                            and id(src) not in no_donate
                            and id(src) not in root_ids
                            and not src.refs
                            and not src.pinned
                            and src.shape == node.shape
                            and src.dtype == node.dtype
                        ):
                            arr = src.realized
                            if (
                                arr.base is None
                                and arr.flags.writeable
                                and arr.shape == node.shape
                                and arr.dtype == node.dtype
                            ):
                                donor = arr
                                break
            if donor is not None:
                out = step.fn(*inputs, _out=donor)
                n_donated += 1
            else:
                out = step.fn(*inputs)
            if not isinstance(out, np.ndarray):
                out = np.asarray(out)  # full reductions yield numpy scalars
            if out.dtype != node.dtype:
                out = out.astype(node.dtype)
            node.realized = out
            if (
                donate_ok
                and node.kind not in MOVEMENT
                and node.kind != "gen"
                and out.base is None
            ):
                produced.add(id(node))
            if step.fused_ops > 1:
                n_fused += step.fused_ops
            if recorder is not None:
                recorder.on_step(step, out)
        for dup, keeper in dup_pairs:
            if dup.realized is None:
                dup.realized = keeper.realized
        if recorder is not None:
            # A root folded away entirely (e.g. ``x * 1.0``) realizes to
            # an array no step produced; register it so the replay layer
            # can still find its slot.
            for r in todo:
                if r.realized is not None and id(r) not in recorder.slot_of_node:
                    recorder.on_leaf(r, r.realized)
        last_schedule_info.update(
            n_steps=len(steps),
            n_fused_ops=n_fused,
            n_cse_merged=plan["n_cse_merged"],
            n_movement_collapsed=plan["n_movement_collapsed"],
            n_out_donated=n_donated,
        )
    return [r.realized for r in roots]
