"""Graph layer of the lazy compute core: buffers, op nodes, mode switch.

`repro.nn` no longer executes every op eagerly.  A :class:`Tensor` op
records a :class:`LazyBuffer` node (kind, inputs, shape/dtype, kwargs)
into a small IR instead of computing a numpy temporary; realization is
forced at ``.numpy()`` / ``.data`` access, ``.backward()`` finalization,
and any other control-flow boundary that needs concrete values.  The
scheduler in :mod:`repro.nn.schedule` then fuses elementwise chains into
single compiled kernels, eliminates dead and duplicate subgraphs, and
recycles intermediate buffers; :mod:`repro.nn.jit` replays a traced
schedule without re-recording the graph.

Every helper in this module is dual-mode: given plain ndarrays it
computes immediately with the exact formula the old eager engine used,
given a :class:`LazyBuffer` it builds a node.  ``REPRO_NN_EAGER=1`` (or
:func:`set_lazy` / :func:`eager_mode`) keeps the whole framework on the
eager path as a fallback.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Callable, Sequence, Union

import numpy as np

#: The standard compute dtype; float64 creeps in only when the caller
#: explicitly provides float64 arrays (e.g. finite-difference checks).
DEFAULT_DTYPE = np.dtype(np.float32)

#: Additive mask value for attention/softmax padding (float32-safe).
NEG_INF = -1e9

_TRUTHY = ("1", "true", "yes", "on")

_state = {"lazy": os.environ.get("REPRO_NN_EAGER", "").lower() not in _TRUTHY}


def lazy_enabled() -> bool:
    """Whether new tensors record into the lazy op graph."""
    return _state["lazy"]


def set_lazy(flag: bool) -> None:
    """Globally enable/disable lazy graph recording for new tensors."""
    _state["lazy"] = bool(flag)


@contextmanager
def eager_mode():
    """Force eager execution for tensors created inside the block."""
    prev = _state["lazy"]
    _state["lazy"] = False
    try:
        yield
    finally:
        _state["lazy"] = prev


@contextmanager
def lazy_mode():
    """Force lazy recording for tensors created inside the block."""
    prev = _state["lazy"]
    _state["lazy"] = True
    try:
        yield
    finally:
        _state["lazy"] = prev


def sigmoid_clip(dtype) -> float:
    """Pre-exp clamp keeping ``exp`` finite in the given dtype."""
    return 88.0 if np.dtype(dtype).itemsize <= 4 else 500.0


# ----------------------------------------------------------------------
# IR node
# ----------------------------------------------------------------------
class LazyBuffer:
    """One node of the op graph: kind, inputs, shape/dtype, kwargs.

    ``realized`` caches the concrete ndarray once the scheduler has
    executed the node (always set for ``const`` leaves).

    ``refs`` counts live :class:`~repro.nn.tensor.Tensor` handles on the
    node, ``pinned`` marks nodes captured by a stored backward closure,
    and ``graph_consumers`` counts live graph nodes holding this node as
    a src (bumped at construction, dropped on consumer destruction).
    Together they tell the scheduler which intermediate arrays can still
    be observed after a schedule finishes: a buffer is eligible for
    ``out=`` reuse as scratch space of a later kernel only when
    ``refs == 0``, it is not pinned, and every one of its consumer edges
    lies inside the schedule being executed — a consumer reachable from
    some *other* live tensor's graph would re-read the array on a later
    ``realize()``.
    """

    __slots__ = (
        "kind",
        "srcs",
        "arg",
        "shape",
        "dtype",
        "realized",
        "refs",
        "pinned",
        "graph_consumers",
    )

    def __init__(self, kind, srcs, arg, shape, dtype, realized=None):
        self.kind = kind
        self.srcs = srcs
        self.arg = arg
        self.shape = tuple(shape)
        self.dtype = np.dtype(dtype)
        self.realized = realized
        self.refs = 0
        self.pinned = False
        self.graph_consumers = 0
        for src in srcs:
            src.graph_consumers += 1

    def __del__(self):
        try:
            for src in self.srcs:
                src.graph_consumers -= 1
        except AttributeError:  # pragma: no cover - interpreter teardown
            pass

    @staticmethod
    def const(array: np.ndarray) -> "LazyBuffer":
        array = np.asarray(array)
        return LazyBuffer("const", (), None, array.shape, array.dtype, array)

    @property
    def size(self) -> int:
        out = 1
        for s in self.shape:
            out *= s
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "realized" if self.realized is not None else "lazy"
        return f"LazyBuffer({self.kind}, shape={self.shape}, {state})"


BufLike = Union[LazyBuffer, np.ndarray, int, float]


def is_buffer(x) -> bool:
    return isinstance(x, LazyBuffer)


def _lift(x: BufLike, ref_dtype=None) -> LazyBuffer:
    """Wrap an ndarray/scalar as a const node (weak-typed scalars)."""
    if isinstance(x, LazyBuffer):
        return x
    if isinstance(x, (int, float)) and ref_dtype is not None:
        return LazyBuffer.const(np.asarray(x, dtype=ref_dtype))
    return LazyBuffer.const(np.asarray(x))


def _result_dtype(a: LazyBuffer, b: LazyBuffer):
    return np.result_type(a.dtype, b.dtype)


# ----------------------------------------------------------------------
# Elementwise ops
# ----------------------------------------------------------------------
def _binary(kind: str, np_fn, a: BufLike, b: BufLike):
    if isinstance(a, LazyBuffer) or isinstance(b, LazyBuffer):
        ref = a.dtype if isinstance(a, LazyBuffer) else b.dtype
        a, b = _lift(a, ref), _lift(b, ref)
        shape = np.broadcast_shapes(a.shape, b.shape)
        return LazyBuffer(kind, (a, b), None, shape, _result_dtype(a, b))
    return np_fn(a, b)


def _unary(kind: str, np_fn, a: BufLike, dtype=None):
    if isinstance(a, LazyBuffer):
        return LazyBuffer(kind, (a,), None, a.shape, dtype or a.dtype)
    return np_fn(a)


def add(a, b):
    return _binary("add", np.add, a, b)


def sub(a, b):
    return _binary("sub", np.subtract, a, b)


def mul(a, b):
    return _binary("mul", np.multiply, a, b)


def div(a, b):
    return _binary("div", np.divide, a, b)


def maximum(a, b):
    return _binary("maximum", np.maximum, a, b)


def eq(a, b):
    """Elementwise equality as a float mask (not a bool array)."""
    if isinstance(a, LazyBuffer) or isinstance(b, LazyBuffer):
        ref = a.dtype if isinstance(a, LazyBuffer) else b.dtype
        a, b = _lift(a, ref), _lift(b, ref)
        shape = np.broadcast_shapes(a.shape, b.shape)
        return LazyBuffer("cmp_eq", (a, b), None, shape, _result_dtype(a, b))
    a_arr, b_arr = np.asarray(a), np.asarray(b)
    if isinstance(b, (int, float)):  # weak scalar: keep the array dtype
        out_dtype = a_arr.dtype
    elif isinstance(a, (int, float)):
        out_dtype = b_arr.dtype
    else:
        out_dtype = np.result_type(a_arr.dtype, b_arr.dtype)
    return np.equal(a_arr, b_arr).astype(out_dtype)


def neg(a):
    return _unary("neg", np.negative, a)


def exp(a):
    return _unary("exp", np.exp, a)


def log(a):
    return _unary("log", np.log, a)


def sqrt(a):
    return _unary("sqrt", np.sqrt, a)


def tanh(a):
    return _unary("tanh", np.tanh, a)


def sigmoid(a):
    if isinstance(a, LazyBuffer):
        return LazyBuffer("sigmoid", (a,), None, a.shape, a.dtype)
    clip = sigmoid_clip(np.asarray(a).dtype)
    return 1.0 / (1.0 + np.exp(-np.clip(a, -clip, clip)))


def relu(a):
    if isinstance(a, LazyBuffer):
        return LazyBuffer("relu", (a,), None, a.shape, a.dtype)
    return np.maximum(a, 0.0)


def gtz(a):
    """``(a > 0)`` as a float mask of ``a``'s dtype (the relu gradient)."""
    if isinstance(a, LazyBuffer):
        return LazyBuffer("gtz", (a,), None, a.shape, a.dtype)
    a = np.asarray(a)
    return np.greater(a, 0).astype(a.dtype)


def pow_scalar(a, exponent: float):
    if isinstance(a, LazyBuffer):
        return LazyBuffer("pows", (a,), float(exponent), a.shape, a.dtype)
    return np.power(a, float(exponent))


# ----------------------------------------------------------------------
# Reductions, matmul, movement
# ----------------------------------------------------------------------
def _norm_axes(axis, ndim):
    if axis is None:
        return None
    if isinstance(axis, int):
        axis = (axis,)
    return tuple(sorted(a % ndim for a in axis))


def reduce_shape(shape, axis, keepdims):
    """Output shape of a sum/max reduction over ``axis``."""
    axes = _norm_axes(axis, len(shape))
    if axes is None:
        return tuple(1 for _ in shape) if keepdims else ()
    if keepdims:
        return tuple(1 if i in axes else s for i, s in enumerate(shape))
    return tuple(s for i, s in enumerate(shape) if i not in axes)


def sum_(a, axis=None, keepdims=False):
    if isinstance(a, LazyBuffer):
        shape = reduce_shape(a.shape, axis, keepdims)
        return LazyBuffer("sum", (a,), (axis, keepdims), shape, a.dtype)
    return a.sum(axis=axis, keepdims=keepdims)


def max_(a, axis, keepdims=False):
    if isinstance(a, LazyBuffer):
        shape = reduce_shape(a.shape, axis, keepdims)
        return LazyBuffer("max", (a,), (axis, keepdims), shape, a.dtype)
    return a.max(axis=axis, keepdims=keepdims)


def cumsum(a, axis):
    if isinstance(a, LazyBuffer):
        return LazyBuffer("cumsum", (a,), axis, a.shape, a.dtype)
    return np.cumsum(a, axis=axis)


def matmul_shape(s1, s2):
    if len(s1) < 2 or len(s2) < 2:
        raise ValueError("matmul requires ndim >= 2 operands")
    if s1[-1] != s2[-2]:
        raise ValueError(f"matmul shape mismatch: {s1} @ {s2}")
    batch = np.broadcast_shapes(s1[:-2], s2[:-2])
    return batch + (s1[-2], s2[-1])


def matmul(a, b):
    if isinstance(a, LazyBuffer) or isinstance(b, LazyBuffer):
        a, b = _lift(a), _lift(b)
        shape = matmul_shape(a.shape, b.shape)
        return LazyBuffer("matmul", (a, b), None, shape, _result_dtype(a, b))
    return np.matmul(a, b)


def reshape(a, shape):
    if isinstance(a, LazyBuffer):
        shape = tuple(shape)
        if -1 in shape:
            known = 1
            for s in shape:
                if s != -1:
                    known *= s
            shape = tuple(a.size // max(1, known) if s == -1 else s for s in shape)
        return LazyBuffer("reshape", (a,), shape, shape, a.dtype)
    return a.reshape(shape)


def transpose(a, axes):
    if isinstance(a, LazyBuffer):
        axes = tuple(ax % len(a.shape) for ax in axes)
        shape = tuple(a.shape[ax] for ax in axes)
        return LazyBuffer("transpose", (a,), axes, shape, a.dtype)
    return a.transpose(axes)


def swapaxes(a, ax1, ax2):
    if isinstance(a, LazyBuffer):
        shape = list(a.shape)
        shape[ax1], shape[ax2] = shape[ax2], shape[ax1]
        return LazyBuffer("swapaxes", (a,), (ax1, ax2), shape, a.dtype)
    return a.swapaxes(ax1, ax2)


def broadcast_to(a, shape):
    if isinstance(a, LazyBuffer):
        shape = tuple(shape)
        if a.shape == shape:
            return a
        return LazyBuffer("expand", (a,), shape, shape, a.dtype)
    return np.broadcast_to(a, shape)


def index_shape(shape, index):
    """Result shape of ``array[index]`` without touching real data."""
    probe = np.broadcast_to(np.zeros((), dtype=np.bool_), shape)
    return probe[index].shape


def getitem(a, index):
    if isinstance(a, LazyBuffer):
        shape = index_shape(a.shape, index)
        return LazyBuffer("getitem", (a,), index, shape, a.dtype)
    return a[index]


def scatter_add(a, index, shape, dtype=None):
    """``out = zeros(shape); np.add.at(out, index, a)`` (getitem adjoint)."""
    if isinstance(a, LazyBuffer):
        return LazyBuffer(
            "scatter", (a,), (index, tuple(shape)), shape, dtype or a.dtype
        )
    out = np.zeros(shape, dtype=dtype or a.dtype)
    np.add.at(out, index, a)
    return out


def cat(parts: Sequence[BufLike], axis: int):
    if any(isinstance(p, LazyBuffer) for p in parts):
        parts = tuple(_lift(p) for p in parts)
        axis_n = axis % len(parts[0].shape)
        shape = list(parts[0].shape)
        shape[axis_n] = sum(p.shape[axis_n] for p in parts)
        dtype = np.result_type(*[p.dtype for p in parts])
        return LazyBuffer("cat", parts, axis, shape, dtype)
    return np.concatenate(list(parts), axis=axis)


def stack(parts: Sequence[BufLike], axis: int):
    if any(isinstance(p, LazyBuffer) for p in parts):
        parts = tuple(_lift(p) for p in parts)
        shape = list(parts[0].shape)
        axis_n = axis % (len(shape) + 1)
        shape.insert(axis_n, len(parts))
        dtype = np.result_type(*[p.dtype for p in parts])
        return LazyBuffer("stack", parts, axis, shape, dtype)
    return np.stack(list(parts), axis=axis)


def gen(fn: Callable[[], np.ndarray], shape, dtype) -> LazyBuffer:
    """A per-execution generated leaf (e.g. a fresh dropout mask).

    The callable runs once per schedule execution — a JIT replay invokes
    it again rather than freezing the traced value.
    """
    return LazyBuffer("gen", (), fn, shape, dtype)


def unbroadcast(g: BufLike, shape) -> BufLike:
    """Sum ``g`` down to ``shape`` (inverse of numpy broadcasting)."""
    shape = tuple(shape)
    g_shape = g.shape
    if g_shape == shape:
        return g
    extra = len(g_shape) - len(shape)
    if extra > 0:
        g = sum_(g, axis=tuple(range(extra)))
        g_shape = g.shape
    axes = tuple(
        i for i, s in enumerate(shape) if s == 1 and g_shape[i] != 1
    )
    if axes:
        g = sum_(g, axis=axes, keepdims=True)
    return reshape(g, shape)


# ----------------------------------------------------------------------
# Realization boundary
# ----------------------------------------------------------------------
def realize_buffers(buffers: Sequence[LazyBuffer]) -> list[np.ndarray]:
    """Force a batch of buffers to concrete ndarrays (one schedule)."""
    from repro.nn import schedule

    return schedule.realize_buffers(list(buffers))


def realize(buffer: BufLike) -> np.ndarray:
    """Force one buffer; ndarrays pass through untouched."""
    if not isinstance(buffer, LazyBuffer):
        return np.asarray(buffer)
    if buffer.realized is not None:
        return buffer.realized
    return realize_buffers([buffer])[0]
