"""Optimizer-state serialization for resumable training.

Module weights round-trip through ``Module.state_dict``; this adds the
optimizer side (Adam moments / SGD velocity and step counters), so long
LocMatcher runs can checkpoint and resume exactly.
"""

from __future__ import annotations

import pathlib
from typing import Union

import numpy as np

from repro.nn.optim import SGD, Adam, Optimizer

PathLike = Union[str, pathlib.Path]


def optimizer_state(optimizer: Optimizer) -> dict[str, np.ndarray]:
    """Arrays describing the optimizer's mutable state."""
    state: dict[str, np.ndarray] = {"lr": np.array([optimizer.lr])}
    if isinstance(optimizer, Adam):
        state["t"] = np.array([optimizer._t])
        for i, (m, v) in enumerate(zip(optimizer._m, optimizer._v)):
            state[f"m::{i}"] = m.copy()
            state[f"v::{i}"] = v.copy()
    elif isinstance(optimizer, SGD):
        for i, vel in enumerate(optimizer._velocity):
            state[f"vel::{i}"] = vel.copy()
    else:
        raise TypeError(f"unsupported optimizer type: {type(optimizer).__name__}")
    return state


def load_optimizer_state(optimizer: Optimizer, state: dict[str, np.ndarray]) -> None:
    """Restore state captured by :func:`optimizer_state`.

    The optimizer must wrap parameters with identical shapes in identical
    order.
    """
    optimizer.lr = float(np.asarray(state["lr"]).reshape(-1)[0])
    if isinstance(optimizer, Adam):
        optimizer._t = int(np.asarray(state["t"]).reshape(-1)[0])
        for i in range(len(optimizer.params)):
            m = np.asarray(state[f"m::{i}"])
            v = np.asarray(state[f"v::{i}"])
            if m.shape != optimizer._m[i].shape:
                raise ValueError(f"moment shape mismatch at parameter {i}")
            optimizer._m[i][...] = m
            optimizer._v[i][...] = v
    elif isinstance(optimizer, SGD):
        for i in range(len(optimizer.params)):
            vel = np.asarray(state[f"vel::{i}"])
            if vel.shape != optimizer._velocity[i].shape:
                raise ValueError(f"velocity shape mismatch at parameter {i}")
            optimizer._velocity[i][...] = vel
    else:
        raise TypeError(f"unsupported optimizer type: {type(optimizer).__name__}")


def save_optimizer(optimizer: Optimizer, path: PathLike) -> None:
    """Write optimizer state as a compressed ``.npz``."""
    np.savez_compressed(pathlib.Path(path), **optimizer_state(optimizer))


def load_optimizer(optimizer: Optimizer, path: PathLike) -> None:
    """Restore optimizer state from :func:`save_optimizer` output."""
    archive = np.load(pathlib.Path(path))
    load_optimizer_state(optimizer, {k: archive[k] for k in archive.files})
