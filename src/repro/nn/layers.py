"""Basic neural-network layers."""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module
from repro.nn.tensor import Tensor


class Linear(Module):
    """Affine map on the last axis: ``y = x @ W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(init.xavier_uniform((in_features, out_features), rng), requires_grad=True)
        self.bias = Tensor(np.zeros(out_features), requires_grad=True) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise ValueError(f"expected last dim {self.in_features}, got {x.shape[-1]}")
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Tensor(init.normal((num_embeddings, embedding_dim), 0.1, rng), requires_grad=True)

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices, dtype=int)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise ValueError("embedding index out of range")
        return self.weight[indices]


class LayerNorm(Module):
    """Layer normalization over the last axis with learned scale/shift."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Tensor(np.ones(dim), requires_grad=True)
        self.beta = Tensor(np.zeros(dim), requires_grad=True)

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.dim:
            raise ValueError(f"expected last dim {self.dim}, got {x.shape[-1]}")
        mu = x.mean(axis=-1, keepdims=True)
        centered = x - mu
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / (var + self.eps).sqrt()
        return normed * self.gamma + self.beta


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode."""

    def __init__(self, p: float = 0.1, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout p must be in [0, 1)")
        self.p = p
        self.rng = rng or np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self.rng.random(x.shape) < keep) / keep
        return x * Tensor(mask)


class ReLU(Module):
    """Rectified linear activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    """Logistic activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Sequential(Module):
    """Apply modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.steps = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for step in self.steps:
            x = step(x)
        return x

    def __len__(self) -> int:
        return len(self.steps)

    def __getitem__(self, idx: int) -> Module:
        return self.steps[idx]
