"""Basic neural-network layers."""

from __future__ import annotations

import numpy as np

from repro.nn import graph, init
from repro.nn.module import Module
from repro.nn.tensor import Tensor


class Linear(Module):
    """Affine map on the last axis: ``y = x @ W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(init.xavier_uniform((in_features, out_features), rng), requires_grad=True)
        self.bias = (
            Tensor(np.zeros(out_features, dtype=graph.DEFAULT_DTYPE), requires_grad=True)
            if bias
            else None
        )

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise ValueError(f"expected last dim {self.in_features}, got {x.shape[-1]}")
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Tensor(init.normal((num_embeddings, embedding_dim), 0.1, rng), requires_grad=True)

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices, dtype=int)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise ValueError("embedding index out of range")
        return self.weight[indices]

    def forward_onehot(self, onehot: Tensor) -> Tensor:
        """Lookup as ``onehot @ weight`` (``(..., num_embeddings)`` input).

        The JIT-traceable path: an integer index array would be frozen
        into a trace, a one-hot float input is just data.
        """
        return onehot @ self.weight

    def onehot(self, indices: np.ndarray) -> np.ndarray:
        """Constant one-hot encoding of ``indices`` for :meth:`forward_onehot`."""
        indices = np.asarray(indices, dtype=int)
        out = np.zeros(indices.shape + (self.num_embeddings,), dtype=self.weight.dtype)
        np.put_along_axis(out, indices[..., None], 1.0, axis=-1)
        return out


class LayerNorm(Module):
    """Layer normalization over the last axis with learned scale/shift."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Tensor(np.ones(dim, dtype=graph.DEFAULT_DTYPE), requires_grad=True)
        self.beta = Tensor(np.zeros(dim, dtype=graph.DEFAULT_DTYPE), requires_grad=True)

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.dim:
            raise ValueError(f"expected last dim {self.dim}, got {x.shape[-1]}")
        mu = x.mean(axis=-1, keepdims=True)
        centered = x - mu
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / (var + self.eps).sqrt()
        return normed * self.gamma + self.beta


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode."""

    def __init__(self, p: float = 0.1, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout p must be in [0, 1)")
        self.p = p
        self.rng = rng or np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        rng, shape, dtype = self.rng, x.shape, x.dtype

        def fresh_mask() -> np.ndarray:
            # Draw in float32 and scale in place: half the RNG bits and
            # no bool/float64 temporaries on the training hot path.
            m = rng.random(shape, dtype=np.float32)
            np.less(m, keep, out=m)
            m *= 1.0 / keep
            return m.astype(dtype, copy=False)

        if graph.lazy_enabled():
            # A `gen` leaf re-invokes fresh_mask on every schedule
            # execution, so a JIT replay draws a new mask (advancing the
            # module RNG exactly as eager mode would) instead of freezing
            # the traced one.
            return x * Tensor._from_buf(graph.gen(fresh_mask, shape, dtype))
        return x * Tensor(fresh_mask())


class ReLU(Module):
    """Rectified linear activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    """Logistic activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Sequential(Module):
    """Apply modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.steps = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for step in self.steps:
            x = step(x)
        return x

    def __len__(self) -> int:
        return len(self.steps)

    def __getitem__(self, idx: int) -> Module:
        return self.steps[idx]
