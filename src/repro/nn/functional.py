"""Composite differentiable functions built on Tensor primitives."""

from __future__ import annotations

import numpy as np

from repro.nn import graph
from repro.nn.tensor import Tensor

#: Additive mask value for attention/softmax padding.
NEG_INF = graph.NEG_INF


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    e = shifted.exp()
    return e / e.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def mask_bias(mask: np.ndarray, dtype=graph.DEFAULT_DTYPE) -> np.ndarray:
    """``0`` where ``mask`` is truthy, ``NEG_INF`` elsewhere, in ``dtype``."""
    return np.where(np.asarray(mask, dtype=bool), 0.0, NEG_INF).astype(dtype)


def masked_softmax(x: Tensor, mask: np.ndarray, axis: int = -1) -> Tensor:
    """Softmax where positions with ``mask == 0`` get zero probability.

    ``mask`` is a constant boolean/0-1 array broadcastable to ``x``; padded
    candidate slots in a LocMatcher batch use this to stay out of the
    probability distribution (Eq. 4 over real candidates only).
    """
    bias = Tensor(mask_bias(mask, x.dtype))
    return softmax(x + bias, axis=axis)


def cross_entropy(logits: Tensor, target_index: np.ndarray, mask: np.ndarray | None = None) -> Tensor:
    """Mean cross-entropy of ``(B, N)`` logits against integer targets.

    ``mask`` (``(B, N)``, optional) marks valid positions; invalid logits are
    excluded from the normalization — this is the training loss of
    LocMatcher (one-hot over the candidate set, Section IV-B).
    """
    target_index = np.asarray(target_index, dtype=int)
    if logits.ndim != 2:
        raise ValueError(f"logits must be (B, N), got shape {logits.shape}")
    batch, n = logits.shape
    if target_index.shape != (batch,):
        raise ValueError("target_index must have shape (B,)")
    if np.any(target_index < 0) or np.any(target_index >= n):
        raise ValueError("target_index out of range")
    if mask is not None:
        logits = logits + Tensor(mask_bias(mask, logits.dtype))
    logp = log_softmax(logits, axis=-1)
    picked = logp[np.arange(batch), target_index]
    return -picked.mean()


def cross_entropy_onehot(logits: Tensor, onehot: Tensor, row_weight: Tensor) -> Tensor:
    """Cross-entropy with one-hot targets and per-row weights.

    The JIT-traceable reformulation of :func:`cross_entropy`: the picked
    log-probability is ``(logp * onehot).sum(-1)`` instead of a fancy
    index (index arrays would be frozen into a trace), and ``row_weight``
    (``(B,)``, typically 0/1) lets a padded batch row contribute nothing
    while the mean normalizes by the real-row count.  Candidate masking
    (``NEG_INF`` bias) must already be applied to ``logits``.
    """
    logp = log_softmax(logits, axis=-1)
    picked = (logp * onehot).sum(axis=-1)  # (B,)
    total = (picked * row_weight).sum()
    return -(total / row_weight.sum())


def binary_cross_entropy_with_logits(
    logits: Tensor, targets: np.ndarray, pos_weight: float = 1.0
) -> Tensor:
    """Mean weighted BCE; ``pos_weight`` scales the positive-class term.

    Used by the classification variants (DLInfMA-MLP) where positive labels
    (the true delivery location among many candidates) are rare — the paper
    uses an 8:2 class weight.
    """
    targets_t = Tensor(np.asarray(targets), dtype=logits.dtype)
    p = logits.sigmoid()
    eps = 1e-12
    pos = targets_t * (p + eps).log() * pos_weight
    neg = (1.0 - targets_t) * ((1.0 - p) + eps).log()
    return -(pos + neg).mean()


def mse_loss(pred: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error against a constant target."""
    diff = pred - Tensor(np.asarray(target), dtype=pred.dtype)
    return (diff * diff).mean()


def pairwise_logistic_loss(score_pos: Tensor, score_neg: Tensor) -> Tensor:
    """RankNet loss: ``log(1 + exp(s_neg - s_pos))`` averaged.

    Drives the positive candidate's score above each negative's.
    """
    diff = score_neg - score_pos
    # log(1 + e^d) = softplus(d); stable via max trick.
    zeros = diff * 0.0
    m = _maximum(diff, zeros)
    return (m + ((diff - m).exp() + (zeros - m).exp()).log()).mean()


def _maximum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise max via relu composition (differentiable a.e.)."""
    return (a - b).relu() + b
