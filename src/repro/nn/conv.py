"""2-D convolution, pooling and upsampling (for the UNet baseline).

All ops take ``(B, C, H, W)`` tensors.  Kernels are small (the UNet baseline
works on 9 x 9 GeoHash-grid images), so the convolution accumulates one
kernel offset at a time via tensordot — simple, exact and fast enough.
"""

from __future__ import annotations

import numpy as np

from repro.nn import graph, init
from repro.nn.module import Module
from repro.nn.tensor import Tensor

# Conv/pool ops compute eagerly on realized arrays (kernels are tiny for
# the 9x9 UNet grids); their backward closures therefore force any lazy
# upstream gradient to a concrete array before the numpy math.


def pad2d(x: Tensor, padding: int) -> Tensor:
    """Zero-pad the last two axes by ``padding`` on every side."""
    if padding < 0:
        raise ValueError("padding must be non-negative")
    if padding == 0:
        return x
    a = x
    pad_width = ((0, 0), (0, 0), (padding, padding), (padding, padding))

    def backward(g) -> None:
        g = graph.realize(g)
        a._receive(g[:, :, padding:-padding, padding:-padding])

    return a._make(np.pad(a.data, pad_width), (a,), backward)


def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None = None, padding: int = 0) -> Tensor:
    """Stride-1 2-D convolution (cross-correlation, as in deep learning).

    ``x`` is ``(B, C, H, W)``, ``weight`` is ``(OC, C, KH, KW)``; output is
    ``(B, OC, H - KH + 1 + 2p, W - KW + 1 + 2p)``.
    """
    if x.ndim != 4 or weight.ndim != 4:
        raise ValueError("conv2d expects 4-D input and weight")
    if x.shape[1] != weight.shape[1]:
        raise ValueError(f"channel mismatch: input {x.shape[1]}, weight {weight.shape[1]}")
    xp = pad2d(x, padding)
    b, c, h, w = xp.shape
    oc, _, kh, kw = weight.shape
    oh, ow = h - kh + 1, w - kw + 1
    if oh < 1 or ow < 1:
        raise ValueError(f"kernel {(kh, kw)} larger than padded input {(h, w)}")

    a, wt = xp, weight
    out_data = np.zeros((b, oc, oh, ow), dtype=a.data.dtype)
    for ki in range(kh):
        for kj in range(kw):
            patch = a.data[:, :, ki : ki + oh, kj : kj + ow]  # (B, C, OH, OW)
            # (B, C, OH, OW) x (OC, C) -> (B, OH, OW, OC)
            out_data += np.tensordot(patch, wt.data[:, :, ki, kj], axes=([1], [1])).transpose(
                0, 3, 1, 2
            )

    def backward(g) -> None:
        g = graph.realize(g)
        if a.requires_grad:
            gx = np.zeros_like(a.data)
            for ki in range(kh):
                for kj in range(kw):
                    # (B, OC, OH, OW) x (OC, C) -> (B, OH, OW, C)
                    contrib = np.tensordot(g, wt.data[:, :, ki, kj], axes=([1], [0]))
                    gx[:, :, ki : ki + oh, kj : kj + ow] += contrib.transpose(0, 3, 1, 2)
            a._receive(gx)
        if wt.requires_grad:
            gw = np.zeros_like(wt.data)
            for ki in range(kh):
                for kj in range(kw):
                    patch = a.data[:, :, ki : ki + oh, kj : kj + ow]
                    # sum over B, OH, OW: (B,OC,OH,OW) x (B,C,OH,OW) -> (OC, C)
                    gw[:, :, ki, kj] = np.tensordot(g, patch, axes=([0, 2, 3], [0, 2, 3]))
            wt._receive(gw)

    out = a._make(out_data, (a, wt), backward)
    if bias is not None:
        out = out + bias.reshape(1, oc, 1, 1)
    return out


class Conv2d(Module):
    """Learned stride-1 convolution layer."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Tensor(init.kaiming_uniform(shape, rng), requires_grad=True)
        self.bias = (
            Tensor(np.zeros(out_channels, dtype=graph.DEFAULT_DTYPE), requires_grad=True)
            if bias
            else None
        )
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return conv2d(x, self.weight, self.bias, padding=self.padding)


def max_pool2d(x: Tensor, kernel: int = 2) -> Tensor:
    """Non-overlapping max pooling; trailing rows/cols that don't fill a
    window are dropped (floor semantics)."""
    if x.ndim != 4:
        raise ValueError("max_pool2d expects a 4-D tensor")
    if kernel < 1:
        raise ValueError("kernel must be >= 1")
    b, c, h, w = x.shape
    oh, ow = h // kernel, w // kernel
    if oh < 1 or ow < 1:
        raise ValueError(f"input {(h, w)} smaller than pool kernel {kernel}")
    a = x
    trimmed = a.data[:, :, : oh * kernel, : ow * kernel]
    windows = trimmed.reshape(b, c, oh, kernel, ow, kernel)
    out_data = windows.max(axis=(3, 5))
    # Record the argmax (first max) per window for the backward pass.
    flat = windows.transpose(0, 1, 2, 4, 3, 5).reshape(b, c, oh, ow, kernel * kernel)
    argmax = flat.argmax(axis=-1)

    def backward(g) -> None:
        g = graph.realize(g)
        gx = np.zeros_like(a.data)
        ki, kj = np.divmod(argmax, kernel)
        bi, ci, oi, oj = np.indices((b, c, oh, ow))
        gx[bi, ci, oi * kernel + ki, oj * kernel + kj] += g
        a._receive(gx)

    return a._make(out_data, (a,), backward)


class MaxPool2d(Module):
    """Module wrapper around :func:`max_pool2d`."""

    def __init__(self, kernel: int = 2) -> None:
        super().__init__()
        self.kernel = kernel

    def forward(self, x: Tensor) -> Tensor:
        return max_pool2d(x, self.kernel)


def upsample_nearest(x: Tensor, out_hw: tuple[int, int]) -> Tensor:
    """Nearest-neighbour resize of the last two axes to ``out_hw``.

    Handles non-integer ratios, which the UNet needs for odd input sizes
    (9 -> 4 -> 9 round trips).
    """
    if x.ndim != 4:
        raise ValueError("upsample_nearest expects a 4-D tensor")
    _, _, h, w = x.shape
    oh, ow = out_hw
    if oh < 1 or ow < 1:
        raise ValueError("target size must be positive")
    rows = (np.arange(oh) * h) // oh
    cols = (np.arange(ow) * w) // ow
    # Single fancy-index op so autograd's add.at routes gradients correctly.
    return x[:, :, rows[:, None], cols[None, :]]
