"""Multi-head self-attention and the transformer encoder (Vaswani et al.).

LocMatcher uses a transformer encoder over the (orderless, variable-size)
set of location candidates: self-attention models candidate correlations
without imposing a sequence order, which is exactly why the paper prefers it
over an RNN (Section IV-B).
"""

from __future__ import annotations

import numpy as np

from repro.nn.functional import mask_bias, softmax
from repro.nn.layers import Dropout, LayerNorm, Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor


def key_bias_from_mask(key_mask: np.ndarray, dtype=np.float32) -> np.ndarray:
    """Additive ``(B, 1, 1, N)`` attention bias from a ``(B, N)`` 0/1 mask.

    Precompute this once per batch and pass it as ``key_bias`` so a JIT
    trace sees the bias as a plain data input instead of re-deriving it
    from the mask with numpy control flow on every call.
    """
    return mask_bias(key_mask, dtype)[:, None, None, :]


class MultiHeadSelfAttention(Module):
    """Scaled dot-product self-attention with ``n_heads`` heads.

    Inputs are ``(B, N, d_model)``; ``key_mask`` is a constant ``(B, N)``
    0/1 array marking real (non-padded) positions.
    """

    def __init__(
        self,
        d_model: int,
        n_heads: int,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if d_model % n_heads != 0:
            raise ValueError(f"d_model={d_model} not divisible by n_heads={n_heads}")
        self.d_model = d_model
        self.n_heads = n_heads
        self.d_head = d_model // n_heads
        self.w_q = Linear(d_model, d_model, rng=rng)
        self.w_k = Linear(d_model, d_model, rng=rng)
        self.w_v = Linear(d_model, d_model, rng=rng)
        self.w_o = Linear(d_model, d_model, rng=rng)
        self.attn_dropout = Dropout(dropout, rng=rng)

    def _split_heads(self, x: Tensor) -> Tensor:
        b, n, _ = x.shape
        return x.reshape(b, n, self.n_heads, self.d_head).transpose(0, 2, 1, 3)

    def forward(
        self,
        x: Tensor,
        key_mask: np.ndarray | None = None,
        key_bias: Tensor | None = None,
    ) -> Tensor:
        if x.ndim != 3 or x.shape[-1] != self.d_model:
            raise ValueError(f"expected (B, N, {self.d_model}), got {x.shape}")
        b, n, _ = x.shape
        q = self._split_heads(self.w_q(x))  # (B, H, N, dh)
        k = self._split_heads(self.w_k(x))
        v = self._split_heads(self.w_v(x))
        scores = (q @ k.swapaxes(-1, -2)) * (1.0 / np.sqrt(self.d_head))  # (B, H, N, N)
        if key_bias is not None:
            scores = scores + key_bias  # precomputed (B, 1, 1, N) additive bias
        elif key_mask is not None:
            key_mask = np.asarray(key_mask, dtype=bool)
            if key_mask.shape != (b, n):
                raise ValueError(f"key_mask must be (B, N)={b, n}, got {key_mask.shape}")
            scores = scores + Tensor(key_bias_from_mask(key_mask, x.dtype))
        attn = softmax(scores, axis=-1)
        attn = self.attn_dropout(attn)
        out = attn @ v  # (B, H, N, dh)
        out = out.transpose(0, 2, 1, 3).reshape(b, n, self.d_model)
        return self.w_o(out)


class TransformerEncoderLayer(Module):
    """One encoder block: self-attention + position-wise FFN.

    Post-norm arrangement as in the original transformer (and the paper):
    residual connection around each sub-layer followed by layer norm.
    """

    def __init__(
        self,
        d_model: int,
        n_heads: int,
        d_ff: int,
        dropout: float = 0.1,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.attn = MultiHeadSelfAttention(d_model, n_heads, dropout, rng=rng)
        self.ff1 = Linear(d_model, d_ff, rng=rng)
        self.ff2 = Linear(d_ff, d_model, rng=rng)
        self.norm1 = LayerNorm(d_model)
        self.norm2 = LayerNorm(d_model)
        self.dropout1 = Dropout(dropout, rng=rng)
        self.dropout2 = Dropout(dropout, rng=rng)

    def forward(
        self,
        x: Tensor,
        key_mask: np.ndarray | None = None,
        key_bias: Tensor | None = None,
    ) -> Tensor:
        attn_out = self.dropout1(self.attn(x, key_mask, key_bias=key_bias))
        x = self.norm1(x + attn_out)
        ff_out = self.dropout2(self.ff2(self.ff1(x).relu()))
        return self.norm2(x + ff_out)


class TransformerEncoder(Module):
    """A stack of ``n_layers`` encoder blocks (the paper uses 3 layers,
    2 heads, 32 dense-sublayer neurons)."""

    def __init__(
        self,
        n_layers: int,
        d_model: int,
        n_heads: int,
        d_ff: int,
        dropout: float = 0.1,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if n_layers < 1:
            raise ValueError("n_layers must be >= 1")
        self.layers = [
            TransformerEncoderLayer(d_model, n_heads, d_ff, dropout, rng=rng)
            for _ in range(n_layers)
        ]

    def forward(
        self,
        x: Tensor,
        key_mask: np.ndarray | None = None,
        key_bias: Tensor | None = None,
    ) -> Tensor:
        for layer in self.layers:
            x = layer(x, key_mask, key_bias=key_bias)
        return x
