"""GeoJSON export for visual inspection of results.

Produces FeatureCollections viewable in any GIS tool (kepler.gl,
geojson.io): the synthetic city (buildings, lockers, receptions), the
candidate pool, and per-address prediction-vs-truth segments.  Pure JSON —
no plotting dependencies.
"""

from __future__ import annotations

import json
from typing import Mapping

from repro.geo import Point


def _feature(geometry: dict, properties: dict) -> dict:
    return {"type": "Feature", "geometry": geometry, "properties": properties}


def _point(lng: float, lat: float) -> dict:
    return {"type": "Point", "coordinates": [lng, lat]}


def city_to_geojson(city) -> dict:
    """The synthetic city as a FeatureCollection (buildings + spots)."""
    features = []
    for building in city.buildings.values():
        lng, lat = city.projection.to_lnglat(building.x, building.y)
        features.append(
            _feature(
                _point(float(lng), float(lat)),
                {"kind": "building", "id": building.building_id, "name": building.name},
            )
        )
    for spot in city.spots.values():
        lng, lat = city.projection.to_lnglat(spot.x, spot.y)
        features.append(
            _feature(
                _point(float(lng), float(lat)),
                {"kind": spot.kind.value, "id": spot.spot_id, "block": spot.block_id},
            )
        )
    return {"type": "FeatureCollection", "features": features}


def pool_to_geojson(pool) -> dict:
    """A candidate pool as a FeatureCollection of weighted points."""
    features = [
        _feature(
            _point(c.lng, c.lat),
            {"kind": "candidate", "id": c.candidate_id, "weight": c.weight},
        )
        for c in pool.candidates
    ]
    return {"type": "FeatureCollection", "features": features}


def predictions_to_geojson(
    predictions: Mapping[str, Point],
    ground_truth: Mapping[str, Point] | None = None,
) -> dict:
    """Predictions (and, when available, error segments to the truth)."""
    from repro.geo import haversine_m

    features = []
    for address_id, pred in sorted(predictions.items()):
        features.append(
            _feature(
                _point(pred.lng, pred.lat),
                {"kind": "prediction", "address_id": address_id},
            )
        )
        truth = (ground_truth or {}).get(address_id)
        if truth is not None:
            error = haversine_m(pred.lng, pred.lat, truth.lng, truth.lat)
            features.append(
                _feature(
                    {
                        "type": "LineString",
                        "coordinates": [
                            [pred.lng, pred.lat],
                            [truth.lng, truth.lat],
                        ],
                    },
                    {"kind": "error", "address_id": address_id, "error_m": round(error, 1)},
                )
            )
    return {"type": "FeatureCollection", "features": features}


def write_geojson(payload: dict, path) -> None:
    """Write a FeatureCollection to disk."""
    with open(path, "w") as handle:
        json.dump(payload, handle)
