"""Plain-text table/figure rendering for experiment outputs."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.eval.metrics import EvalResult


def metrics_table(
    results: Mapping[str, EvalResult],
    title: str = "",
    order: Sequence[str] | None = None,
) -> str:
    """Render a Table II-style block: method x (MAE, P95, beta50)."""
    names = list(order) if order else list(results)
    width = max([len(n) for n in names] + [8])
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{'Method'.ljust(width)}  {'MAE(m)':>8}  {'P95(m)':>8}  {'β50(%)':>8}")
    lines.append("-" * (width + 30))
    for name in names:
        r = results[name]
        lines.append(
            f"{name.ljust(width)}  {r.mae:8.1f}  {r.p95:8.1f}  {r.beta50:8.1f}"
        )
    return "\n".join(lines)


def series_table(
    rows: Sequence[tuple],
    headers: Sequence[str],
    title: str = "",
    fmt: str = "10.2f",
) -> str:
    """Render a figure-style series (e.g. MAE vs D) as an aligned table."""
    lines = []
    if title:
        lines.append(title)
    head = "  ".join(f"{h:>12}" for h in headers)
    lines.append(head)
    lines.append("-" * len(head))
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, (int, float)):
                cells.append(f"{value:>12.2f}")
            else:
                cells.append(f"{str(value):>12}")
        lines.append("  ".join(cells))
    return "\n".join(lines)


def metrics_csv(results: Mapping[str, EvalResult], order: Sequence[str] | None = None) -> str:
    """CSV form of a metrics table (method,mae_m,p95_m,beta50_pct,n)."""
    names = list(order) if order else list(results)
    lines = ["method,mae_m,p95_m,beta50_pct,n"]
    for name in names:
        r = results[name]
        lines.append(f"{name},{r.mae:.3f},{r.p95:.3f},{r.beta50:.3f},{r.n}")
    return "\n".join(lines)


def histogram_text(
    counts: Mapping, title: str = "", bar_width: int = 40
) -> str:
    """ASCII histogram for distribution figures (Figure 9)."""
    lines = [title] if title else []
    if not counts:
        return "\n".join(lines + ["(empty)"])
    peak = max(counts.values()) or 1
    for key in sorted(counts):
        bar = "#" * max(1, int(bar_width * counts[key] / peak)) if counts[key] else ""
        lines.append(f"{str(key):>10}  {str(counts[key]):>7}  {bar}")
    return "\n".join(lines)
