"""Deeper result analysis: error CDFs, bootstrap CIs, grouped breakdowns.

Supports the case-study style reporting of Section V (e.g. error by
delivery-spot kind) and gives the reproduction honest uncertainty bars —
our synthetic test sets are small, so point estimates alone overstate
precision.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Hashable, Mapping, Sequence

import numpy as np

from repro.eval.metrics import EvalResult, error_meters, evaluate
from repro.geo import Point


def error_cdf(
    errors: np.ndarray, thresholds: Sequence[float] = (10, 25, 50, 100, 200)
) -> list[tuple[float, float]]:
    """``(threshold_m, % of samples below)`` pairs."""
    errors = np.asarray(errors)
    if errors.size == 0:
        raise ValueError("no errors to aggregate")
    return [(float(t), float((errors < t).mean() * 100.0)) for t in thresholds]


def bootstrap_ci(
    errors: np.ndarray,
    statistic: Callable[[np.ndarray], float] = np.mean,
    n_boot: int = 1000,
    alpha: float = 0.05,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile bootstrap confidence interval for a statistic of errors."""
    errors = np.asarray(errors)
    if errors.size == 0:
        raise ValueError("no errors to aggregate")
    if not 0 < alpha < 1:
        raise ValueError("alpha must be in (0, 1)")
    rng = np.random.default_rng(seed)
    stats = np.empty(n_boot)
    n = len(errors)
    for b in range(n_boot):
        stats[b] = statistic(errors[rng.integers(0, n, size=n)])
    lo, hi = np.percentile(stats, [100 * alpha / 2, 100 * (1 - alpha / 2)])
    return float(lo), float(hi)


def breakdown_by(
    predictions: Mapping[str, Point],
    ground_truth: Mapping[str, Point],
    groups: Mapping[str, Hashable],
    delta_m: float = 50.0,
) -> dict[Hashable, EvalResult]:
    """Per-group :class:`EvalResult` where ``groups`` maps address→key.

    Addresses missing from any of the three mappings are skipped; groups
    left with no addresses are omitted.
    """
    members: dict[Hashable, list[str]] = defaultdict(list)
    for address_id in predictions:
        if address_id in ground_truth and address_id in groups:
            members[groups[address_id]].append(address_id)
    out: dict[Hashable, EvalResult] = {}
    for key, ids in members.items():
        preds = {a: predictions[a] for a in ids}
        truth = {a: ground_truth[a] for a in ids}
        out[key] = evaluate(preds, truth, delta_m=delta_m)
    return out


def compare_methods_errors(
    predictions_by_method: Mapping[str, Mapping[str, Point]],
    ground_truth: Mapping[str, Point],
) -> dict[str, np.ndarray]:
    """Aligned per-address error arrays for paired method comparison."""
    common: set[str] = set(ground_truth)
    for preds in predictions_by_method.values():
        common &= set(preds)
    ids = sorted(common)
    if not ids:
        raise ValueError("methods share no evaluated addresses")
    out = {}
    for name, preds in predictions_by_method.items():
        out[name] = error_meters({a: preds[a] for a in ids}, {a: ground_truth[a] for a in ids})
    return out


def paired_win_rate(errors_a: np.ndarray, errors_b: np.ndarray) -> float:
    """Fraction of addresses where method A beats method B (ties split)."""
    errors_a = np.asarray(errors_a)
    errors_b = np.asarray(errors_b)
    if errors_a.shape != errors_b.shape or errors_a.size == 0:
        raise ValueError("need equal, non-empty error arrays")
    wins = (errors_a < errors_b).sum() + 0.5 * (errors_a == errors_b).sum()
    return float(wins / len(errors_a))


def candidate_recall(
    examples: Mapping[str, "object"],
    ground_truth: Mapping[str, Point],
    projection,
    pool,
    radius_m: float = 50.0,
) -> float:
    """Share of addresses whose candidate set reaches the ground truth.

    A selector can never beat its candidate generation: if no retrieved
    candidate lies within ``radius_m`` of the true delivery location, the
    address is lost before selection.  This is the error floor the
    Figure 10(a) D-sweep trades against.
    """
    if radius_m <= 0:
        raise ValueError("radius_m must be positive")
    hits, total = 0, 0
    for address_id, example in examples.items():
        truth = ground_truth.get(address_id)
        if truth is None:
            continue
        tx, ty = projection.to_xy(truth.lng, truth.lat)
        total += 1
        for cid in example.candidate_ids:
            candidate = pool.by_id[cid]
            if np.hypot(candidate.x - tx, candidate.y - ty) <= radius_m:
                hits += 1
                break
    if total == 0:
        raise ValueError("no addresses with ground truth to score")
    return hits / total


def paired_permutation_pvalue(
    errors_a: np.ndarray,
    errors_b: np.ndarray,
    n_perm: int = 2000,
    seed: int = 0,
) -> float:
    """Two-sided paired permutation test on the mean error difference.

    Under the null the sign of each per-address difference is exchangeable;
    the p-value is the fraction of sign-flipped resamples whose |mean
    difference| reaches the observed one.
    """
    errors_a = np.asarray(errors_a, dtype=float)
    errors_b = np.asarray(errors_b, dtype=float)
    if errors_a.shape != errors_b.shape or errors_a.size == 0:
        raise ValueError("need equal, non-empty error arrays")
    diffs = errors_a - errors_b
    observed = abs(diffs.mean())
    rng = np.random.default_rng(seed)
    hits = 0
    for _ in range(n_perm):
        signs = rng.choice([-1.0, 1.0], size=len(diffs))
        if abs((diffs * signs).mean()) >= observed - 1e-12:
            hits += 1
    return (hits + 1) / (n_perm + 1)
