"""Spatial cross-validation.

The paper evaluates on one spatially disjoint split; with synthetic data we
can do better: rotate which region serves as the test set and report
mean ± bootstrap-CI metrics per method.  This guards the reproduction's
conclusions against split luck on small test sets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.analysis import bootstrap_ci
from repro.eval.harness import Workload, run_methods
from repro.eval.metrics import EvalResult, error_meters, evaluate
from repro.synth import AddressSplit, SynthDataset


def rotated_splits(dataset: SynthDataset, n_folds: int = 3) -> list[AddressSplit]:
    """Region-rotated splits: fold ``k`` tests on block-stripe ``k``.

    Blocks (west-to-east) are dealt into ``n_folds`` stripes; each fold
    tests on one stripe and trains on the rest (a slice of the training
    stripe doubles as validation).
    """
    if n_folds < 2:
        raise ValueError("n_folds must be >= 2")
    delivered = set(dataset.delivered_address_ids)
    blocks = sorted(dataset.city.blocks.values(), key=lambda b: (b.center_x, b.center_y))
    stripes: list[list[str]] = [[] for _ in range(n_folds)]
    for i, block in enumerate(blocks):
        ids = [
            a.address_id
            for a in dataset.city.addresses_in_block(block.block_id)
            if a.address_id in delivered
        ]
        stripes[i % n_folds].extend(sorted(ids))
    splits = []
    for fold in range(n_folds):
        test = stripes[fold]
        rest = [a for s in range(n_folds) if s != fold for a in stripes[s]]
        n_val = max(1, len(rest) // 5)
        splits.append(
            AddressSplit(tuple(rest[n_val:]), tuple(rest[:n_val]), tuple(test))
        )
    return splits


@dataclass(frozen=True)
class CrossValResult:
    """Aggregated metrics over folds for one method."""

    mae_mean: float
    mae_ci: tuple[float, float]
    beta50_mean: float
    fold_results: tuple[EvalResult, ...]


def cross_validate(
    dataset: SynthDataset,
    methods: list[str],
    n_folds: int = 3,
    seed: int = 0,
    fast: bool = False,
) -> dict[str, CrossValResult]:
    """Run every method over rotated spatial folds."""
    splits = rotated_splits(dataset, n_folds)
    per_method_errors: dict[str, list[np.ndarray]] = {m: [] for m in methods}
    per_method_results: dict[str, list[EvalResult]] = {m: [] for m in methods}
    for split in splits:
        workload = Workload.from_dataset(dataset, split=split)
        runs = run_methods(workload, methods, seed=seed, fast=fast)
        for name, run in runs.items():
            errors = error_meters(run.predictions, workload.ground_truth)
            per_method_errors[name].append(errors)
            per_method_results[name].append(
                evaluate(run.predictions, workload.ground_truth)
            )
    out: dict[str, CrossValResult] = {}
    for name in methods:
        pooled = np.concatenate(per_method_errors[name])
        results = per_method_results[name]
        out[name] = CrossValResult(
            mae_mean=float(pooled.mean()),
            mae_ci=bootstrap_ci(pooled, seed=seed),
            beta50_mean=float(np.mean([r.beta50 for r in results])),
            fold_results=tuple(results),
        )
    return out
