"""Evaluation metrics: MAE, P95, beta_delta (Section V-B, Eq. 6-7)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo import Point, haversine_m


def error_meters(
    predictions: dict[str, Point], ground_truth: dict[str, Point]
) -> np.ndarray:
    """Geodesic error per address present in both mappings (sorted ids)."""
    ids = sorted(set(predictions) & set(ground_truth))
    return np.array(
        [
            haversine_m(
                predictions[a].lng, predictions[a].lat,
                ground_truth[a].lng, ground_truth[a].lat,
            )
            for a in ids
        ]
    )


def mae(errors: np.ndarray) -> float:
    """Mean absolute error in meters."""
    errors = np.asarray(errors)
    if errors.size == 0:
        raise ValueError("no errors to aggregate")
    return float(errors.mean())


def p95(errors: np.ndarray) -> float:
    """0.95-percentile error in meters (the paper's bad-case metric)."""
    errors = np.asarray(errors)
    if errors.size == 0:
        raise ValueError("no errors to aggregate")
    return float(np.percentile(errors, 95))


def beta(errors: np.ndarray, delta_m: float = 50.0) -> float:
    """Percentage of samples with error strictly below ``delta_m`` (Eq. 7)."""
    errors = np.asarray(errors)
    if errors.size == 0:
        raise ValueError("no errors to aggregate")
    if delta_m <= 0:
        raise ValueError("delta_m must be positive")
    return float((errors < delta_m).mean() * 100.0)


@dataclass(frozen=True)
class EvalResult:
    """Aggregate metrics of one method on one evaluation set."""

    mae: float
    p95: float
    beta50: float
    n: int

    def row(self) -> tuple[float, float, float]:
        """``(MAE, P95, beta50)`` for table printing."""
        return (self.mae, self.p95, self.beta50)


def evaluate(
    predictions: dict[str, Point],
    ground_truth: dict[str, Point],
    delta_m: float = 50.0,
) -> EvalResult:
    """All three paper metrics over the common address set."""
    errors = error_meters(predictions, ground_truth)
    return EvalResult(
        mae=mae(errors), p95=p95(errors), beta50=beta(errors, delta_m), n=len(errors)
    )
