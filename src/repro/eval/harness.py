"""Experiment harness: run any method on a workload, collect metrics.

A :class:`Workload` bundles what every method consumes — trips, the address
book, ground truth and a spatially disjoint split.  ``run_methods`` shares
candidate-generation artifacts among the DLInfMA-family methods (the
candidate pool is identical across selectors, so computing it once is both
faster and exactly what the paper's variants comparison does).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from repro.baselines import (
    AnnotationBaseline,
    GeoCloudBaseline,
    GeocodingBaseline,
    GeoRankBaseline,
    UNetBaseline,
)
from repro.core import (
    DLInfMA,
    DLInfMAConfig,
    FeatureConfig,
    LocMatcherConfig,
    PipelineArtifacts,
    build_artifacts,
)
from repro.geo import LocalProjection, Point
from repro.obs import event, get_registry
from repro.obs import span as obs_span
from repro.synth import AddressSplit, SynthDataset, split_addresses_by_region
from repro.trajectory import Address, DeliveryTrip


@dataclass
class Workload:
    """One evaluation setup: data + split."""

    trips: list[DeliveryTrip]
    addresses: dict[str, Address]
    ground_truth: dict[str, Point]
    split: AddressSplit
    projection: LocalProjection

    @classmethod
    def from_dataset(
        cls,
        dataset: SynthDataset,
        trips: list[DeliveryTrip] | None = None,
        split: AddressSplit | None = None,
    ) -> "Workload":
        """Build a workload from a synthetic dataset (optionally overriding
        the trips, e.g. with re-injected delays for Table III)."""
        return cls(
            trips=list(trips if trips is not None else dataset.trips),
            addresses=dict(dataset.addresses),
            ground_truth=dict(dataset.ground_truth),
            split=split or split_addresses_by_region(dataset),
            projection=dataset.city.projection,
        )

    @property
    def train_ids(self) -> list[str]:
        return list(self.split.train)

    @property
    def val_ids(self) -> list[str]:
        return list(self.split.val)

    @property
    def test_ids(self) -> list[str]:
        return list(self.split.test)


def _dlinfma(selector: str = "locmatcher", features: FeatureConfig | None = None,
             locmatcher: LocMatcherConfig | None = None, **kwargs) -> DLInfMA:
    config = DLInfMAConfig(
        selector=selector,
        features=features or FeatureConfig(),
        locmatcher=locmatcher or LocMatcherConfig(),
        **kwargs,
    )
    return DLInfMA(config)


def method_registry(seed: int = 0, fast: bool = False) -> dict[str, callable]:
    """Factories for every method of Table II, keyed by the paper's names.

    ``fast`` shrinks training schedules for unit tests.
    """
    lm = LocMatcherConfig(seed=seed)
    if fast:
        lm = replace(lm, max_epochs=60, patience=10, lr_step=15)
    unet_epochs = 8 if fast else 30

    def locmatcher_with(features: FeatureConfig) -> callable:
        return lambda: _dlinfma("locmatcher", features=features, locmatcher=lm)

    return {
        # Baselines.
        "Geocoding": GeocodingBaseline,
        "Annotation": AnnotationBaseline,
        "GeoCloud": GeoCloudBaseline,
        "GeoRank": lambda: GeoRankBaseline(seed=seed),
        "UNet-based": lambda: UNetBaseline(epochs=unet_epochs, seed=seed),
        "MinDist": lambda: _dlinfma("mindist"),
        "MaxTC": lambda: _dlinfma("maxtc"),
        "MaxTC-ILC": lambda: _dlinfma("maxtc-ilc"),
        # Ours.
        "DLInfMA": lambda: _dlinfma("locmatcher", locmatcher=lm),
        # Selector variants.
        "DLInfMA-GBDT": lambda: _dlinfma("gbdt", seed=seed),
        "DLInfMA-RF": lambda: _dlinfma("rf", seed=seed),
        "DLInfMA-MLP": lambda: _dlinfma("mlp", seed=seed),
        "DLInfMA-RkDT": lambda: _dlinfma("rkdt", seed=seed),
        "DLInfMA-RkNet": lambda: _dlinfma("rknet", seed=seed),
        "DLInfMA-PN": lambda: _dlinfma(
            "locmatcher", locmatcher=replace(lm, encoder="lstm")
        ),
        "DLInfMA-Grid": lambda: _dlinfma("locmatcher", locmatcher=lm, pool_method="grid"),
        # Feature ablations.
        "DLInfMA-nTC": locmatcher_with(FeatureConfig(use_tc=False)),
        "DLInfMA-nD": locmatcher_with(FeatureConfig(use_dist=False)),
        "DLInfMA-nP": locmatcher_with(FeatureConfig(use_profile=False)),
        "DLInfMA-nLC": locmatcher_with(FeatureConfig(use_lc=False)),
        "DLInfMA-nA": locmatcher_with(FeatureConfig(use_address=False)),
        "DLInfMA-LCaddr": locmatcher_with(FeatureConfig(lc_mode="address")),
    }


#: Method names whose pipelines share the default candidate pool.
SHARED_ARTIFACT_METHODS = frozenset(
    {
        "MinDist",
        "MaxTC",
        "MaxTC-ILC",
        "DLInfMA",
        "DLInfMA-GBDT",
        "DLInfMA-RF",
        "DLInfMA-MLP",
        "DLInfMA-RkDT",
        "DLInfMA-RkNet",
        "DLInfMA-PN",
        "DLInfMA-nTC",
        "DLInfMA-nD",
        "DLInfMA-nP",
        "DLInfMA-nLC",
        "DLInfMA-nA",
        "DLInfMA-LCaddr",
    }
)


@dataclass
class MethodRun:
    """Predictions and timing of one fitted method.

    ``stage_timings`` keeps the engine's ``{stage}_s`` dict for programmatic
    lookups; ``stage_rows`` carries the same numbers as ``(stage, seconds)``
    pairs in execution order — the form reports should print.
    """

    name: str
    predictions: dict[str, Point]
    fit_seconds: float
    predict_seconds: float
    method: object = field(repr=False, default=None)
    stage_timings: dict[str, float] = field(default_factory=dict)
    stage_rows: list[tuple[str, float]] = field(default_factory=list)


def run_method(
    name: str,
    factory: callable,
    workload: Workload,
    artifacts: PipelineArtifacts | None = None,
) -> MethodRun:
    """Fit on train+val, predict the test addresses."""
    method = factory() if callable(factory) else factory
    kwargs = {}
    if isinstance(method, DLInfMA) and artifacts is not None:
        kwargs["artifacts"] = artifacts
    with obs_span(
        "eval.run_method", method=name, shared_artifacts=artifacts is not None
    ):
        t0 = time.perf_counter()
        method.fit(
            workload.trips,
            workload.addresses,
            workload.ground_truth,
            workload.train_ids,
            workload.val_ids,
            projection=workload.projection,
            **kwargs,
        )
        t1 = time.perf_counter()
        predictions = method.predict(workload.test_ids)
        t2 = time.perf_counter()
    registry = get_registry()
    registry.counter("eval_method_runs_total", "Methods fitted by the harness").inc(
        method=name
    )
    registry.histogram(
        "eval_fit_seconds", "Wall-clock fit time per harness method run"
    ).observe(t1 - t0, method=name)
    event(
        "eval.method.complete", level="debug", component="eval",
        method=name, fit_seconds=t1 - t0, predict_seconds=t2 - t1,
        n_predictions=len(predictions),
    )
    stage_timings = dict(method.timings) if isinstance(method, DLInfMA) else {}
    stage_rows = (
        method.context.timing_rows()
        if isinstance(method, DLInfMA) and method.context is not None
        else []
    )
    return MethodRun(
        name=name,
        predictions=predictions,
        fit_seconds=t1 - t0,
        predict_seconds=t2 - t1,
        method=method,
        stage_timings=stage_timings,
        stage_rows=stage_rows,
    )


def run_methods(
    workload: Workload,
    names: list[str] | None = None,
    seed: int = 0,
    fast: bool = False,
) -> dict[str, MethodRun]:
    """Run many methods, sharing candidate artifacts where possible."""
    registry = method_registry(seed=seed, fast=fast)
    names = names or list(registry)
    unknown = set(names) - set(registry)
    if unknown:
        raise ValueError(f"unknown methods: {sorted(unknown)}")

    artifacts = None
    if any(n in SHARED_ARTIFACT_METHODS for n in names):
        artifacts = build_artifacts(
            workload.trips, workload.addresses, workload.projection, DLInfMAConfig()
        )
    runs: dict[str, MethodRun] = {}
    for name in names:
        shared = artifacts if name in SHARED_ARTIFACT_METHODS else None
        runs[name] = run_method(name, registry[name], workload, artifacts=shared)
    return runs
