"""Metrics, experiment harness and report rendering."""

from repro.eval.metrics import EvalResult, beta, error_meters, evaluate, mae, p95
from repro.eval.harness import (
    MethodRun,
    SHARED_ARTIFACT_METHODS,
    Workload,
    method_registry,
    run_method,
    run_methods,
)
from repro.eval.report import histogram_text, metrics_csv, metrics_table, series_table
from repro.eval.crossval import CrossValResult, cross_validate, rotated_splits
from repro.eval.geojson import (
    city_to_geojson,
    pool_to_geojson,
    predictions_to_geojson,
    write_geojson,
)
from repro.eval.analysis import (
    bootstrap_ci,
    breakdown_by,
    candidate_recall,
    compare_methods_errors,
    error_cdf,
    paired_permutation_pvalue,
    paired_win_rate,
)

__all__ = [
    "EvalResult",
    "beta",
    "error_meters",
    "evaluate",
    "mae",
    "p95",
    "MethodRun",
    "SHARED_ARTIFACT_METHODS",
    "Workload",
    "method_registry",
    "run_method",
    "run_methods",
    "histogram_text",
    "metrics_csv",
    "metrics_table",
    "series_table",
    "bootstrap_ci",
    "breakdown_by",
    "candidate_recall",
    "compare_methods_errors",
    "error_cdf",
    "paired_permutation_pvalue",
    "paired_win_rate",
    "CrossValResult",
    "cross_validate",
    "rotated_splits",
    "city_to_geojson",
    "pool_to_geojson",
    "predictions_to_geojson",
    "write_geojson",
]
