"""Lloyd's k-means with k-means++ seeding."""

from __future__ import annotations

import numpy as np


def kmeans(
    coords: np.ndarray,
    k: int,
    rng: np.random.Generator | None = None,
    max_iter: int = 100,
    tol: float = 1e-6,
) -> tuple[np.ndarray, np.ndarray]:
    """Cluster ``(n, d)`` points into ``k`` groups.

    Returns ``(labels, centers)`` where ``labels`` has shape ``(n,)`` and
    ``centers`` has shape ``(k, d)``.  Empty clusters are re-seeded to the
    point farthest from its center.
    """
    coords = np.asarray(coords, dtype=float)
    if coords.ndim != 2:
        raise ValueError("coords must be 2-D")
    n = len(coords)
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, n={n}], got {k}")
    rng = rng or np.random.default_rng(0)

    centers = _kmeanspp_init(coords, k, rng)
    labels = np.zeros(n, dtype=int)
    for _ in range(max_iter):
        d2 = ((coords[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        labels = d2.argmin(axis=1)
        new_centers = centers.copy()
        for c in range(k):
            mask = labels == c
            if mask.any():
                new_centers[c] = coords[mask].mean(axis=0)
            else:
                worst = d2[np.arange(n), labels].argmax()
                new_centers[c] = coords[worst]
        shift = float(np.abs(new_centers - centers).max())
        centers = new_centers
        if shift < tol:
            break
    d2 = ((coords[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
    labels = d2.argmin(axis=1)
    return labels, centers


def _kmeanspp_init(coords: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    n = len(coords)
    centers = np.empty((k, coords.shape[1]), dtype=float)
    centers[0] = coords[rng.integers(n)]
    closest_d2 = ((coords - centers[0]) ** 2).sum(axis=1)
    for c in range(1, k):
        total = closest_d2.sum()
        if total <= 0:
            centers[c:] = coords[rng.integers(n, size=k - c)]
            break
        probs = closest_d2 / total
        centers[c] = coords[rng.choice(n, p=probs)]
        d2 = ((coords - centers[c]) ** 2).sum(axis=1)
        closest_d2 = np.minimum(closest_d2, d2)
    return centers
