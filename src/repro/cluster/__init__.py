"""Clustering algorithms used across the paper.

- Threshold centroid-linkage hierarchical clustering (candidate pools, ours)
- DBSCAN (GeoCloud baseline)
- k-means (comparison method mentioned in Section III-B)
- Grid merging (DLInfMA-Grid variant)

All operate on ``(n, 2)`` arrays of projected meter coordinates.
"""

from repro.cluster.types import Cluster
from repro.cluster.hierarchical import hierarchical_cluster, merge_weighted_clusters
from repro.cluster.dbscan import dbscan
from repro.cluster.kmeans import kmeans
from repro.cluster.gridmerge import grid_merge
from repro.cluster.optics import extract_clusters, optics

__all__ = [
    "Cluster",
    "hierarchical_cluster",
    "merge_weighted_clusters",
    "dbscan",
    "kmeans",
    "grid_merge",
    "extract_clusters",
    "optics",
]
