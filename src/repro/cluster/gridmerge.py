"""Grid-merging location generation (the DLInfMA-Grid variant).

Discretizes the plane into ``cell_m`` x ``cell_m`` cells and emits one
location per non-empty cell (the centroid of its points).  As the paper
notes, two stays that straddle a cell border yield two near-duplicate
locations — the weakness DLInfMA-Grid exposes.
"""

from __future__ import annotations

import math
from collections import defaultdict

import numpy as np

from repro.cluster.types import Cluster


def grid_merge(coords: np.ndarray, cell_m: float) -> list[Cluster]:
    """Bucket ``(n, 2)`` meter coordinates into square cells.

    Returns one :class:`Cluster` per occupied cell, centered on the mean of
    the cell's points.
    """
    coords = np.asarray(coords, dtype=float)
    if coords.ndim != 2 or (coords.size and coords.shape[1] != 2):
        raise ValueError(f"coords must be (n, 2), got shape {coords.shape}")
    if cell_m <= 0:
        raise ValueError("cell_m must be positive")
    cells: dict[tuple[int, int], list[int]] = defaultdict(list)
    for i, (x, y) in enumerate(coords):
        cells[(int(math.floor(x / cell_m)), int(math.floor(y / cell_m)))].append(i)
    clusters = []
    for members in cells.values():
        pts = coords[members]
        clusters.append(
            Cluster(
                x=float(pts[:, 0].mean()),
                y=float(pts[:, 1].mean()),
                weight=float(len(members)),
                members=sorted(members),
            )
        )
    return clusters
