"""OPTICS ordering and xi-free cluster extraction.

The paper's Section III-B surveys clustering choices for stay points —
k-means, DBSCAN, OPTICS, grid merging — before settling on threshold
hierarchical clustering.  OPTICS is provided for completeness and for the
pool-construction ablation: reachability ordering plus a simple
eps-threshold extraction (equivalent to DBSCAN at that eps, but computed
from one ordering for any eps' <= eps).
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.geo import GridIndex

UNDEFINED = math.inf


def optics(
    coords: np.ndarray, eps_m: float, min_pts: int
) -> tuple[np.ndarray, np.ndarray]:
    """Compute the OPTICS ordering and reachability distances.

    Returns ``(order, reachability)`` where ``order`` is a permutation of
    point indices and ``reachability[i]`` is the reachability distance of
    point ``order[i]`` (``inf`` for the first point of each component).
    """
    coords = np.asarray(coords, dtype=float)
    if coords.ndim != 2 or (coords.size and coords.shape[1] != 2):
        raise ValueError(f"coords must be (n, 2), got shape {coords.shape}")
    if eps_m <= 0:
        raise ValueError("eps_m must be positive")
    if min_pts < 1:
        raise ValueError("min_pts must be >= 1")
    n = len(coords)
    if n == 0:
        return np.empty(0, dtype=int), np.empty(0)

    grid = GridIndex(cell_size_m=eps_m)
    for i, (x, y) in enumerate(coords):
        grid.insert(i, float(x), float(y))

    def neighbors(i: int) -> list[int]:
        x, y = coords[i]
        return grid.query_radius(float(x), float(y), eps_m)

    def core_distance(i: int, nbrs: list[int]) -> float:
        if len(nbrs) < min_pts:
            return UNDEFINED
        d = np.sort(np.hypot(*(coords[nbrs] - coords[i]).T))
        return float(d[min_pts - 1])

    processed = np.zeros(n, dtype=bool)
    reach = np.full(n, UNDEFINED)
    order: list[int] = []

    for seed in range(n):
        if processed[seed]:
            continue
        processed[seed] = True
        order.append(seed)
        nbrs = neighbors(seed)
        cdist = core_distance(seed, nbrs)
        if cdist is UNDEFINED or math.isinf(cdist):
            continue
        heap: list[tuple[float, int]] = []

        def update(center: int, center_core: float) -> None:
            cx, cy = coords[center]
            for other in neighbors(center):
                if processed[other]:
                    continue
                d = math.hypot(coords[other, 0] - cx, coords[other, 1] - cy)
                new_reach = max(center_core, d)
                if new_reach < reach[other]:
                    reach[other] = new_reach
                    heapq.heappush(heap, (new_reach, other))

        update(seed, cdist)
        while heap:
            r, current = heapq.heappop(heap)
            if processed[current] or r > reach[current]:
                continue
            processed[current] = True
            order.append(current)
            cur_nbrs = neighbors(current)
            cur_core = core_distance(current, cur_nbrs)
            if not math.isinf(cur_core):
                update(current, cur_core)

    ordered_reach = reach[np.array(order)]
    # Restore inf for each component's starting point representation.
    return np.array(order, dtype=int), ordered_reach


def extract_clusters(
    order: np.ndarray, reachability: np.ndarray, eps_m: float
) -> np.ndarray:
    """Cut the reachability plot at ``eps_m`` into cluster labels.

    Returns labels aligned with the *original* point indices.  Every point
    gets a label; a reachability above the threshold starts a new cluster
    (single-point clusters are legitimate groups here, matching the
    ``min_pts=1`` usage of the GeoCloud baseline).
    """
    n = len(order)
    labels = np.full(n, -1, dtype=int)
    cluster = -1
    for pos in range(n):
        if reachability[pos] > eps_m:
            cluster += 1
        labels[order[pos]] = cluster
    return labels
