"""DBSCAN over 2-D meter coordinates (used by the GeoCloud baseline)."""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.geo import GridIndex

NOISE = -1


def dbscan(coords: np.ndarray, eps_m: float, min_pts: int) -> np.ndarray:
    """Label ``(n, 2)`` points; returns an int array, ``-1`` marks noise.

    Standard density-based clustering: a core point has at least ``min_pts``
    neighbours (itself included) within ``eps_m``; clusters are the
    connected components of core points plus their border points.
    """
    coords = np.asarray(coords, dtype=float)
    if coords.ndim != 2 or (coords.size and coords.shape[1] != 2):
        raise ValueError(f"coords must be (n, 2), got shape {coords.shape}")
    if eps_m <= 0:
        raise ValueError("eps_m must be positive")
    if min_pts < 1:
        raise ValueError("min_pts must be >= 1")
    n = len(coords)
    labels = np.full(n, NOISE, dtype=int)
    if n == 0:
        return labels

    grid = GridIndex(cell_size_m=eps_m)
    for i, (x, y) in enumerate(coords):
        grid.insert(i, float(x), float(y))

    neighbors_cache: dict[int, list[int]] = {}

    def neighbors(i: int) -> list[int]:
        if i not in neighbors_cache:
            x, y = coords[i]
            neighbors_cache[i] = grid.query_radius(float(x), float(y), eps_m)
        return neighbors_cache[i]

    cluster_id = 0
    visited = np.zeros(n, dtype=bool)
    for seed in range(n):
        if visited[seed]:
            continue
        visited[seed] = True
        seed_neighbors = neighbors(seed)
        if len(seed_neighbors) < min_pts:
            continue  # stays noise unless claimed as a border point later
        labels[seed] = cluster_id
        queue = deque(seed_neighbors)
        while queue:
            j = queue.popleft()
            if labels[j] == NOISE:
                labels[j] = cluster_id  # border or core of this cluster
            if visited[j]:
                continue
            visited[j] = True
            j_neighbors = neighbors(j)
            if len(j_neighbors) >= min_pts:
                queue.extend(j_neighbors)
        cluster_id += 1
    return labels
