"""Threshold centroid-linkage agglomerative clustering.

The paper's candidate-pool construction (Section III-B): start with every
stay point as a singleton cluster and repeatedly merge the closest pair of
centroids until no two centroids are within ``distance_threshold``.  The
centroid of each final cluster becomes a location candidate.

The implementation is exact but avoids the O(n^2) distance matrix: a spatial
grid limits candidate pairs to those within the threshold (a pair farther
apart can never be merged), and a lazy min-heap orders merges globally.
Merged clusters get fresh ids, so heap entries never go stale — they are
simply skipped when either endpoint is no longer alive.
"""

from __future__ import annotations

import heapq
import math
from typing import Sequence

import numpy as np

from repro.cluster.types import Cluster
from repro.geo import GridIndex


def hierarchical_cluster(
    coords: np.ndarray,
    distance_threshold: float,
    weights: Sequence[float] | None = None,
) -> list[Cluster]:
    """Cluster ``(n, 2)`` meter coordinates with a centroid-distance cutoff.

    Returns clusters whose pairwise centroid distances are all at least
    ``distance_threshold``.  ``weights`` (default all-ones) make centroids
    weighted means — used when merging an existing candidate pool (where a
    candidate stands for many stay points) with fresh stay points.
    """
    coords = np.asarray(coords, dtype=float)
    if coords.ndim != 2 or (coords.size and coords.shape[1] != 2):
        raise ValueError(f"coords must be (n, 2), got shape {coords.shape}")
    n = len(coords)
    if weights is None:
        w = np.ones(n, dtype=float)
    else:
        w = np.asarray(weights, dtype=float)
        if w.shape != (n,):
            raise ValueError("weights must align with coords")
        if np.any(w <= 0):
            raise ValueError("weights must be positive")
    if distance_threshold <= 0:
        raise ValueError("distance_threshold must be positive")
    if n == 0:
        return []

    # Live clusters: id -> (x, y, weight, member indices).
    live: dict[int, tuple[float, float, float, list[int]]] = {
        i: (float(coords[i, 0]), float(coords[i, 1]), float(w[i]), [i]) for i in range(n)
    }
    next_id = n
    grid = GridIndex(cell_size_m=distance_threshold)
    for cid, (x, y, _, _) in live.items():
        grid.insert(cid, x, y)

    heap: list[tuple[float, int, int]] = []

    def push_pairs(cid: int) -> None:
        x, y, _, _ = live[cid]
        for other in grid.query_radius(x, y, distance_threshold):
            if other == cid:
                continue
            ox, oy, _, _ = live[other]
            d = math.hypot(ox - x, oy - y)
            if d < distance_threshold:
                a, b = (cid, other) if cid < other else (other, cid)
                heapq.heappush(heap, (d, a, b))

    for cid in range(n):
        push_pairs(cid)

    while heap:
        d, a, b = heapq.heappop(heap)
        if a not in live or b not in live:
            continue
        xa, ya, wa, ma = live.pop(a)
        xb, yb, wb, mb = live.pop(b)
        grid.remove(a)
        grid.remove(b)
        wt = wa + wb
        nx = (xa * wa + xb * wb) / wt
        ny = (ya * wa + yb * wb) / wt
        cid = next_id
        next_id += 1
        live[cid] = (nx, ny, wt, ma + mb)
        grid.insert(cid, nx, ny)
        push_pairs(cid)

    return [
        Cluster(x=x, y=y, weight=wt, members=sorted(members))
        for x, y, wt, members in live.values()
    ]


def merge_weighted_clusters(
    existing: Sequence[Cluster],
    new_coords: np.ndarray,
    distance_threshold: float,
) -> list[Cluster]:
    """Merge an existing candidate pool with new points (bi-weekly update).

    Existing clusters enter as weighted points (their centroids, weighted by
    ``weight``); member index bookkeeping is reset because the two batches
    index different arrays — callers interested in provenance should track it
    themselves via weights.
    """
    new_coords = np.asarray(new_coords, dtype=float).reshape(-1, 2)
    ex_coords = np.array([[c.x, c.y] for c in existing], dtype=float).reshape(-1, 2)
    coords = np.vstack([ex_coords, new_coords]) if len(existing) else new_coords
    weights = np.concatenate(
        [
            np.array([c.weight for c in existing], dtype=float),
            np.ones(len(new_coords), dtype=float),
        ]
    )
    return hierarchical_cluster(coords, distance_threshold, weights=weights)
