"""Shared cluster result type."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Cluster:
    """A weighted cluster of 2-D points.

    ``members`` are indices into the coordinate array the clustering was run
    on; ``weight`` is the sum of member weights (member count when the input
    was unweighted).
    """

    x: float
    y: float
    weight: float
    members: list[int] = field(default_factory=list)

    @property
    def size(self) -> int:
        """Number of member points."""
        return len(self.members)
