"""Load generation against the query server: closed- and open-loop.

Two canonical workload shapes:

* **closed loop** — N synthetic clients, each issuing its next request
  the moment the previous one returns.  Measures the server's saturated
  throughput and the latency it sustains under exactly-N outstanding
  requests.
* **open loop** — requests arrive on a Poisson process at a target rate
  regardless of completions (how real user traffic behaves), which is the
  shape that actually exercises the bounded admission queue: when the
  server falls behind, arrivals keep coming and the rejection counter —
  not an invisible client-side convoy — absorbs the overload.

Determinism: every random draw (arrival gaps, address sampling) flows
from the explicit ``rng`` argument — no module-level :mod:`random` state —
so two runs with equal seeds produce byte-identical request schedules;
only the measured timings differ.
"""

from __future__ import annotations

import math
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.serve.server import QueryServer, ServeResponse, ServeStatus


@dataclass(frozen=True)
class ScheduledRequest:
    """One planned arrival: when (relative to t0) and which address."""

    offset_s: float
    address_id: str


def poisson_schedule(
    address_ids: Sequence[str],
    rate_rps: float,
    duration_s: float,
    rng: random.Random,
) -> list[ScheduledRequest]:
    """Open-loop arrival plan: exponential gaps, uniform address draws."""
    if not address_ids:
        raise ValueError("need at least one address id to sample from")
    if rate_rps <= 0:
        raise ValueError(f"rate_rps must be > 0: {rate_rps}")
    schedule: list[ScheduledRequest] = []
    t = 0.0
    while True:
        t += rng.expovariate(rate_rps)
        if t >= duration_s:
            return schedule
        schedule.append(
            ScheduledRequest(t, address_ids[rng.randrange(len(address_ids))])
        )


def closed_sequences(
    address_ids: Sequence[str],
    n_clients: int,
    length: int,
    rng: random.Random,
) -> list[list[str]]:
    """Per-client address sequences for the closed loop (cycled if short)."""
    if not address_ids:
        raise ValueError("need at least one address id to sample from")
    if n_clients < 1:
        raise ValueError(f"n_clients must be >= 1: {n_clients}")
    return [
        [address_ids[rng.randrange(len(address_ids))] for _ in range(length)]
        for _ in range(n_clients)
    ]


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (``q`` in [0, 100])."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


@dataclass(frozen=True)
class LoadReport:
    """What a load run measured; the serve-bench artifact payload."""

    workload: str
    duration_s: float
    n_issued: int
    n_ok: int
    n_rejected: int
    n_timed_out: int
    n_unknown: int
    n_errors: int
    throughput_rps: float
    latency_ms: dict[str, float]
    cache_hit_rate: float
    by_source: dict[str, int] = field(default_factory=dict)
    server: dict[str, Any] = field(default_factory=dict)
    queue_depth_series: list[tuple[float, int]] = field(default_factory=list)
    slo: dict[str, Any] | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "workload": self.workload,
            "duration_s": self.duration_s,
            "n_issued": self.n_issued,
            "n_ok": self.n_ok,
            "n_rejected": self.n_rejected,
            "n_timed_out": self.n_timed_out,
            "n_unknown": self.n_unknown,
            "n_errors": self.n_errors,
            "throughput_rps": self.throughput_rps,
            "latency_ms": dict(self.latency_ms),
            "cache_hit_rate": self.cache_hit_rate,
            "by_source": dict(self.by_source),
            "server": dict(self.server),
            "queue_depth_series": [list(row) for row in self.queue_depth_series],
            "slo": dict(self.slo) if self.slo is not None else None,
        }

    def render(self) -> str:
        """Human-readable summary block for the CLI."""
        lat = self.latency_ms
        lines = [
            f"workload        {self.workload}",
            f"duration        {self.duration_s:.2f} s",
            f"issued          {self.n_issued}",
            f"completed (ok)  {self.n_ok}",
            f"rejected        {self.n_rejected}",
            f"timed out       {self.n_timed_out}",
            f"unknown addr    {self.n_unknown}",
            f"errors          {self.n_errors}",
            f"throughput      {self.throughput_rps:.1f} req/s",
            (
                f"latency (ms)    p50 {lat.get('p50', 0.0):.3f}"
                f"  p95 {lat.get('p95', 0.0):.3f}"
                f"  p99 {lat.get('p99', 0.0):.3f}"
                f"  max {lat.get('max', 0.0):.3f}"
            ),
            f"cache hit rate  {self.cache_hit_rate * 100.0:.1f}%",
        ]
        if self.by_source:
            tiers = "  ".join(
                f"{tier}={count}" for tier, count in sorted(self.by_source.items())
            )
            lines.append(f"answered by     {tiers}")
        if self.queue_depth_series:
            peak = max(depth for _, depth in self.queue_depth_series)
            lines.append(f"queue depth     peak {peak} "
                         f"({len(self.queue_depth_series)} series points)")
        if self.slo is not None:
            lines.append(f"slo verdict     "
                         f"{'OK' if self.slo.get('ok') else 'VIOLATED'} "
                         f"({len(self.slo.get('results', []))} objectives)")
        return "\n".join(lines)


def build_report(
    workload: str,
    responses: Sequence[ServeResponse],
    duration_s: float,
    server: QueryServer | None = None,
    slos: Sequence[Any] | None = None,
) -> LoadReport:
    """Fold raw responses into the percentile / throughput summary.

    When ``server`` is given, its health windows contribute the
    queue-depth time series; when ``slos`` are given too, the server's
    live SLO verdict (with burn rates) is attached to the report.
    """
    counts = {status: 0 for status in ServeStatus}
    ok_latencies: list[float] = []
    cache_hits = 0
    cache_lookups = 0
    by_source: dict[str, int] = {}
    for response in responses:
        counts[response.status] += 1
        if response.status is ServeStatus.OK:
            ok_latencies.append(response.latency_s)
            if response.result is not None:
                tier = response.result.source.value
                by_source[tier] = by_source.get(tier, 0) + 1
            if response.cache_state in ("hit", "miss"):
                cache_lookups += 1
                if response.cache_state == "hit":
                    cache_hits += 1
    latency_ms = {
        "p50": percentile(ok_latencies, 50.0) * 1e3,
        "p95": percentile(ok_latencies, 95.0) * 1e3,
        "p99": percentile(ok_latencies, 99.0) * 1e3,
        "mean": (sum(ok_latencies) / len(ok_latencies) * 1e3) if ok_latencies else 0.0,
        "max": (max(ok_latencies) * 1e3) if ok_latencies else 0.0,
    }
    queue_series: list[tuple[float, int]] = []
    slo_verdict: dict[str, Any] | None = None
    if server is not None:
        queue_series = server.health.queue_depth_series()
        if slos:
            slo_verdict = server.verdict(list(slos)).to_dict()
    return LoadReport(
        workload=workload,
        duration_s=duration_s,
        n_issued=len(responses),
        n_ok=counts[ServeStatus.OK],
        n_rejected=counts[ServeStatus.REJECTED],
        n_timed_out=counts[ServeStatus.TIMED_OUT],
        n_unknown=counts[ServeStatus.UNKNOWN_ADDRESS],
        n_errors=counts[ServeStatus.ERROR],
        throughput_rps=counts[ServeStatus.OK] / duration_s if duration_s > 0 else 0.0,
        latency_ms=latency_ms,
        cache_hit_rate=cache_hits / cache_lookups if cache_lookups else 0.0,
        by_source=by_source,
        server=server.stats() if server is not None else {},
        queue_depth_series=queue_series,
        slo=slo_verdict,
    )


class LoadGenerator:
    """Drives a :class:`QueryServer` with seeded synthetic traffic."""

    def __init__(
        self,
        server: QueryServer,
        address_ids: Sequence[str],
        rng: random.Random,
    ) -> None:
        if not address_ids:
            raise ValueError("need at least one address id to sample from")
        self.server = server
        self.address_ids = list(address_ids)
        self.rng = rng

    def run_closed(
        self,
        n_clients: int = 4,
        duration_s: float = 2.0,
        timeout_s: float | None = None,
        sequence_length: int = 512,
        slos: Sequence[Any] | None = None,
    ) -> LoadReport:
        """N clients, each back-to-back over its pregenerated sequence."""
        sequences = closed_sequences(
            self.address_ids, n_clients, sequence_length, self.rng
        )
        buckets: list[list[ServeResponse]] = [[] for _ in range(n_clients)]

        def client(index: int) -> None:
            sequence = sequences[index]
            sink = buckets[index]
            i = 0
            end = time.monotonic() + duration_s
            while time.monotonic() < end:
                sink.append(
                    self.server.query(sequence[i % len(sequence)], timeout_s)
                )
                i += 1

        t0 = time.monotonic()
        threads = [
            threading.Thread(target=client, args=(i,), name=f"loadgen-closed-{i}")
            for i in range(n_clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.monotonic() - t0
        responses = [r for bucket in buckets for r in bucket]
        return build_report("closed", responses, elapsed, self.server, slos=slos)

    def run_open(
        self,
        rate_rps: float = 200.0,
        duration_s: float = 2.0,
        timeout_s: float | None = None,
        slos: Sequence[Any] | None = None,
    ) -> LoadReport:
        """Poisson arrivals at ``rate_rps``, independent of completions."""
        schedule = poisson_schedule(
            self.address_ids, rate_rps, duration_s, self.rng
        )
        pendings = []
        t0 = time.monotonic()
        for request in schedule:
            delay = t0 + request.offset_s - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            pendings.append(self.server.submit(request.address_id, timeout_s))
        responses = [pending.result() for pending in pendings]
        elapsed = time.monotonic() - t0
        return build_report("open", responses, elapsed, self.server, slos=slos)
