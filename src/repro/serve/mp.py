"""Multi-process serving: worker pool over mmap'd columnar snapshots.

The thread-pool :class:`~repro.serve.server.QueryServer` is GIL-bound —
every shard lookup walks python dicts, so adding threads never buys a
second core.  This module promotes the same copy-on-write snapshot design
across process boundaries:

* A :class:`SnapshotPublisher` owns a directory of versioned columnar
  snapshot files (:mod:`repro.serve.columnar`), an append-only update
  log, and an mmap'd uint64 version counter (the ``CURRENT`` file).
  Publishing is write-new-file → fsync → atomic rename → flip counter,
  so readers can never map a torn snapshot; the update log is appended
  *before* the snapshot build, which is what makes
  :meth:`repro.serve.shard.ShardedLocationStore.restore` recover batches
  a crash separated from their snapshot.
* N worker processes (:func:`_worker_main`) each ``np.memmap`` the
  current snapshot read-only — one page-cache copy serves the whole
  pool — and run the existing admission/deadline semantics
  (:class:`~repro.serve.server.ServerConfig`,
  :class:`~repro.serve.server.ServeStatus`) plus a per-worker TTL+LRU
  cache.  Between requests a worker polls the version counter and remaps
  the new file when it flips: readers never block on a refresh, exactly
  like the in-process snapshot swap.
* A front-end :class:`ProcessRouter` dispatches by shard key over pipes
  (shard → ``shard % n_workers``, so the worker count never changes
  *shard* assignment), coalesces concurrent single queries through the
  :class:`~repro.serve.batching.MicroBatcher`, heartbeats the pool, and
  restarts dead workers automatically.  Every worker maps the *full*
  snapshot, so shard routing is a cache-locality policy, not a
  correctness requirement — a stale routing table misroutes to a worker
  that still answers correctly.

Failure semantics across the process boundary mirror the in-process
tier: unknown ids come back as ``UNKNOWN_ADDRESS`` (and re-raise as
:class:`UnknownAddressError` from :meth:`ProcessRouter.resolve`), worker
deaths surface as one retried request and then ``ERROR``, and deadlines
are enforced both worker-side (epoch deadline in the message) and
client-side (bounded waits).
"""

from __future__ import annotations

import glob as _glob
import itertools
import json
import mmap
import os
import re
import struct
import threading
import time
import zlib
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from multiprocessing import get_context
from typing import Any, Sequence

from repro.apps.store import QueryResult, QuerySource, UnknownAddressError
from repro.geo import Point
from repro.obs import MetricsRegistry, get_registry
from repro.obs.exemplar import Exemplar, exemplars_enabled
from repro.obs.health import SLO, HealthReport, RequestWindows, evaluate_slos
from repro.obs.provenance import (
    ProvenanceRing,
    get_provenance_ring,
    merge_provenance,
)
from repro.obs.recorder import get_recorder
from repro.obs.shm import (
    MetricsPlane,
    PlaneSchemaError,
    SlotSpec,
    merge_snapshots,
    merged_registry,
    scrape_planes,
)
from repro.obs.trace import (
    configure_tracing,
    current_trace_path,
    disable_tracing,
    flush_tracing,
    make_traceparent,
    merge_traces,
    parse_traceparent,
    span,
    tracing_enabled,
)
from repro.serve.batching import MicroBatcher
from repro.serve.cache import TTLLRUCache
from repro.serve.columnar import (
    ColumnarSnapshot,
    SnapshotCorruptError,
    SnapshotInfo,
    load_snapshot,
    write_snapshot,
)
from repro.serve.server import ServeResponse, ServerConfig, ServeStatus
from repro.serve.shard import ShardedLocationStore, _stable_hash

_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{8})\.rsnap$")
_CURRENT = "CURRENT"
_LOG = "updates.log"
_GRACE_S = 0.050

#: Observability sub-directory of a snapshot dir: per-process metrics
#: planes (``metrics-*.shm``) and per-worker span files.
_OBS_DIR = "obs"
#: Statuses a worker can emit (admission rejects never cross the pipe).
_WORKER_STATUSES = ("ok", "unknown_address", "timed_out", "error")
_CACHE_STATES = ("hit", "miss", "bypass")


def worker_plane_specs(worker_id: int) -> list[SlotSpec]:
    """Fixed slot schema of one worker's shared-memory metrics plane."""
    w = str(worker_id)
    specs = [
        SlotSpec("counter", "serve_worker_requests_total",
                 (("status", s), ("worker", w)),
                 help="Rows served by this worker, by terminal status")
        for s in _WORKER_STATUSES
    ]
    specs += [
        # exemplars=True reserves seqlock-guarded per-bucket exemplar
        # bytes: a fleet latency bucket can pivot straight into the
        # trace + provenance record of a real request that landed in it.
        SlotSpec("histogram", "serve_worker_request_latency_seconds",
                 (("cache", c), ("worker", w)),
                 help="In-worker wall time per served row",
                 exemplars=True)
        for c in _CACHE_STATES
    ]
    specs += [
        SlotSpec("counter", "provenance_records_total",
                 (("result", r), ("worker", w)),
                 help="Provenance records by retention outcome")
        for r in ("kept", "sampled_out")
    ]
    specs += [
        SlotSpec("counter", "serve_worker_cache_events_total",
                 (("event", e), ("worker", w)),
                 help="Worker-local result-cache lookups by outcome")
        for e in ("hit", "miss")
    ]
    specs += [
        SlotSpec("gauge", "serve_worker_cache_hit_ratio", (("worker", w),),
                 help="Worker-local result-cache hit ratio"),
        SlotSpec("counter", "serve_worker_snapshot_loads_total",
                 (("worker", w),),
                 help="Snapshot (re)loads this worker performed"),
        SlotSpec("histogram", "serve_worker_snapshot_load_seconds",
                 (("worker", w),),
                 help="Wall time to map + verify one snapshot"),
        SlotSpec("gauge", "serve_worker_snapshot_version", (("worker", w),),
                 help="Snapshot version this worker currently serves"),
        SlotSpec("gauge", "serve_worker_snapshot_version_lag",
                 (("worker", w),),
                 help="Published version minus this worker's mapped version"),
    ]
    return specs


def router_plane_specs(n_workers: int) -> list[SlotSpec]:
    """Fixed slot schema of the router's shared-memory metrics plane."""
    specs = [
        SlotSpec("counter", "serve_requests_total", (("status", s.value),),
                 help="Served requests by terminal status")
        for s in ServeStatus
    ]
    specs += [
        SlotSpec("histogram", "serve_request_latency_seconds",
                 (("cache", c),),
                 help="End-to-end request latency by cache outcome")
        for c in _CACHE_STATES
    ]
    specs.append(
        SlotSpec("gauge", "serve_queue_depth", (),
                 help="Sub-batches in flight across the pool")
    )
    for i in range(n_workers):
        w = str(i)
        specs.append(
            SlotSpec("counter", "serve_worker_restarts_total",
                     (("worker", w),),
                     help="Worker processes restarted after death")
        )
        specs.append(
            SlotSpec("counter", "serve_worker_heartbeat_misses_total",
                     (("worker", w),),
                     help="Heartbeat pings a worker failed to answer")
        )
    return specs


# ---------------------------------------------------------------------------
# Version counter: an mmap'd uint64 every process can read without IPC
# ---------------------------------------------------------------------------
class VersionCounter:
    """8 bytes of shared truth: which snapshot version is current.

    The file is created atomically (tmp + rename); the value is a single
    aligned little-endian uint64 store through ``mmap``, which x86-64 and
    aarch64 both make atomic for readers on the same page.  Workers poll
    it between requests — no pipes, no locks, no syscalls on the read
    path once mapped.
    """

    def __init__(self, path: str, create: bool = False) -> None:
        self.path = path
        if create and not os.path.exists(path):
            tmp = f"{path}.tmp.{os.getpid()}"
            with open(tmp, "wb") as f:
                f.write(struct.pack("<Q", 0))
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, path)
        self._f = open(path, "r+b" if create else "rb")
        access = mmap.ACCESS_WRITE if create else mmap.ACCESS_READ
        self._mm = mmap.mmap(self._f.fileno(), 8, access=access)

    def get(self) -> int:
        return struct.unpack_from("<Q", self._mm, 0)[0]

    def set(self, version: int) -> None:
        struct.pack_into("<Q", self._mm, 0, version)
        self._mm.flush()

    def close(self) -> None:
        self._mm.close()
        self._f.close()


# ---------------------------------------------------------------------------
# Append-only update log (durability rider)
# ---------------------------------------------------------------------------
def append_log_record(
    path: str, version: int, locations: dict[str, Point]
) -> None:
    """Append one refresh batch: ``uint32 len | uint32 crc | json``.

    Appended *before* the snapshot for that version is built, so a crash
    at any later point leaves a replayable record.  A crash mid-append
    leaves a torn tail that :func:`read_log_records` detects by length or
    CRC and discards.
    """
    payload = json.dumps(
        {
            "version": version,
            "locations": {a: [p.lng, p.lat] for a, p in locations.items()},
        },
        separators=(",", ":"),
    ).encode("utf-8")
    record = (
        struct.pack("<II", len(payload), zlib.crc32(payload) & 0xFFFFFFFF)
        + payload
    )
    with open(path, "ab") as f:
        f.write(record)
        f.flush()
        os.fsync(f.fileno())


def read_log_records(path: str) -> list[tuple[int, dict[str, Point]]]:
    """All intact ``(version, locations)`` records; stops at a torn tail."""
    out: list[tuple[int, dict[str, Point]]] = []
    if not os.path.exists(path):
        return out
    with open(path, "rb") as f:
        data = f.read()
    pos = 0
    while pos + 8 <= len(data):
        length, crc = struct.unpack_from("<II", data, pos)
        start = pos + 8
        end = start + length
        if end > len(data):
            break  # torn tail: writer died mid-append
        payload = data[start:end]
        if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
            break
        record = json.loads(payload.decode("utf-8"))
        out.append(
            (
                record["version"],
                {
                    a: Point(lng, lat)
                    for a, (lng, lat) in record["locations"].items()
                },
            )
        )
        pos = end
    return out


# ---------------------------------------------------------------------------
# Snapshot publisher (writer side)
# ---------------------------------------------------------------------------
class SnapshotPublisher:
    """Owns a snapshot directory: versioned files, log, version counter."""

    def __init__(self, directory: str, keep: int = 3) -> None:
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.keep = max(1, keep)
        self._counter: VersionCounter | None = None
        self._reader: VersionCounter | None = None

    # -- paths ----------------------------------------------------------
    def path_for(self, version: int) -> str:
        return os.path.join(self.directory, f"snapshot-{version:08d}.rsnap")

    @property
    def log_path(self) -> str:
        return os.path.join(self.directory, _LOG)

    @property
    def counter_path(self) -> str:
        return os.path.join(self.directory, _CURRENT)

    def snapshot_versions(self) -> list[int]:
        versions = []
        for name in os.listdir(self.directory):
            match = _SNAPSHOT_RE.match(name)
            if match:
                versions.append(int(match.group(1)))
        return sorted(versions)

    # -- writer side ----------------------------------------------------
    def _writer_counter(self) -> VersionCounter:
        if self._counter is None:
            self._counter = VersionCounter(self.counter_path, create=True)
        return self._counter

    def log_update(self, locations: dict[str, Point], version: int) -> None:
        """Durable intent record for the refresh producing ``version``."""
        append_log_record(self.log_path, version, locations)

    def publish(
        self,
        store: ShardedLocationStore,
        confidences: dict[str, float] | None = None,
    ) -> SnapshotInfo:
        """Write the store's current generation and flip the counter.

        The counter flips only after the snapshot file is fully on disk
        under its final name, so a reader that observes version *v* can
        always map an intact ``snapshot-v``.
        """
        info = write_snapshot(self.path_for(store.version), store, confidences)
        self._writer_counter().set(info.version)
        self._prune()
        return info

    def refresh(
        self,
        store: ShardedLocationStore,
        locations: dict[str, Point],
        confidences: dict[str, float] | None = None,
    ) -> SnapshotInfo:
        """Log → swap → publish: the full durable refresh protocol."""
        self.log_update(locations, store.version + 1)
        store.update(locations)
        return self.publish(store, confidences)

    def _prune(self) -> None:
        versions = self.snapshot_versions()
        current = self.current_version()
        for version in versions[: -self.keep]:
            if version != current:
                try:
                    os.unlink(self.path_for(version))
                except OSError:
                    pass

    def close(self) -> None:
        if self._counter is not None:
            self._counter.close()
            self._counter = None
        if self._reader is not None:
            self._reader.close()
            self._reader = None

    # -- reader side ----------------------------------------------------
    def current_version(self) -> int:
        """The published version, 0 if nothing was ever published.

        The read-only :class:`VersionCounter` is opened once and kept
        mapped — workers and the router poll this per request, and the
        whole point of the mmap'd counter is zero syscalls on that path.
        The CURRENT file is created atomically exactly once and then
        only ever updated in place, so a mapping never goes stale.
        """
        if self._counter is not None:
            return self._counter.get()
        if self._reader is None:
            try:
                self._reader = VersionCounter(self.counter_path)
            except (FileNotFoundError, ValueError):
                return 0  # not published yet; retry the open next call
        return self._reader.get()

    def current_path(self) -> str | None:
        version = self.current_version()
        return self.path_for(version) if version else None

    # -- crash recovery -------------------------------------------------
    @staticmethod
    def recover(
        directory: str,
    ) -> tuple[ColumnarSnapshot, list[dict[str, Point]]]:
        """Newest CRC-intact snapshot + the log suffix to replay onto it.

        Walks candidate snapshot files newest-first, fully verifying
        checksums — a file a dying writer managed to rename but not
        complete (non-atomic filesystem, truncated flush) is skipped, not
        served.  Raises :class:`FileNotFoundError` when no intact
        snapshot exists.
        """
        publisher = SnapshotPublisher(directory)
        snap: ColumnarSnapshot | None = None
        for version in reversed(publisher.snapshot_versions()):
            try:
                snap = load_snapshot(publisher.path_for(version), verify=True)
                break
            except (SnapshotCorruptError, OSError):
                continue
        if snap is None:
            raise FileNotFoundError(
                f"no intact snapshot to restore from in {directory!r}"
            )
        replay = [
            locations
            for version, locations in read_log_records(publisher.log_path)
            if version > snap.version
        ]
        return snap, replay


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------
def _worker_main(
    conn,
    directory: str,
    config: ServerConfig,
    worker_id: int,
    obs_dir: str | None = None,
    trace: bool = False,
) -> None:  # pragma: no cover - exercised in subprocesses
    """One worker: mmap current snapshot, serve query batches off a pipe."""
    # A fork-context worker inherits the parent's global tracer; writing
    # through its handle would interleave with the router's span file, so
    # drop it before (optionally) opening this worker's own sink.
    disable_tracing()
    if trace and obs_dir:
        configure_tracing(
            os.path.join(obs_dir, f"trace-worker-{worker_id}.jsonl")
        )
    plane: MetricsPlane | None = None
    slots: dict[str, Any] = {}
    if obs_dir:
        try:
            os.makedirs(obs_dir, exist_ok=True)
            plane = MetricsPlane.create(
                os.path.join(obs_dir, f"metrics-worker-{worker_id}.shm"),
                worker_plane_specs(worker_id),
                meta={"kind": "worker", "worker": worker_id},
            )
        except OSError:
            plane = None  # telemetry must never take the worker down
    if plane is not None:
        w = str(worker_id)
        slots = {
            "status": {s: plane.slot("serve_worker_requests_total",
                                     status=s, worker=w)
                       for s in _WORKER_STATUSES},
            "latency": {c: plane.slot("serve_worker_request_latency_seconds",
                                      cache=c, worker=w)
                        for c in _CACHE_STATES},
            "cache": {e: plane.slot("serve_worker_cache_events_total",
                                    event=e, worker=w)
                      for e in ("hit", "miss")},
            "hit_ratio": plane.slot("serve_worker_cache_hit_ratio", worker=w),
            "loads": plane.slot("serve_worker_snapshot_loads_total", worker=w),
            "load_hist": plane.slot("serve_worker_snapshot_load_seconds",
                                    worker=w),
            "version": plane.slot("serve_worker_snapshot_version", worker=w),
            "lag": plane.slot("serve_worker_snapshot_version_lag", worker=w),
            "prov": {r: plane.slot("provenance_records_total",
                                   result=r, worker=w)
                     for r in ("kept", "sampled_out")},
        }

    publisher = SnapshotPublisher(directory)
    snap: ColumnarSnapshot | None = None
    cache = (
        TTLLRUCache(config.cache_capacity, config.cache_ttl_s)
        if config.cache_capacity > 0
        else None
    )
    load_seconds: list[float] = []
    n_requests = 0
    prev_cache = [0, 0]  # hits, misses already folded into the plane
    # Provenance is minted worker-side (the worker is where the answer is
    # actually resolved); the ring is persisted on snapshot rotation and at
    # shutdown so the router can merge `provenance-worker-*.jsonl` files
    # exactly like trace files.
    ring = ProvenanceRing(capacity=256, origin=f"w{worker_id}")
    prev_prov = [0.0, 0.0]  # kept, sampled_out already folded into the plane

    def persist_ring() -> None:
        if not obs_dir or len(ring) == 0:
            return
        try:
            ring.write_jsonl(
                os.path.join(obs_dir, f"provenance-worker-{worker_id}.jsonl")
            )
        except OSError:
            pass  # forensics must never take the worker down

    def publish_versions() -> None:
        if plane is None:
            return
        have = snap.version if snap is not None else 0
        plane.set(slots["version"], have)
        plane.set(slots["lag"],
                  max(0, publisher.current_version() - have))

    def ensure_snapshot() -> ColumnarSnapshot:
        nonlocal snap
        version = publisher.current_version()
        if snap is not None and snap.version == version:
            return snap
        for _ in range(5):
            version = publisher.current_version()
            path = publisher.path_for(version)
            t0 = time.perf_counter()
            try:
                fresh = load_snapshot(path)
            except (FileNotFoundError, SnapshotCorruptError):
                # Publisher replaced (and pruned) it mid-read; re-poll.
                time.sleep(0.005)
                continue
            dt = time.perf_counter() - t0
            load_seconds.append(dt)
            del load_seconds[:-256]
            if snap is not None:
                # Rotation boundary: flush provenance minted against the
                # outgoing snapshot before answers start citing the new one.
                persist_ring()
            snap = fresh
            if cache is not None:
                cache.clear()
            if plane is not None:
                plane.inc(slots["loads"])
                plane.observe(slots["load_hist"], dt)
                publish_versions()
            return snap
        raise FileNotFoundError(f"no loadable snapshot in {directory!r}")

    def record_rows(rows: list[tuple], elapsed: float,
                    trace_id: str = "") -> None:
        """Mint provenance and fold one answered sub-batch into the plane."""
        attach = exemplars_enabled()
        for row in rows:
            record = ring.mint(
                row[0],
                row[1],
                lng=row[2],
                lat=row[3],
                source=row[4] or "",
                confidence=row[5],
                cache_state=row[6] or "",
                snapshot_version=snap.version if snap is not None else None,
                trace_id=trace_id,
                error=row[7] or "",
            )
            if plane is not None:
                plane.inc(slots["status"][row[1]])
                if (row[1] == ServeStatus.OK.value
                        and row[6] in slots["latency"]):
                    exemplar = (
                        Exemplar.now(elapsed, trace_id=trace_id,
                                     provenance_key=record.key)
                        if attach else None
                    )
                    plane.observe(slots["latency"][row[6]], elapsed,
                                  exemplar=exemplar)
        if plane is None:
            return
        counts = ring.counts()
        d_kept = counts["kept"] - prev_prov[0]
        d_sampled = counts["sampled_out"] - prev_prov[1]
        if d_kept:
            plane.inc(slots["prov"]["kept"], d_kept)
        if d_sampled:
            plane.inc(slots["prov"]["sampled_out"], d_sampled)
        prev_prov[0], prev_prov[1] = counts["kept"], counts["sampled_out"]
        if cache is not None:
            stats = cache.stats()
            d_hits = stats.hits - prev_cache[0]
            d_misses = stats.misses - prev_cache[1]
            if d_hits:
                plane.inc(slots["cache"]["hit"], d_hits)
            if d_misses:
                plane.inc(slots["cache"]["miss"], d_misses)
            prev_cache[0], prev_cache[1] = stats.hits, stats.misses
            if stats.lookups:
                plane.set(slots["hit_ratio"], stats.hit_rate)

    def resolve(ids: list[str], deadline: float | None) -> list[tuple]:
        nonlocal n_requests
        n_requests += len(ids)
        if deadline is not None and time.time() >= deadline:
            return [
                (a, ServeStatus.TIMED_OUT.value, None, None, None, None, None,
                 "deadline exceeded before evaluation")
                for a in ids
            ]
        current = ensure_snapshot()
        out: list[tuple] = []
        misses: list[str] = []
        hits: dict[str, QueryResult] = {}
        if cache is not None:
            for a in ids:
                cached = cache.get(a)
                if cached is not None:
                    hits[a] = cached
                else:
                    misses.append(a)
        else:
            misses = list(ids)
        resolved = current.resolve_batch(list(dict.fromkeys(misses)))
        for a in ids:
            if a in hits:
                result = hits[a]
                state = "hit"
            else:
                value = resolved[a]
                if isinstance(value, UnknownAddressError):
                    out.append(
                        (a, ServeStatus.UNKNOWN_ADDRESS.value, None, None,
                         None, None, None, str(value))
                    )
                    continue
                result = value
                if cache is not None:
                    cache.put(a, result)
                    state = "miss"
                else:
                    state = "bypass"
            out.append(
                (a, ServeStatus.OK.value, result.location.lng,
                 result.location.lat, result.source.value,
                 result.confidence, state, None)
            )
        return out

    def handle_query(
        ids: list[str], deadline: float | None, traceparent: Any
    ) -> list[tuple]:
        """Resolve one sub-batch under a (possibly remote-parented) span."""
        t0 = time.perf_counter()
        parent = parse_traceparent(traceparent)
        # Re-stamp the router's head-sampling decision onto the worker
        # span: the tail sampler must see it even when it merges worker
        # files without the router's own trace file (post-mortem
        # obs-export of a crashed run).
        sampled = {"sampled": True} if parent is not None and parent.sampled else {}
        trace_id = parent.trace_id if parent is not None else ""
        try:
            # parent=None deliberately forces a root span: a request that
            # arrived without a traceparent starts its own trace.
            with span("serve.request", parent=parent, worker=worker_id,
                      n_ids=len(ids), pid=os.getpid(), **sampled) as sp:
                if sp is not None:
                    trace_id = sp.trace_id
                rows = resolve(ids, deadline)
        except Exception as exc:  # noqa: BLE001 — keep the worker alive
            rows = [
                (a, ServeStatus.ERROR.value, None, None, None, None, None,
                 f"{type(exc).__name__}: {exc}")
                for a in ids
            ]
        record_rows(rows, time.perf_counter() - t0, trace_id)
        return rows

    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                return
            kind = msg[0]
            if kind == "stop":
                return
            req_id = msg[1]
            try:
                if kind == "q":
                    payload: Any = handle_query(
                        msg[2], msg[3], msg[4] if len(msg) > 4 else None
                    )
                elif kind == "ping":
                    publish_versions()
                    payload = {
                        "pid": os.getpid(),
                        "worker_id": worker_id,
                        "version": snap.version if snap is not None else 0,
                    }
                elif kind == "stats":
                    payload = {
                        "pid": os.getpid(),
                        "worker_id": worker_id,
                        "version": snap.version if snap is not None else 0,
                        "n_requests": n_requests,
                        "snapshot_loads": len(load_seconds),
                        "load_seconds": list(load_seconds),
                        "cache": cache.stats().to_dict() if cache else None,
                    }
                else:
                    payload = RuntimeError(f"unknown message kind: {kind!r}")
            except Exception as exc:  # noqa: BLE001 — keep the worker alive
                payload = RuntimeError(f"{type(exc).__name__}: {exc}")
            try:
                conn.send(("r", req_id, payload))
            except (BrokenPipeError, OSError):
                return
    finally:
        # Every exit path — stop message, closed pipe, terminate-induced
        # EOF — flushes the span sink, persists the provenance ring, and
        # unmaps the plane, so short-lived workers never drop their final
        # spans or leave a torn seqlock.
        persist_ring()
        if plane is not None:
            plane.close()
        disable_tracing()


# ---------------------------------------------------------------------------
# Front end
# ---------------------------------------------------------------------------
class WorkerDiedError(RuntimeError):
    """The worker's pipe broke while a request was outstanding."""


class _Reply:
    __slots__ = ("event", "payload")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.payload: Any = None


class WorkerHandle:
    """One worker process: pipe, send lock, reply-matching reader thread.

    Requests are pipelined: any front-end thread may send (serialized by
    a lock), and a single reader thread matches replies to waiters by
    request id — no per-request connection, no head-of-line blocking on
    slow batch-mates from other threads.
    """

    def __init__(self, ctx, directory: str, config: ServerConfig,
                 worker_id: int, obs_dir: str | None = None,
                 trace: bool = False) -> None:
        self.worker_id = worker_id
        parent, child = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=_worker_main,
            args=(child, directory, config, worker_id, obs_dir, trace),
            name=f"serve-mp-worker-{worker_id}",
            daemon=True,
        )
        self.process.start()
        child.close()
        self._conn = parent
        self._send_lock = threading.Lock()
        self._pending_lock = threading.Lock()
        self._pending: dict[int, _Reply] = {}
        self._req_ids = itertools.count()
        self._dead = False
        self._reader = threading.Thread(
            target=self._read_loop, name=f"serve-mp-reader-{worker_id}",
            daemon=True,
        )
        self._reader.start()

    def _read_loop(self) -> None:
        try:
            while True:
                msg = self._conn.recv()
                if msg[0] != "r":
                    continue
                with self._pending_lock:
                    reply = self._pending.pop(msg[1], None)
                if reply is not None:
                    reply.payload = msg[2]
                    reply.event.set()
        except (EOFError, OSError):
            pass
        self._dead = True
        with self._pending_lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for reply in pending:
            reply.event.set()  # payload stays None: caller sees the death

    @property
    def alive(self) -> bool:
        return not self._dead and self.process.is_alive()

    def send(self, kind: str, *args: Any) -> _Reply:
        """Dispatch one message; raises :class:`WorkerDiedError` if dead."""
        if self._dead:
            raise WorkerDiedError(f"worker {self.worker_id} is dead")
        req_id = next(self._req_ids)
        reply = _Reply()
        with self._pending_lock:
            self._pending[req_id] = reply
        try:
            with self._send_lock:
                self._conn.send((kind, req_id, *args))
        except (BrokenPipeError, OSError) as exc:
            self._dead = True
            with self._pending_lock:
                self._pending.pop(req_id, None)
            raise WorkerDiedError(
                f"worker {self.worker_id} pipe broke: {exc}"
            ) from exc
        return reply

    def wait(self, reply: _Reply, timeout_s: float | None) -> Any:
        """The reply payload, or ``None`` on timeout / worker death."""
        if not reply.event.wait(timeout_s):
            return None
        return reply.payload

    def stop(self, timeout_s: float = 1.0) -> None:
        try:
            with self._send_lock:
                self._conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout_s)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout_s)
        self._conn.close()


class _SubmittedQuery:
    """Future-shaped handle so open-loop load generation works unchanged."""

    __slots__ = ("_future",)

    def __init__(self, future: Future) -> None:
        self._future = future

    def done(self) -> bool:
        return self._future.done()

    def result(self, grace_s: float | None = None) -> ServeResponse:
        return self._future.result()


class ProcessRouter:
    """Front end of the worker pool: routing, retries, health, refresh.

    Routing is two-level and stable: address → shard comes from the
    snapshot's persisted grouping (or ``_stable_hash(id) % n_shards`` for
    ids the snapshot doesn't know), shard → worker is ``shard %
    n_workers``.  Changing the worker count therefore never moves an
    address between *shards* — a resharded snapshot stays diffable — it
    only remaps whole shards onto the new pool.
    """

    def __init__(
        self,
        snapshot_dir: str,
        n_workers: int = 2,
        config: ServerConfig | None = None,
        heartbeat_interval_s: float = 0.5,
        start_method: str | None = None,
        obs_dir: str | None = None,
        trace_workers: bool | None = None,
        trace_sample_every: int = 1,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1: {n_workers}")
        self.config = config or ServerConfig()
        self.n_workers = n_workers
        self.publisher = SnapshotPublisher(snapshot_dir)
        self.heartbeat_interval_s = heartbeat_interval_s
        self.obs_dir = (
            os.fspath(obs_dir) if obs_dir
            else os.path.join(self.publisher.directory, _OBS_DIR)
        )
        os.makedirs(self.obs_dir, exist_ok=True)
        #: None → auto: trace workers iff the router process is tracing
        #: when :meth:`start` runs.
        self.trace_workers = trace_workers
        self.trace_sample_every = max(1, int(trace_sample_every))
        self._trace_seq = itertools.count()
        self._trace_workers_active = False
        self._ctx = get_context(start_method)
        self._workers: list[WorkerHandle | None] = [None] * n_workers
        self._workers_lock = threading.Lock()
        self._routing: ColumnarSnapshot | None = None
        self._routing_lock = threading.Lock()
        self._started = False
        self._stop_heartbeat = threading.Event()
        self._heartbeat: threading.Thread | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self.restarts = 0
        self.heartbeat_misses = 0
        self.health = RequestWindows()
        self._batcher = MicroBatcher(
            self._batch_resolve,
            max_batch=self.config.batch_max,
            max_wait_s=self.config.batch_window_s,
        )
        registry = get_registry()
        self._requests_total = registry.counter(
            "serve_requests_total", "Served requests by terminal status"
        )
        self._queue_depth = registry.gauge(
            "serve_queue_depth", "Requests waiting in the admission queue"
        )
        self._latency = registry.histogram(
            "serve_request_latency_seconds",
            "End-to-end request latency by cache outcome",
        )
        self._restarts_total = registry.counter(
            "serve_worker_restarts_total",
            "Worker processes restarted after death",
        )
        self._heartbeat_misses_total = registry.counter(
            "serve_worker_heartbeat_misses_total",
            "Heartbeat pings a worker failed to answer",
        )
        for i in range(n_workers):
            # Pre-seed at zero: the fail-closed SLO engine treats an
            # absent sample as a violation, and "no restarts yet" must
            # read as 0, not as missing data.
            self._restarts_total.inc(0, worker=str(i))
            self._heartbeat_misses_total.inc(0, worker=str(i))
        self._plane: MetricsPlane | None = None
        self._plane_slots: dict[str, Any] = {}
        self._open_plane()

    def _open_plane(self) -> None:
        """Map the router's own metrics plane (attaches across restarts)."""
        try:
            self._plane = MetricsPlane.create(
                os.path.join(self.obs_dir, "metrics-router.shm"),
                router_plane_specs(self.n_workers),
                meta={"kind": "router", "n_workers": self.n_workers},
            )
        except OSError:
            self._plane = None  # telemetry must never block serving
            self._plane_slots = {}
            return
        p = self._plane
        self._plane_slots = {
            "status": {s.value: p.slot("serve_requests_total", status=s.value)
                       for s in ServeStatus},
            "latency": {c: p.slot("serve_request_latency_seconds", cache=c)
                        for c in _CACHE_STATES},
            "depth": p.slot("serve_queue_depth"),
            "restarts": {i: p.slot("serve_worker_restarts_total",
                                   worker=str(i))
                         for i in range(self.n_workers)},
            "misses": {i: p.slot("serve_worker_heartbeat_misses_total",
                                 worker=str(i))
                       for i in range(self.n_workers)},
        }

    # -- lifecycle -------------------------------------------------------
    @classmethod
    def from_store(
        cls,
        store: ShardedLocationStore,
        snapshot_dir: str,
        n_workers: int = 2,
        config: ServerConfig | None = None,
        confidences: dict[str, float] | None = None,
        **kwargs: Any,
    ) -> "ProcessRouter":
        """Publish the store's current generation, then build a router."""
        SnapshotPublisher(snapshot_dir).publish(store, confidences)
        return cls(snapshot_dir, n_workers=n_workers, config=config, **kwargs)

    def start(self) -> "ProcessRouter":
        if self._started:
            raise RuntimeError("router already started")
        if self.publisher.current_version() == 0:
            raise FileNotFoundError(
                f"no published snapshot in {self.publisher.directory!r}; "
                "publish one first (SnapshotPublisher.publish / from_store)"
            )
        self._started = True
        if self._plane is None:
            self._open_plane()
        self._trace_workers_active = (
            self.trace_workers if self.trace_workers is not None
            else tracing_enabled()
        )
        self._ensure_routing()
        for i in range(self.n_workers):
            self._workers[i] = WorkerHandle(
                self._ctx, self.publisher.directory, self.config, i,
                obs_dir=self.obs_dir, trace=self._trace_workers_active,
            )
        self._heartbeat = threading.Thread(
            target=self._heartbeat_loop, name="serve-mp-heartbeat", daemon=True
        )
        self._heartbeat.start()
        return self

    def stop(self) -> None:
        if not self._started:
            return
        self._started = False
        self._stop_heartbeat.set()
        if self._heartbeat is not None:
            self._heartbeat.join(2.0)
            self._heartbeat = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        with self._workers_lock:
            workers, self._workers = self._workers, [None] * self.n_workers
        for worker in workers:
            if worker is not None:
                worker.stop()
        if self._plane is not None:
            self._plane.close()
            self._plane = None
            self._plane_slots = {}

    def __enter__(self) -> "ProcessRouter":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- routing ---------------------------------------------------------
    def _ensure_routing(self) -> ColumnarSnapshot:
        version = self.publisher.current_version()
        routing = self._routing
        if routing is not None and routing.version == version:
            return routing
        with self._routing_lock:
            routing = self._routing
            if routing is not None and routing.version == version:
                return routing
            path = self.publisher.current_path()
            assert path is not None
            self._routing = load_snapshot(path)
            return self._routing

    def shard_for(self, address_id: str) -> int:
        """Stable shard of an id (snapshot grouping, hash fallback)."""
        routing = self._ensure_routing()
        shards = routing.shards_for_ids([address_id])
        if shards[0] >= 0:
            return int(shards[0])
        return _stable_hash(address_id) % routing.n_shards

    def worker_for_shard(self, shard: int) -> int:
        return shard % self.n_workers

    def _worker(self, index: int) -> WorkerHandle:
        with self._workers_lock:
            worker = self._workers[index]
            if worker is not None and worker.alive:
                return worker
            if not self._started:
                raise RuntimeError("router is not running (call start())")
            if worker is not None:
                self.restarts += 1
                self._restarts_total.inc(worker=str(index))
                if self._plane is not None:
                    self._plane.inc(self._plane_slots["restarts"][index])
                # A dead worker is exactly the moment post-hoc forensics
                # need a black box: snapshot the ring plus the router's
                # current metric state before the restart papers over it.
                try:
                    registry_doc = self.metrics().to_dict()
                except Exception:  # noqa: BLE001 — forensics stay best-effort
                    registry_doc = None
                get_recorder().trigger(
                    "worker_crash",
                    context={"worker": index, "restarts": self.restarts},
                    registry_doc=registry_doc,
                )
                threading.Thread(
                    target=worker.stop, name="serve-mp-reap", daemon=True
                ).start()
            worker = WorkerHandle(
                self._ctx, self.publisher.directory, self.config, index,
                obs_dir=self.obs_dir, trace=self._trace_workers_active,
            )
            self._workers[index] = worker
            return worker

    # -- query path ------------------------------------------------------
    def _count(self, response: ServeResponse) -> None:
        status = response.status.value
        self._requests_total.inc(status=status)
        ok = response.status is ServeStatus.OK
        if ok and response.cache_state in _CACHE_STATES:
            self._latency.observe(response.latency_s,
                                  cache=response.cache_state)
        if self._plane is not None:
            self._plane.inc(self._plane_slots["status"][status])
            if ok and response.cache_state in _CACHE_STATES:
                self._plane.observe(
                    self._plane_slots["latency"][response.cache_state],
                    response.latency_s,
                )
        self.health.record(status, response.latency_s)

    def _set_depth(self, depth: int) -> None:
        self._queue_depth.set(depth)
        if self._plane is not None:
            self._plane.set(self._plane_slots["depth"], depth)
        self.health.note_queue_depth(depth)

    def _decode(
        self, row: tuple, t0: float
    ) -> ServeResponse:
        (address_id, status, lng, lat, source, confidence, cache_state,
         error) = row
        result = None
        if status == ServeStatus.OK.value:
            result = QueryResult(
                Point(lng, lat), QuerySource(source), confidence=confidence
            )
        return ServeResponse(
            address_id,
            ServeStatus(status),
            result,
            cache_state,
            time.monotonic() - t0,
            error=error,
        )

    def query_batch(
        self, address_ids: Sequence[str], timeout_s: float | None = None
    ) -> list[ServeResponse]:
        """Resolve a batch across the pool; one response per input id.

        Each worker gets the sub-batch of its shards; a dead worker is
        restarted and its sub-batch retried once within the deadline; a
        sub-batch that outlives the deadline comes back ``TIMED_OUT``.
        """
        if not self._started:
            raise RuntimeError("router is not running (call start())")
        timeout = (
            timeout_s if timeout_s is not None else self.config.default_timeout_s
        )
        t0 = time.monotonic()
        deadline_mono = t0 + timeout
        deadline_epoch = time.time() + timeout
        # Head sampling decision rides the traceparent to the workers;
        # the tail-based collector honors it (and always keeps slow or
        # errored traces regardless).
        sampled = (next(self._trace_seq) % self.trace_sample_every) == 0
        with span("serve.route", n_ids=len(address_ids),
                  sampled=sampled) as route_span:
            traceparent = (
                make_traceparent(route_span, sampled)
                if route_span is not None else None
            )
            routing = self._ensure_routing()
            shards = routing.shards_for_ids(list(address_ids))
            groups: dict[int, list[str]] = {}
            for address_id, shard in zip(address_ids, shards):
                if shard < 0:
                    shard = _stable_hash(address_id) % routing.n_shards
                groups.setdefault(
                    self.worker_for_shard(int(shard)), []
                ).append(address_id)
            with self._inflight_lock:
                self._inflight += len(groups)
                depth = self._inflight
            self._set_depth(depth)
            try:
                sent: list[tuple[int, list[str], Any]] = []
                for index, ids in groups.items():
                    sent.append((index, ids,
                                 self._dispatch(index, ids, deadline_epoch,
                                                traceparent)))
                by_id: dict[str, ServeResponse] = {}
                for index, ids, reply in sent:
                    rows = self._await_group(index, ids, reply, deadline_mono,
                                             deadline_epoch, traceparent)
                    for row in rows:
                        by_id[row[0]] = self._decode(row, t0)
                responses = [by_id[a] for a in address_ids]
            finally:
                with self._inflight_lock:
                    self._inflight -= len(groups)
                    depth = self._inflight
                self._set_depth(depth)
        for response in responses:
            self._count(response)
        return responses

    def _dispatch(
        self, index: int, ids: list[str], deadline_epoch: float,
        traceparent: str | None = None,
    ) -> Any:
        """Send a sub-batch; a reply handle, or an error marker row set."""
        try:
            return self._worker(index).send("q", ids, deadline_epoch,
                                            traceparent)
        except WorkerDiedError:
            return None

    def _await_group(
        self,
        index: int,
        ids: list[str],
        reply: Any,
        deadline_mono: float,
        deadline_epoch: float,
        traceparent: str | None = None,
    ) -> list[tuple]:
        """Wait a sub-batch out, retrying once through a fresh worker."""
        for attempt in range(2):
            if reply is not None:
                worker = self._workers[index]
                payload = (
                    worker.wait(reply, deadline_mono + _GRACE_S
                                - time.monotonic())
                    if worker is not None
                    else None
                )
                if payload is not None:
                    return payload
                if time.monotonic() >= deadline_mono:
                    return [
                        (a, ServeStatus.TIMED_OUT.value, None, None, None,
                         None, None, "deadline exceeded while waiting")
                        for a in ids
                    ]
            if attempt == 0:
                reply = self._dispatch(index, ids, deadline_epoch,
                                       traceparent)
        return [
            (a, ServeStatus.ERROR.value, None, None, None, None, None,
             f"worker {index} died and retry failed")
            for a in ids
        ]

    def _batch_resolve(self, address_ids: Sequence[str]) -> dict[str, Any]:
        responses = self.query_batch(list(address_ids))
        return {r.address_id: r for r in responses}

    def query(
        self, address_id: str, timeout_s: float | None = None
    ) -> ServeResponse:
        """Resolve one id; concurrent callers coalesce into pipe batches."""
        if timeout_s is not None and timeout_s != self.config.default_timeout_s:
            return self.query_batch([address_id], timeout_s)[0]
        wait = self.config.default_timeout_s * 2 + _GRACE_S
        try:
            return self._batcher.submit(address_id, timeout_s=wait)
        except TimeoutError:
            response = ServeResponse(
                address_id, ServeStatus.TIMED_OUT, None, None,
                self.config.default_timeout_s,
                error="batch result never arrived",
            )
            self._count(response)
            return response

    def submit(
        self, address_id: str, timeout_s: float | None = None
    ) -> _SubmittedQuery:
        """Async submit for open-loop load generation."""
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=max(8, self.config.queue_capacity),
                thread_name_prefix="serve-mp-submit",
            )
        return _SubmittedQuery(
            self._executor.submit(self.query, address_id, timeout_s)
        )

    def resolve(self, address_id: str) -> QueryResult:
        """Raise-on-miss resolution, the :class:`QueryRouter` contract.

        Re-raises ``UNKNOWN_ADDRESS`` responses as
        :class:`UnknownAddressError` — the typed miss crosses the process
        boundary as a status code and resurfaces as the same exception
        the in-process tier raises.
        """
        response = self.query(address_id)
        if response.status is ServeStatus.UNKNOWN_ADDRESS:
            raise UnknownAddressError(address_id)
        if response.result is None:
            raise RuntimeError(
                f"query failed: {response.status.value}"
                + (f" ({response.error})" if response.error else "")
            )
        return response.result

    # -- heartbeat -------------------------------------------------------
    def _note_heartbeat_miss(self, index: int) -> None:
        self.heartbeat_misses += 1
        self._heartbeat_misses_total.inc(worker=str(index))
        if self._plane is not None:
            self._plane.inc(self._plane_slots["misses"][index])

    def _heartbeat_loop(self) -> None:
        while not self._stop_heartbeat.wait(self.heartbeat_interval_s):
            for index in range(self.n_workers):
                if self._stop_heartbeat.is_set():
                    return
                try:
                    worker = self._worker(index)  # restarts dead workers
                    reply = worker.send("ping")
                    if worker.wait(reply, self.heartbeat_interval_s) is None:
                        self._note_heartbeat_miss(index)
                except (WorkerDiedError, RuntimeError):
                    self._note_heartbeat_miss(index)
                    continue  # next tick restarts it

    # -- fleet observability ---------------------------------------------
    def metrics(self, base: MetricsRegistry | None = None) -> MetricsRegistry:
        """Fleet-wide registry view merged from the shared-memory planes.

        Scrapes every ``metrics-*.shm`` plane under :attr:`obs_dir` — the
        router's own and one per worker — summing counters and histogram
        buckets and max-merging gauges.  The scrape path is zero-IPC:
        it only maps the plane files, never touches a worker pipe, so a
        wedged or freshly-killed worker's last published values are still
        collected.  Works before :meth:`start` and after :meth:`stop`
        (plane files outlive their writers).
        """
        return merged_registry(self.obs_dir, base=base)

    def fleet_verdict(self, slos: Sequence[SLO]) -> HealthReport:
        """SLO verdict over the merged fleet metrics (not the live
        windows — see :meth:`verdict` for those).

        Raises :class:`PlaneSchemaError` when :attr:`obs_dir` holds no
        plane files at all: a verdict computed over zero planes would
        vacuously pass every SLO, which is the opposite of what an
        operator pointing at the wrong directory needs to hear.
        """
        snapshots = scrape_planes(self.obs_dir)
        if not snapshots:
            raise PlaneSchemaError(
                f"no metrics planes (metrics-*.shm) found in "
                f"{self.obs_dir!r}; is the obs dir correct and has the "
                f"router been started?"
            )
        return evaluate_slos(merge_snapshots(snapshots).to_dict(),
                             list(slos), source="fleet")

    def trace_dump(
        self,
        out: str,
        p99_hint: float | None = None,
        include_router: bool = True,
    ) -> dict[str, Any]:
        """Merge router + per-worker span files into one sampled trace.

        Flushes the router's own sink first; workers flush per span, so
        their files are complete up to the last finished span even while
        the processes are alive.  Returns the collector's stats dict
        (see :func:`repro.obs.trace.merge_traces`).
        """
        flush_tracing()
        paths: list[str] = []
        if include_router:
            current = current_trace_path()
            if current is not None:
                paths.append(os.fspath(current))
        paths.extend(sorted(_glob.glob(
            os.path.join(self.obs_dir, "trace-worker-*.jsonl")
        )))
        return merge_traces(paths, out, p99_hint=p99_hint)

    def provenance_dump(
        self, out: str | None = None, include_local: bool = True
    ) -> tuple[list, dict[str, Any]]:
        """Merge per-worker provenance JSONL files (plus the router's own
        ring) into one newest-wins record list.

        Workers persist their rings on snapshot rotation and shutdown;
        this merges whatever has landed so far, torn tails tolerated.
        Returns ``(records, stats)`` — see
        :func:`repro.obs.provenance.merge_provenance`.
        """
        if include_local:
            local = get_provenance_ring()
            if len(local) > 0:
                try:
                    local.write_jsonl(
                        os.path.join(self.obs_dir, "provenance-router.jsonl")
                    )
                except OSError:
                    pass  # merge whatever the workers already persisted
        paths = sorted(_glob.glob(
            os.path.join(self.obs_dir, "provenance-*.jsonl")
        ))
        return merge_provenance(paths, out=out)

    # -- introspection ---------------------------------------------------
    def worker_stats(self, timeout_s: float = 1.0) -> list[dict[str, Any]]:
        out = []
        for index in range(self.n_workers):
            try:
                worker = self._worker(index)
                payload = worker.wait(worker.send("stats"), timeout_s)
            except (WorkerDiedError, RuntimeError):
                payload = None
            if isinstance(payload, dict):
                out.append(payload)
        return out

    def stats(self) -> dict[str, Any]:
        """Point-in-time view shaped like :meth:`QueryServer.stats`."""
        counts = {
            status.value: self._requests_total.value(status=status.value)
            for status in ServeStatus
        }
        workers = self.worker_stats()
        load_seconds = [
            s for w in workers for s in w.get("load_seconds", [])
        ]
        load_seconds.sort()

        def pct(q: float) -> float:
            if not load_seconds:
                return 0.0
            rank = max(1, int(round(q / 100.0 * len(load_seconds))))
            return load_seconds[min(rank, len(load_seconds)) - 1]

        return {
            "requests_by_status": counts,
            "queue_depth": self._inflight,
            "queue_capacity": self.config.queue_capacity,
            "n_workers": self.n_workers,
            "worker_restarts": self.restarts,
            "heartbeat_misses": self.heartbeat_misses,
            "obs_dir": self.obs_dir,
            "store_version": self.publisher.current_version(),
            "snapshot_load_ms": {
                "count": len(load_seconds),
                "p50": pct(50.0) * 1e3,
                "p95": pct(95.0) * 1e3,
                "max": (load_seconds[-1] * 1e3) if load_seconds else 0.0,
            },
            "workers": workers,
            "batch": self._batcher.stats().to_dict(),
        }

    def verdict(self, slos: list[SLO]) -> HealthReport:
        return self.health.verdict(slos)


__all__ = [
    "ProcessRouter",
    "SnapshotPublisher",
    "VersionCounter",
    "WorkerDiedError",
    "WorkerHandle",
    "append_log_record",
    "read_log_records",
    "router_plane_specs",
    "worker_plane_specs",
]
