"""Live model scoring behind the micro-batcher (the serving model tier).

The table-backed store answers from the last offline refresh.  This tier
instead answers *example-backed* addresses by running LocMatcher right in
the serving path: the micro-batcher coalesces a burst of cold cache
misses into one key list, and :class:`ModelScoringTier` scores every
example-backed id in that list with a single padded, masked
``scores_batch`` forward pass (the JIT-compiled batched path in
:mod:`repro.core.locmatcher`).  Ids without a feature example fall back
to the store's usual address -> building -> geocode chain, so one batch
can mix both kinds and every key still gets an answer.

This is how the batched-inference throughput (paper Figure 13) becomes an
online capability rather than only an offline refresh speedup.
"""

from __future__ import annotations

import threading
import zlib
from typing import Sequence

from repro.apps.store import QueryResult, QuerySource, UnknownAddressError
from repro.obs import get_registry
from repro.obs.drift import pool_fingerprint
from repro.obs.provenance import fingerprint_digest, put_evidence
from repro.serve.shard import ShardedLocationStore

#: Evidence lists are bounded so a pathological example cannot bloat a
#: provenance record past its "compact" contract.
_MAX_EVIDENCE_CANDIDATES = 32


class ModelScoringTier:
    """Batched LocMatcher scoring with store fallback for non-scorable ids.

    Drop-in for the micro-batcher's ``batch_fn`` slot: takes a
    deduplicated key list, returns ``key -> QueryResult`` (or an
    :class:`UnknownAddressError` value for bad ids, never a raise).

    Every scored id also publishes its *evidence* — per-candidate scores
    and ranks, the contributing stay evidence aggregated per candidate,
    and the pool/model fingerprint digests — into the provenance
    side-channel, where the serving loop folds it into the
    :class:`~repro.obs.provenance.ProvenanceRecord` it mints.
    """

    def __init__(self, pipeline, store: ShardedLocationStore) -> None:
        self.pipeline = pipeline
        self.store = store
        registry = get_registry()
        self._scored = registry.counter(
            "serve_model_scored_total", "Addresses answered by live model scoring"
        )
        self._fallback = registry.counter(
            "serve_model_fallback_total",
            "Batch keys without an example, answered by the store chain",
        )
        self._fp_lock = threading.Lock()
        self._pool_fp: str | None = None
        self._model_fp: str | None = None

    # ------------------------------------------------------------------
    # Provenance evidence
    # ------------------------------------------------------------------
    def _fingerprints(self) -> tuple[str, str]:
        """Cached (pool, model) fingerprint digests for this pipeline.

        The pool digest uses the real drift fingerprint (cheap: one pass
        over the pool).  The model digest hashes the matcher's identity —
        selector class + example-id set — rather than re-scoring every
        example on the serve path.
        """
        with self._fp_lock:
            if self._pool_fp is None:
                extractor = self.pipeline.extractor
                pool = getattr(extractor, "pool", None)
                profiles = getattr(extractor, "profiles", None)
                try:
                    self._pool_fp = fingerprint_digest(
                        pool_fingerprint(pool, profiles=profiles)
                    ) if pool is not None else ""
                except Exception:  # noqa: BLE001 — evidence must not fail serving
                    self._pool_fp = ""
                examples = self.pipeline.examples
                ids_crc = zlib.crc32(
                    "\x00".join(sorted(str(k) for k in examples)).encode("utf-8")
                )
                self._model_fp = fingerprint_digest(
                    {
                        "kind": "matcher",
                        "selector": type(self.pipeline.selector).__name__,
                        "n_examples": len(examples),
                        "ids_crc": ids_crc,
                    }
                )
            return self._pool_fp or "", self._model_fp or ""

    def _publish_evidence(self, address_id, example, scores) -> None:
        extractor = self.pipeline.extractor
        pool = getattr(extractor, "pool", None)
        profiles = getattr(extractor, "profiles", None) or {}
        cids = list(example.candidate_ids)[:_MAX_EVIDENCE_CANDIDATES]
        if scores is None:
            score_of = [0.0] * len(cids)
        else:
            score_of = [float(scores[i]) for i in range(len(cids))]
        order = sorted(
            range(len(cids)), key=lambda i: score_of[i], reverse=True
        )
        rank_of = {i: rank + 1 for rank, i in enumerate(order)}
        candidates = []
        stays = []
        for i, cid in enumerate(cids):
            cand = pool.by_id.get(cid) if pool is not None else None
            weight = float(cand.weight) if cand is not None else 0.0
            candidates.append(
                {
                    "candidate_id": cid,
                    "score": score_of[i],
                    "rank": rank_of[i],
                    "weight": weight,
                    "lng": float(cand.lng) if cand is not None else 0.0,
                    "lat": float(cand.lat) if cand is not None else 0.0,
                }
            )
            profile = profiles.get(cid)
            if profile is not None:
                stays.append(
                    {
                        "candidate_id": cid,
                        "weight": weight,
                        "avg_duration_s": float(profile.avg_duration_s),
                        "n_couriers": int(profile.n_couriers),
                    }
                )
        pool_fp, model_fp = self._fingerprints()
        put_evidence(
            address_id,
            {
                "candidates": candidates,
                "stays": stays,
                "pool_fingerprint": pool_fp,
                "model_fingerprint": model_fp,
            },
        )

    def query_ids_batch(
        self, address_ids: Sequence[str]
    ) -> dict[str, QueryResult | UnknownAddressError]:
        """Resolve a batch: one model forward for scorable ids, store rest."""
        examples = self.pipeline.examples
        scorable = [a for a in address_ids if a in examples]
        rest = [a for a in address_ids if a not in examples]
        out: dict[str, QueryResult | UnknownAddressError] = {}
        if scorable:
            batch = [examples[a] for a in scorable]
            selector = self.pipeline.selector
            rows: list = [None] * len(batch)
            if hasattr(selector, "scores_batch"):
                # Model path: one padded forward pass; rows are softmax
                # probabilities, so the winner's mass is the confidence.
                score_rows = selector.scores_batch(batch)
                rows = list(score_rows)
                indices = [int(row.argmax()) for row in score_rows]
                confidences: list[float | None] = [
                    float(row[i]) for row, i in zip(score_rows, indices)
                ]
            elif hasattr(selector, "predict_index_batch"):
                indices = selector.predict_index_batch(batch)
                confidences = [None] * len(batch)
            else:  # heuristic selectors: no batch API, score one by one
                indices = [selector.predict_index(e) for e in batch]
                confidences = [None] * len(batch)
            for address_id, example, index, confidence, row in zip(
                scorable, batch, indices, confidences, rows
            ):
                point = self.pipeline.extractor.candidate_point(
                    example.candidate_ids[index]
                )
                out[address_id] = QueryResult(
                    point, QuerySource.MODEL, confidence=confidence
                )
                self._publish_evidence(address_id, example, row)
            self._scored.inc(len(scorable))
        if rest:
            out.update(self.store.query_ids_batch(list(rest)))
            self._fallback.inc(len(rest))
        return out
