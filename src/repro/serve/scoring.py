"""Live model scoring behind the micro-batcher (the serving model tier).

The table-backed store answers from the last offline refresh.  This tier
instead answers *example-backed* addresses by running LocMatcher right in
the serving path: the micro-batcher coalesces a burst of cold cache
misses into one key list, and :class:`ModelScoringTier` scores every
example-backed id in that list with a single padded, masked
``scores_batch`` forward pass (the JIT-compiled batched path in
:mod:`repro.core.locmatcher`).  Ids without a feature example fall back
to the store's usual address -> building -> geocode chain, so one batch
can mix both kinds and every key still gets an answer.

This is how the batched-inference throughput (paper Figure 13) becomes an
online capability rather than only an offline refresh speedup.
"""

from __future__ import annotations

from typing import Sequence

from repro.apps.store import QueryResult, QuerySource, UnknownAddressError
from repro.obs import get_registry
from repro.serve.shard import ShardedLocationStore


class ModelScoringTier:
    """Batched LocMatcher scoring with store fallback for non-scorable ids.

    Drop-in for the micro-batcher's ``batch_fn`` slot: takes a
    deduplicated key list, returns ``key -> QueryResult`` (or an
    :class:`UnknownAddressError` value for bad ids, never a raise).
    """

    def __init__(self, pipeline, store: ShardedLocationStore) -> None:
        self.pipeline = pipeline
        self.store = store
        registry = get_registry()
        self._scored = registry.counter(
            "serve_model_scored_total", "Addresses answered by live model scoring"
        )
        self._fallback = registry.counter(
            "serve_model_fallback_total",
            "Batch keys without an example, answered by the store chain",
        )

    def query_ids_batch(
        self, address_ids: Sequence[str]
    ) -> dict[str, QueryResult | UnknownAddressError]:
        """Resolve a batch: one model forward for scorable ids, store rest."""
        examples = self.pipeline.examples
        scorable = [a for a in address_ids if a in examples]
        rest = [a for a in address_ids if a not in examples]
        out: dict[str, QueryResult | UnknownAddressError] = {}
        if scorable:
            batch = [examples[a] for a in scorable]
            selector = self.pipeline.selector
            if hasattr(selector, "scores_batch"):
                # Model path: one padded forward pass; rows are softmax
                # probabilities, so the winner's mass is the confidence.
                score_rows = selector.scores_batch(batch)
                indices = [int(row.argmax()) for row in score_rows]
                confidences: list[float | None] = [
                    float(row[i]) for row, i in zip(score_rows, indices)
                ]
            elif hasattr(selector, "predict_index_batch"):
                indices = selector.predict_index_batch(batch)
                confidences = [None] * len(batch)
            else:  # heuristic selectors: no batch API, score one by one
                indices = [selector.predict_index(e) for e in batch]
                confidences = [None] * len(batch)
            for address_id, example, index, confidence in zip(
                scorable, batch, indices, confidences
            ):
                point = self.pipeline.extractor.candidate_point(
                    example.candidate_ids[index]
                )
                out[address_id] = QueryResult(
                    point, QuerySource.MODEL, confidence=confidence
                )
            self._scored.inc(len(scorable))
        if rest:
            out.update(self.store.query_ids_batch(list(rest)))
            self._fallback.inc(len(rest))
        return out
