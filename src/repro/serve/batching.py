"""Micro-batching: coalesce concurrent cold misses into one evaluation.

When a burst of queries misses the cache at the same moment (a refresh
just cleared it, or a flash of traffic hits cold addresses), each miss
individually walking the fallback chain wastes work — and duplicate keys
in the burst waste the most.  The :class:`MicroBatcher` holds the first
arrival for a tiny window (``max_wait_s``), lets concurrent arrivals pile
onto the same batch, deduplicates keys, and evaluates the whole batch in
one call to ``batch_fn`` — for the serving tier that is
``ShardedLocationStore.query_ids_batch``, one pass over one snapshot.

Leadership is cooperative: the first thread into an empty batch becomes
the leader, waits out the window (or until the batch fills), drains, and
evaluates; followers just park on a per-key event.  No dedicated batching
thread exists, so an idle batcher costs nothing.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Sequence


@dataclass(frozen=True)
class BatchStats:
    """How much coalescing actually happened."""

    batches: int
    submitted: int
    coalesced: int
    largest_batch: int

    @property
    def mean_batch_size(self) -> float:
        return (self.submitted - self.coalesced) / self.batches if self.batches else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "batches": self.batches,
            "submitted": self.submitted,
            "coalesced": self.coalesced,
            "largest_batch": self.largest_batch,
            "mean_batch_size": self.mean_batch_size,
        }


class _Waiter:
    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: Any = None
        self.error: BaseException | None = None


class MicroBatcher:
    """Batches concurrent ``submit(key)`` calls into ``batch_fn(keys)``.

    ``batch_fn`` receives the deduplicated key list and returns a mapping
    ``key -> value``.  A value that is itself a ``BaseException`` instance
    is *raised* in the submitting thread — that is how per-key failures
    (e.g. an unknown address id) travel through a batch without failing
    its batch-mates.  If ``batch_fn`` raises, every waiter of that batch
    re-raises the same exception.
    """

    def __init__(
        self,
        batch_fn: Callable[[Sequence[Hashable]], dict[Hashable, Any]],
        max_batch: int = 32,
        max_wait_s: float = 0.002,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1: {max_batch}")
        if max_wait_s < 0:
            raise ValueError(f"max_wait_s must be >= 0: {max_wait_s}")
        self.batch_fn = batch_fn
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self._clock = clock
        self._cond = threading.Condition()
        self._pending: dict[Hashable, _Waiter] = {}
        self._leader_active = False
        self._batches = 0
        self._submitted = 0
        self._coalesced = 0
        self._largest_batch = 0

    def submit(self, key: Hashable, timeout_s: float | None = None) -> Any:
        """Resolve ``key`` through the current (or a fresh) micro-batch.

        ``timeout_s`` bounds the wait on the batch outcome (followers of
        a leader whose ``batch_fn`` stalls — e.g. a remote worker that
        died mid-evaluation — get a :class:`TimeoutError` instead of
        parking forever); ``None`` waits indefinitely, the in-process
        behavior where ``batch_fn`` cannot outlive its caller.
        """
        with self._cond:
            self._submitted += 1
            waiter = self._pending.get(key)
            if waiter is not None:
                self._coalesced += 1
            else:
                waiter = _Waiter()
                self._pending[key] = waiter
                if len(self._pending) >= self.max_batch:
                    self._cond.notify_all()
            lead = not self._leader_active
            if lead:
                self._leader_active = True
        if lead:
            self._lead_batch()
        if not waiter.event.wait(timeout_s):
            raise TimeoutError(f"micro-batch result for {key!r} not ready "
                               f"within {timeout_s}s")
        if waiter.error is not None:
            raise waiter.error
        return waiter.value

    def _lead_batch(self) -> None:
        deadline = self._clock() + self.max_wait_s
        with self._cond:
            while len(self._pending) < self.max_batch:
                remaining = deadline - self._clock()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
            batch = self._pending
            self._pending = {}
            self._leader_active = False
            self._batches += 1
            self._largest_batch = max(self._largest_batch, len(batch))
        keys = list(batch)
        try:
            results = self.batch_fn(keys)
        except BaseException as exc:  # noqa: BLE001 — fan the failure out
            for waiter in batch.values():
                waiter.error = exc
                waiter.event.set()
            return
        for key, waiter in batch.items():
            if key not in results:
                waiter.error = KeyError(key)
            else:
                value = results[key]
                if isinstance(value, BaseException):
                    waiter.error = value
                else:
                    waiter.value = value
            waiter.event.set()

    def stats(self) -> BatchStats:
        with self._cond:
            return BatchStats(
                batches=self._batches,
                submitted=self._submitted,
                coalesced=self._coalesced,
                largest_batch=self._largest_batch,
            )
