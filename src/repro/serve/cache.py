"""LRU + TTL result cache for the serving tier.

Popular addresses (office towers, lockers, campus gates) dominate online
query traffic, and their answers only change at refresh time — a small
recency cache in front of the sharded store absorbs that head of the
distribution.  Entries age out on a TTL so a swapped-in refresh becomes
visible within ``ttl_s`` even for cache-hot addresses, and the server can
call :meth:`TTLLRUCache.clear` on refresh for immediate visibility.

The cache is a plain ``OrderedDict`` under one mutex with hit / miss /
eviction / expiration counters; :meth:`stats` snapshots them for the
metrics exporter and the load-test report.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable


@dataclass(frozen=True)
class CacheStats:
    """Counter snapshot; ``hit_rate`` is over lookups since creation."""

    hits: int
    misses: int
    evictions: int
    expirations: int
    size: int
    capacity: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "size": self.size,
            "capacity": self.capacity,
            "hit_rate": self.hit_rate,
        }


class TTLLRUCache:
    """Bounded LRU cache whose entries also expire after ``ttl_s``.

    ``clock`` is injectable so TTL behavior is testable without sleeping.
    """

    def __init__(
        self,
        capacity: int = 1024,
        ttl_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        if ttl_s <= 0:
            raise ValueError(f"ttl_s must be > 0: {ttl_s}")
        self.capacity = capacity
        self.ttl_s = ttl_s
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: OrderedDict[Hashable, tuple[Any, float]] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._expirations = 0

    def get(self, key: Hashable) -> Any | None:
        """The cached value, or ``None`` on a miss / expired entry."""
        now = self._clock()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            value, expires_at = entry
            if now >= expires_at:
                del self._entries[key]
                self._expirations += 1
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        expires_at = self._clock() + self.ttl_s
        with self._lock:
            if key in self._entries:
                self._entries[key] = (value, expires_at)
                self._entries.move_to_end(key)
                return
            if len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
            self._entries[key] = (value, expires_at)

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; returns whether it was present."""
        with self._lock:
            return self._entries.pop(key, None) is not None

    def clear(self) -> int:
        """Drop every entry (refresh visibility); returns entries dropped."""
        with self._lock:
            n = len(self._entries)
            self._entries.clear()
            return n

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                expirations=self._expirations,
                size=len(self._entries),
                capacity=self.capacity,
            )
