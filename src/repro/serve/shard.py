"""Sharded, copy-on-write delivery-location store for online serving.

The deployed system (Figure 14) answers location queries for a whole
city's worth of addresses; one flat dict per process stops being a
sensible unit of refresh and capacity planning long before that.  This
module partitions the address-level table into N shards under a pluggable
:class:`ShardStrategy` — address-id hash by default, geohash-prefix of the
geocode for spatial locality — while keeping the building-level fallback
*global*, because the "most used location in this building" vote must run
over every address of the building regardless of which shard it landed in.

Refresh never mutates live state.  A refresh builds a complete new
:class:`ShardSnapshot` off to the side and then flips one reference; a
concurrent reader grabbed the snapshot reference once at query start, so
it either sees the whole old world or the whole new world.  Readers take
no lock at all — only writers serialize (on a writer-only mutex), which
is what makes ``refresh()`` invisible to the query path.
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

import numpy as np

from repro.apps.store import (
    QueryResult,
    QuerySource,
    UnknownAddressError,
    aggregate_building_locations,
)
from repro.geo import Point
from repro.geo.geohash import GeohashSpatialIndex, geohash_encode
from repro.trajectory import Address


def _stable_hash(text: str) -> int:
    """Process-independent hash (builtin ``hash`` is salted per run).

    This function is a compatibility surface, not an implementation
    detail: shard assignment is ``_stable_hash(key) % n_shards``, the
    multi-process router derives a worker from the *shard* (never from a
    worker-count-sized rehash), and columnar snapshot files persist
    row-to-shard grouping built from it.  Changing the hash (or mixing
    the worker count into it) would silently reshuffle every persisted
    snapshot, so its outputs are pinned by a regression test
    (``tests/serve/test_shard.py``).
    """
    return zlib.crc32(text.encode("utf-8"))


class ShardStrategy:
    """Maps an address to a shard index in ``[0, n_shards)``."""

    def __init__(self, n_shards: int) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1: {n_shards}")
        self.n_shards = n_shards

    def shard_of(self, address_id: str, address: Address | None = None) -> int:
        raise NotImplementedError


class HashShardStrategy(ShardStrategy):
    """Uniform partitioning by a stable hash of the address id."""

    def shard_of(self, address_id: str, address: Address | None = None) -> int:
        return _stable_hash(address_id) % self.n_shards


class GeohashShardStrategy(ShardStrategy):
    """Partition by geohash prefix of the geocode (spatial locality).

    Addresses in the same geohash-``precision`` cell land on the same
    shard, so a refresh that only touches one district only rebuilds the
    shards covering it, and a shard's working set is geographically
    compact — the Ping2Hex-style layout.  Falls back to the id hash for
    addresses outside the address book.
    """

    def __init__(self, n_shards: int, precision: int = 5) -> None:
        super().__init__(n_shards)
        if precision < 1:
            raise ValueError(f"precision must be >= 1: {precision}")
        self.precision = precision

    def cell_of(self, address: Address) -> str:
        """The geohash cell that routes this address.

        The *same* cells back the snapshot's spatial index
        (:class:`repro.geo.geohash.GeohashSpatialIndex` at this
        precision), so shard routing and nearest-candidate ring search
        agree on the space partition — one index, two consumers.
        """
        return geohash_encode(
            address.geocode.lng, address.geocode.lat, self.precision
        )

    def shard_of(self, address_id: str, address: Address | None = None) -> int:
        if address is None:
            return _stable_hash(address_id) % self.n_shards
        return _stable_hash(self.cell_of(address)) % self.n_shards


@dataclass(frozen=True)
class ShardSnapshot:
    """One immutable generation of the serving tables.

    ``shards[i]`` is the address->location dict of shard ``i``;
    ``by_building`` is the global building fallback.  Queries resolve
    entirely against one snapshot, so a mid-query swap is harmless.
    """

    shards: tuple[dict[str, Point], ...]
    by_building: dict[str, Point]
    version: int

    @property
    def size(self) -> int:
        return sum(len(s) for s in self.shards)

    def shard_sizes(self) -> list[int]:
        return [len(s) for s in self.shards]


@dataclass
class SwapStats:
    """Writer-side bookkeeping (how many swaps, last swap size)."""

    swaps: int = 0
    last_merged: int = 0
    rebuilt_shards: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record(self, merged: int, rebuilt: int) -> None:
        with self._lock:
            self.swaps += 1
            self.last_merged = merged
            self.rebuilt_shards += rebuilt


class ShardedLocationStore:
    """Drop-in serving replacement for :class:`DeliveryLocationStore`.

    Same query contract (``query`` / ``query_id`` / three-tier fallback /
    :class:`UnknownAddressError`), but reads are lock-free against an
    immutable :class:`ShardSnapshot` and every write path is
    copy-on-write + atomic swap.
    """

    def __init__(
        self,
        address_locations: dict[str, Point],
        addresses: dict[str, Address],
        n_shards: int = 4,
        strategy: ShardStrategy | None = None,
        initial_version: int = 1,
    ) -> None:
        self._addresses = dict(addresses)
        self._strategy = strategy or HashShardStrategy(n_shards)
        self._write_lock = threading.Lock()
        self.swap_stats = SwapStats()
        self._snapshot = self._build_snapshot(
            dict(address_locations), version=initial_version
        )
        #: (snapshot version, row ids, index) — rebuilt lazily per generation.
        self._spatial: tuple[int, list[str], GeohashSpatialIndex] | None = None

    # ------------------------------------------------------------------
    # Construction of immutable generations (writer side)
    # ------------------------------------------------------------------
    def _shard_of(self, address_id: str) -> int:
        return self._strategy.shard_of(address_id, self._addresses.get(address_id))

    def _build_snapshot(
        self, address_locations: dict[str, Point], version: int
    ) -> ShardSnapshot:
        shards: list[dict[str, Point]] = [
            {} for _ in range(self._strategy.n_shards)
        ]
        for address_id, point in address_locations.items():
            shards[self._shard_of(address_id)][address_id] = point
        by_building = aggregate_building_locations(
            address_locations, self._addresses
        )
        return ShardSnapshot(tuple(shards), by_building, version)

    def update(self, address_locations: dict[str, Point]) -> ShardSnapshot:
        """Merge a refresh batch and atomically swap the snapshot in.

        Only the shards an updated address maps to are copied; untouched
        shard dicts are carried into the new snapshot by reference (they
        are never mutated, so sharing is safe).  The building table is
        re-aggregated globally.  Returns the new snapshot.
        """
        if not address_locations:
            return self._snapshot
        with self._write_lock:
            old = self._snapshot
            touched: dict[int, dict[str, Point]] = {}
            for address_id, point in address_locations.items():
                idx = self._shard_of(address_id)
                if idx not in touched:
                    touched[idx] = dict(old.shards[idx])
                touched[idx][address_id] = point
            shards = tuple(
                touched.get(i, old.shards[i]) for i in range(len(old.shards))
            )
            merged: dict[str, Point] = {}
            for shard in shards:
                merged.update(shard)
            snapshot = ShardSnapshot(
                shards,
                aggregate_building_locations(merged, self._addresses),
                old.version + 1,
            )
            self._snapshot = snapshot
            self.swap_stats.record(len(address_locations), len(touched))
            return snapshot

    def replace(self, address_locations: dict[str, Point]) -> ShardSnapshot:
        """Rebuild every shard from scratch and swap (full refresh)."""
        with self._write_lock:
            snapshot = self._build_snapshot(
                dict(address_locations), self._snapshot.version + 1
            )
            self._snapshot = snapshot
            self.swap_stats.record(len(address_locations), len(snapshot.shards))
            return snapshot

    # ------------------------------------------------------------------
    # Lock-free read path
    # ------------------------------------------------------------------
    def snapshot(self) -> ShardSnapshot:
        """The current immutable generation (one atomic reference read)."""
        return self._snapshot

    def _resolve(self, snapshot: ShardSnapshot, address: Address) -> QueryResult:
        shard = snapshot.shards[
            self._strategy.shard_of(address.address_id, address)
        ]
        point = shard.get(address.address_id)
        if point is not None:
            return QueryResult(point, QuerySource.ADDRESS)
        point = snapshot.by_building.get(address.building_id)
        if point is not None:
            return QueryResult(point, QuerySource.BUILDING)
        return QueryResult(address.geocode, QuerySource.GEOCODE)

    def query(self, address: Address) -> QueryResult:
        """Three-tier fallback resolution against one snapshot."""
        return self._resolve(self._snapshot, address)

    def query_id(self, address_id: str) -> QueryResult:
        """Resolve by id; raises :class:`UnknownAddressError` on a miss."""
        address = self._addresses.get(address_id)
        if address is None:
            raise UnknownAddressError(address_id)
        return self._resolve(self._snapshot, address)

    def query_ids_batch(
        self, address_ids: list[str]
    ) -> dict[str, QueryResult | UnknownAddressError]:
        """Resolve many ids in one pass over a single snapshot.

        This is the micro-batcher's fallback-chain evaluation: every id in
        the batch is answered from the *same* generation, and unknown ids
        come back as :class:`UnknownAddressError` values (not raises) so
        one bad id cannot fail its batch-mates.
        """
        snapshot = self._snapshot
        out: dict[str, QueryResult | UnknownAddressError] = {}
        for address_id in address_ids:
            address = self._addresses.get(address_id)
            if address is None:
                out[address_id] = UnknownAddressError(address_id)
            else:
                out[address_id] = self._resolve(snapshot, address)
        return out

    # ------------------------------------------------------------------
    # Spatial retrieval (shares the geohash cells that route shards)
    # ------------------------------------------------------------------
    def _spatial_index(self) -> tuple[list[str], GeohashSpatialIndex]:
        """The current generation's geohash index over inferred locations."""
        snapshot = self._snapshot
        cached = self._spatial
        if cached is not None and cached[0] == snapshot.version:
            return cached[1], cached[2]
        ids: list[str] = []
        lngs: list[float] = []
        lats: list[float] = []
        for shard in snapshot.shards:
            for address_id, point in shard.items():
                ids.append(address_id)
                lngs.append(point.lng)
                lats.append(point.lat)
        precision = getattr(self._strategy, "precision", 6)
        index = GeohashSpatialIndex.build(
            np.asarray(lngs), np.asarray(lats), precision
        )
        self._spatial = (snapshot.version, ids, index)
        return ids, index

    def nearest(
        self, lng: float, lat: float, linear: bool = False
    ) -> tuple[str, Point, float] | None:
        """Closest inferred delivery location to a coordinate.

        Returns ``(address_id, location, distance_m)`` or ``None`` on an
        empty store.  The production path is the geohash ring search of
        :class:`~repro.geo.geohash.GeohashSpatialIndex` — the same cells
        a :class:`GeohashShardStrategy` routes by; ``linear=True`` forces
        the exact reference scan (parity oracle for tests/benches).
        """
        ids, index = self._spatial_index()
        hit = index.nearest_linear(lng, lat) if linear else index.nearest(lng, lat)
        if hit is None:
            return None
        row, dist = hit
        return ids[row], Point(float(index.lngs[row]), float(index.lats[row])), dist

    # ------------------------------------------------------------------
    # Durability (columnar snapshot + update log)
    # ------------------------------------------------------------------
    @classmethod
    def restore(
        cls,
        snapshot_dir: str,
        n_shards: int | None = None,
        strategy: ShardStrategy | None = None,
    ) -> "ShardedLocationStore":
        """Rebuild a store from the newest intact snapshot + log suffix.

        Crash recovery for the multi-process serving tier: scan
        ``snapshot_dir`` for the highest-versioned snapshot file that
        passes CRC validation (a writer killed mid-publish leaves either
        a tmp file, which is ignored, or a corrupt file, which is
        skipped), then replay append-only update-log records *newer* than
        that snapshot — torn trailing records are discarded.  The result
        is a store at least as fresh as the last durable publish, never a
        torn one.
        """
        from repro.serve.mp import SnapshotPublisher

        snap, records = SnapshotPublisher.recover(snapshot_dir)
        addresses = snap.addresses()
        if strategy is None:
            if snap.meta.get("strategy") == "GeohashShardStrategy":
                strategy = GeohashShardStrategy(
                    n_shards or snap.n_shards, precision=snap.precision
                )
            else:
                strategy = HashShardStrategy(n_shards or snap.n_shards)
        # Re-seat at the snapshot's version so the restored store's
        # generations line up with the published files it came from.
        store = cls(
            snap.address_locations(),
            addresses,
            strategy=strategy,
            initial_version=snap.version,
        )
        for locations in records:
            store.update(locations)
        return store

    # ------------------------------------------------------------------
    # Introspection / compatibility
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._snapshot.size

    @property
    def address_book(self) -> Mapping[str, Address]:
        """Read-only view of the address book (columnar serialization)."""
        return MappingProxyType(self._addresses)

    @property
    def strategy(self) -> ShardStrategy:
        return self._strategy

    @property
    def n_shards(self) -> int:
        return self._strategy.n_shards

    @property
    def version(self) -> int:
        return self._snapshot.version

    @property
    def address_locations(self) -> dict[str, Point]:
        """Merged address-level table (read-only copy, all shards)."""
        merged: dict[str, Point] = {}
        for shard in self._snapshot.shards:
            merged.update(shard)
        return merged

    @property
    def building_locations(self) -> dict[str, Point]:
        """The global building-level fallback table (read-only copy)."""
        return dict(self._snapshot.by_building)
