"""Concurrent query server: worker pool, bounded admission, deadlines.

This is the online half of Figure 14 as an in-process subsystem: requests
enter a *bounded* admission queue (when it is full the submitter gets an
explicit ``REJECTED`` response immediately — backpressure, never an
unbounded pile-up), a pool of worker threads drains the queue through the
:class:`~repro.serve.router.QueryRouter`, and every request carries a
deadline that is honored both while queued (a worker discards expired
work without evaluating it) and on the client side (waiters give up and
report ``TIMED_OUT`` even if a worker is still busy).

Observability: a queue-depth gauge, a request counter by terminal status,
a latency histogram labeled by answering tier and cache state, and a
``serve.request`` span per evaluated request — all through
:mod:`repro.obs`, so ``--trace``/``--metrics-out`` cover the serving tier
for free.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable

from repro.apps.store import QueryResult, UnknownAddressError
from repro.geo import Point
from repro.obs import current_span, event, get_registry
from repro.obs import span as obs_span
from repro.obs.exemplar import Exemplar, exemplars_enabled
from repro.obs.health import SLO, HealthReport, RequestWindows
from repro.obs.provenance import get_provenance_ring, pop_evidence
from repro.obs.recorder import get_recorder
from repro.serve.router import QueryRouter
from repro.serve.shard import ShardedLocationStore


class ServeStatus(Enum):
    """Terminal status of one served request."""

    OK = "ok"
    REJECTED = "rejected"            # admission queue full (backpressure)
    TIMED_OUT = "timed_out"          # deadline passed before completion
    UNKNOWN_ADDRESS = "unknown_address"
    ERROR = "error"


@dataclass(frozen=True)
class ServeResponse:
    """What a client gets back for one request."""

    address_id: str
    status: ServeStatus
    result: QueryResult | None
    cache_state: str | None
    latency_s: float
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.status is ServeStatus.OK


@dataclass(frozen=True)
class ServerConfig:
    """Knobs of the serving tier (defaults sized for the tiny preset)."""

    n_workers: int = 4
    queue_capacity: int = 64
    default_timeout_s: float = 1.0
    cache_capacity: int = 2048
    cache_ttl_s: float = 30.0
    batch_window_s: float = 0.0      # > 0 enables the micro-batcher
    batch_max: int = 32

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1: {self.n_workers}")
        if self.queue_capacity < 1:
            raise ValueError(f"queue_capacity must be >= 1: {self.queue_capacity}")
        if self.default_timeout_s <= 0:
            raise ValueError(
                f"default_timeout_s must be > 0: {self.default_timeout_s}"
            )


class PendingQuery:
    """Future-like handle for one admitted (or rejected) request."""

    __slots__ = ("address_id", "t_submit", "deadline", "parent_span",
                 "_event", "_lock", "_response", "_on_finish")

    def __init__(
        self,
        address_id: str,
        t_submit: float,
        deadline: float,
        on_finish: Callable[[ServeResponse], None],
    ) -> None:
        self.address_id = address_id
        self.t_submit = t_submit
        self.deadline = deadline
        # The submitter's active span (contextvars don't cross the worker
        # thread boundary; the worker re-parents serve.request under it).
        self.parent_span = current_span()
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._response: ServeResponse | None = None
        self._on_finish = on_finish

    def finish(self, response: ServeResponse) -> bool:
        """Install the terminal response; first writer wins."""
        with self._lock:
            if self._response is not None:
                return False
            self._response = response
        self._on_finish(response)
        self._event.set()
        return True

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, grace_s: float = 0.050) -> ServeResponse:
        """Block until finished or the deadline (+``grace_s``) passes.

        If the deadline expires first the request is finished as
        ``TIMED_OUT`` from the client side; a worker completing the same
        request concurrently loses the race and its answer is discarded.
        """
        remaining = self.deadline + grace_s - time.monotonic()
        if not self._event.wait(max(0.0, remaining)):
            self.finish(
                ServeResponse(
                    self.address_id,
                    ServeStatus.TIMED_OUT,
                    None,
                    None,
                    time.monotonic() - self.t_submit,
                    error="deadline exceeded while waiting",
                )
            )
            self._event.wait()
        assert self._response is not None
        return self._response


_STOP = object()


class QueryServer:
    """Thread-pool server over a sharded store, a cache, and a batcher."""

    def __init__(
        self,
        store: ShardedLocationStore,
        config: ServerConfig | None = None,
        router: QueryRouter | None = None,
    ) -> None:
        self.config = config or ServerConfig()
        self.store = store
        self.router = router or QueryRouter.build(
            store,
            cache_capacity=self.config.cache_capacity,
            cache_ttl_s=self.config.cache_ttl_s,
            batch_window_s=self.config.batch_window_s,
            batch_max=self.config.batch_max,
        )
        self._queue: queue.Queue = queue.Queue(maxsize=self.config.queue_capacity)
        self._threads: list[threading.Thread] = []
        self._started = False
        #: Trailing multi-window request samples (status, latency, queue
        #: depth) feeding SLO verdicts and burn-rate alerting.
        self.health = RequestWindows()
        registry = get_registry()
        self._requests_total = registry.counter(
            "serve_requests_total", "Served requests by terminal status"
        )
        self._queue_depth = registry.gauge(
            "serve_queue_depth", "Requests waiting in the admission queue"
        )
        self._latency = registry.histogram(
            "serve_request_latency_seconds",
            "End-to-end request latency by answering tier and cache state",
        )
        self._exemplars_attached = registry.counter(
            "exemplars_attached_total",
            "Histogram observations that carried an exemplar",
        )
        self._exemplars_attached.inc(0)
        #: Per-query evidence chains (the `repro explain` data source).
        self.provenance = get_provenance_ring()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "QueryServer":
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        for i in range(self.config.n_workers):
            thread = threading.Thread(
                target=self._worker, name=f"serve-worker-{i}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        event(
            "serve.start", component="serve",
            n_workers=self.config.n_workers,
            queue_capacity=self.config.queue_capacity,
            n_shards=self.store.n_shards,
        )
        return self

    def stop(self) -> None:
        if not self._started:
            return
        for _ in self._threads:
            self._queue.put(_STOP)
        for thread in self._threads:
            thread.join()
        self._threads.clear()
        self._started = False
        event("serve.stop", component="serve")

    def __enter__(self) -> "QueryServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------
    def _count(self, response: ServeResponse) -> None:
        self._requests_total.inc(status=response.status.value)
        self.health.record(response.status.value, response.latency_s)

    def submit(self, address_id: str, timeout_s: float | None = None) -> PendingQuery:
        """Enqueue one request; rejects immediately when the queue is full."""
        if not self._started:
            raise RuntimeError("server is not running (call start())")
        now = time.monotonic()
        deadline = now + (timeout_s if timeout_s is not None else
                          self.config.default_timeout_s)
        pending = PendingQuery(address_id, now, deadline, self._count)
        try:
            self._queue.put_nowait(pending)
        except queue.Full:
            pending.finish(
                ServeResponse(
                    address_id, ServeStatus.REJECTED, None, None,
                    time.monotonic() - now, error="admission queue full",
                )
            )
            return pending
        depth = self._queue.qsize()
        self._queue_depth.set(depth)
        self.health.note_queue_depth(depth)
        return pending

    def query(self, address_id: str, timeout_s: float | None = None) -> ServeResponse:
        """Synchronous convenience: submit and wait out the deadline."""
        return self.submit(address_id, timeout_s).result()

    # ------------------------------------------------------------------
    # Refresh seam
    # ------------------------------------------------------------------
    def apply_refresh(
        self, address_locations: dict[str, Point], replace: bool = False
    ) -> int:
        """Swap a refresh batch into the store and invalidate the cache.

        Queries in flight keep reading the old snapshot; the next request
        sees the new one.  Returns the new store version.
        """
        if replace:
            snapshot = self.store.replace(address_locations)
        else:
            snapshot = self.store.update(address_locations)
        dropped = self.router.on_refresh()
        event(
            "serve.refresh", component="serve", version=snapshot.version,
            size=snapshot.size, cache_dropped=dropped,
        )
        return snapshot.version

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            pending: PendingQuery = item
            depth = self._queue.qsize()
            self._queue_depth.set(depth)
            self.health.note_queue_depth(depth)
            now = time.monotonic()
            if now >= pending.deadline:
                pending.finish(
                    ServeResponse(
                        pending.address_id, ServeStatus.TIMED_OUT, None, None,
                        now - pending.t_submit,
                        error="deadline exceeded in queue",
                    )
                )
                continue
            # sampled=True is the head decision the tail-based trace
            # collector (repro.obs.trace.merge_traces) honors — the
            # thread backend head-samples everything, so merged thread
            # traces keep the same shape as process-backend ones.
            with obs_span(
                "serve.request", parent=pending.parent_span,
                address_id=pending.address_id, sampled=True,
            ) as sp:
                trace_id = sp.trace_id if sp is not None else ""
                try:
                    routed = self.router.resolve(pending.address_id)
                except UnknownAddressError as exc:
                    response = ServeResponse(
                        pending.address_id, ServeStatus.UNKNOWN_ADDRESS, None,
                        None, time.monotonic() - pending.t_submit,
                        error=str(exc),
                    )
                    self._mint(pending.address_id, response, None, trace_id)
                except Exception as exc:  # noqa: BLE001 — keep workers alive
                    response = ServeResponse(
                        pending.address_id, ServeStatus.ERROR, None, None,
                        time.monotonic() - pending.t_submit,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                    self._mint(pending.address_id, response, None, trace_id)
                else:
                    latency = time.monotonic() - pending.t_submit
                    response = ServeResponse(
                        pending.address_id, ServeStatus.OK, routed.result,
                        routed.cache_state, latency,
                    )
                    record = self._mint(
                        pending.address_id, response, routed, trace_id
                    )
                    exemplar = None
                    if exemplars_enabled():
                        exemplar = Exemplar.now(
                            latency, trace_id=trace_id,
                            provenance_key=record.key,
                        )
                        self._exemplars_attached.inc()
                    self._latency.observe(
                        latency,
                        exemplar=exemplar,
                        source=routed.result.source.value,
                        cache=routed.cache_state,
                    )
                if sp is not None:
                    sp.set("status", response.status.value)
                    if response.cache_state is not None:
                        sp.set("cache", response.cache_state)
            pending.finish(response)

    def _mint(self, address_id: str, response: ServeResponse, routed,
              trace_id: str):
        """Build the provenance record for one terminal response."""
        evidence = pop_evidence(address_id) or {}
        result = response.result
        record = self.provenance.mint(
            address_id,
            response.status.value,
            lng=result.location.lng if result is not None else None,
            lat=result.location.lat if result is not None else None,
            source=result.source.value if result is not None else "",
            cache_state=(routed.cache_state if routed is not None else "")
            or "",
            confidence=result.confidence if result is not None else None,
            candidates=evidence.get("candidates", []),
            stays=evidence.get("stays", []),
            snapshot_version=self.store.version,
            model_fingerprint=evidence.get("model_fingerprint", ""),
            pool_fingerprint=evidence.get("pool_fingerprint", ""),
            trace_id=trace_id,
            error=response.error or "",
        )
        get_recorder().note_provenance(
            record.key, record.address_id, record.status
        )
        return record

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Point-in-time view for reports and the CLI."""
        counts = {
            status.value: self._requests_total.value(status=status.value)
            for status in ServeStatus
        }
        out: dict[str, Any] = {
            "requests_by_status": counts,
            "queue_depth": self._queue.qsize(),
            "queue_capacity": self.config.queue_capacity,
            "n_workers": self.config.n_workers,
            "store_version": self.store.version,
            "store_size": len(self.store),
            "shard_sizes": self.store.snapshot().shard_sizes(),
        }
        cache_stats = self.router.cache_stats()
        if cache_stats is not None:
            out["cache"] = cache_stats.to_dict()
        batch_stats = self.router.batch_stats()
        if batch_stats is not None:
            out["batch"] = batch_stats.to_dict()
        return out

    def verdict(self, slos: list[SLO]) -> HealthReport:
        """Evaluate SLOs against the live request windows.

        Violations emit ``slo_violation`` events; the report carries
        per-window burn rates for error-budget objectives.
        """
        return self.health.verdict(slos)
