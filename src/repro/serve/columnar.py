"""Columnar snapshot files: the sharded store as flat numpy arrays.

The in-process :class:`~repro.serve.shard.ShardSnapshot` is a tuple of
python dicts — perfect for lock-free swaps inside one interpreter, but it
cannot cross a process boundary without pickling the world, and every
lookup walks per-address python objects.  This module serializes one
snapshot generation into a single file of flat arrays:

* an address-id hash table (``hash_sorted``/``hash_row``: blake2b-64 of
  the id, sorted, plus the row permutation) for O(log n) vectorized id
  lookup via ``np.searchsorted``;
* per-row columns — inferred location (``loc_lng``/``loc_lat``, NaN when
  the address has no inferred location), geocode, confidence (float32,
  NaN when unscored), building-row link, POI category, and the raw id /
  address-text bytes as offset-indexed blobs;
* rows grouped by shard (``shard_offsets``) so a worker owning shard *k*
  touches one contiguous slice;
* the global building fallback table (``bld_*``);
* a packed-geohash spatial index over the inferred locations
  (``sp_*``), the same cells the
  :class:`~repro.serve.shard.GeohashShardStrategy` routes by, so
  nearest-candidate retrieval is a ring search instead of a linear scan.

Layout: 8-byte magic, little-endian uint64 header length, a JSON header
(array dtypes/shapes/offsets/CRCs + snapshot metadata), then 64-byte
aligned array payloads.  :func:`load_snapshot` maps the file with
``np.memmap`` — loads are zero-copy and N worker processes share one
page-cache copy.  Publishing is tmp-file + fsync + atomic rename, so a
reader can never map a torn file; per-array CRC32 checksums let the
crash-recovery path (:meth:`repro.serve.shard.ShardedLocationStore.restore`)
reject a partially written snapshot that an unclean shutdown left behind.

One documented approximation: id lookup trusts the 64-bit hash unless the
table itself contains duplicate hashes (then it falls back to comparing
id bytes within the duplicate run).  A *foreign* id colliding with a
stored hash would mis-resolve with probability ~2^-64 per query — the
standard content-hash trade, and far below the serving tier's error
budget.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from hashlib import blake2b
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.apps.store import QueryResult, QuerySource, UnknownAddressError
from repro.geo import Point
from repro.geo.geohash import GeohashSpatialIndex
from repro.trajectory import Address

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serve.shard import ShardedLocationStore

MAGIC = b"RSNAP001"
_ALIGN = 64

#: Geohash precision of the embedded spatial index when the store's shard
#: strategy does not pin one (precision 6 cells are ~1.2 km x 0.6 km).
DEFAULT_SPATIAL_PRECISION = 6


def _id_hash(address_id: str) -> int:
    """Stable 64-bit hash of an address id (blake2b, 8-byte digest)."""
    return int.from_bytes(
        blake2b(address_id.encode("utf-8"), digest_size=8).digest(), "little"
    )


def _pack_strings(strings: Iterable[str]) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate utf-8 strings into (blob uint8, offsets int64)."""
    encoded = [s.encode("utf-8") for s in strings]
    offsets = np.zeros(len(encoded) + 1, dtype=np.int64)
    lengths = np.array([len(b) for b in encoded], dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    blob = np.frombuffer(b"".join(encoded), dtype=np.uint8).copy()
    return blob, offsets


def _string_at(blob: np.ndarray, offsets: np.ndarray, i: int) -> str:
    return bytes(blob[offsets[i] : offsets[i + 1]]).decode("utf-8")


@dataclass(frozen=True)
class SnapshotInfo:
    """What :func:`write_snapshot` produced."""

    path: str
    version: int
    n_rows: int
    n_shards: int
    nbytes: int


class SnapshotCorruptError(ValueError):
    """A snapshot file failed magic/header/CRC validation."""


def build_columnar_arrays(
    store: "ShardedLocationStore",
    confidences: dict[str, float] | None = None,
) -> tuple[dict[str, np.ndarray], dict]:
    """Flatten the store's current snapshot into named arrays + metadata.

    Rows cover every address in the store's address book (the id-keyed
    query contract: ids outside the book raise
    :class:`UnknownAddressError`, so out-of-book locations are not
    servable by id and are not serialized), grouped by shard and sorted
    by id within a shard for deterministic diffs across rebuilds.
    """
    snapshot = store.snapshot()
    addresses = store.address_book
    strategy = store.strategy
    n_shards = strategy.n_shards
    confidences = confidences or {}

    per_shard: list[list[str]] = [[] for _ in range(n_shards)]
    for address_id, address in addresses.items():
        per_shard[strategy.shard_of(address_id, address)].append(address_id)
    for bucket in per_shard:
        bucket.sort()
    ids: list[str] = [a for bucket in per_shard for a in bucket]
    n = len(ids)

    shard_offsets = np.zeros(n_shards + 1, dtype=np.int64)
    np.cumsum(
        np.array([len(b) for b in per_shard], dtype=np.int64),
        out=shard_offsets[1:],
    )

    buildings = sorted({addresses[a].building_id for a in ids})
    bld_index = {b: i for i, b in enumerate(buildings)}

    loc_lng = np.full(n, np.nan)
    loc_lat = np.full(n, np.nan)
    geo_lng = np.empty(n)
    geo_lat = np.empty(n)
    confidence = np.full(n, np.nan, dtype=np.float32)
    building_row = np.empty(n, dtype=np.int32)
    poi = np.empty(n, dtype=np.int16)
    for i, address_id in enumerate(ids):
        address = addresses[address_id]
        shard = snapshot.shards[strategy.shard_of(address_id, address)]
        point = shard.get(address_id)
        if point is not None:
            loc_lng[i] = point.lng
            loc_lat[i] = point.lat
        geo_lng[i] = address.geocode.lng
        geo_lat[i] = address.geocode.lat
        conf = confidences.get(address_id)
        if conf is not None:
            confidence[i] = conf
        building_row[i] = bld_index[address.building_id]
        poi[i] = address.poi_category

    bld_lng = np.full(len(buildings), np.nan)
    bld_lat = np.full(len(buildings), np.nan)
    for building_id, point in snapshot.by_building.items():
        row = bld_index.get(building_id)
        if row is not None:
            bld_lng[row] = point.lng
            bld_lat[row] = point.lat

    hashes = np.fromiter((_id_hash(a) for a in ids), dtype=np.uint64, count=n)
    order = np.argsort(hashes, kind="stable").astype(np.int64)

    id_blob, id_offsets = _pack_strings(ids)
    text_blob, text_offsets = _pack_strings(addresses[a].text for a in ids)
    bld_blob, bld_offsets = _pack_strings(buildings)

    precision = getattr(strategy, "precision", DEFAULT_SPATIAL_PRECISION)
    has_loc = np.isfinite(loc_lng)
    sp_row = np.flatnonzero(has_loc).astype(np.int64)
    sp_lng = loc_lng[sp_row]
    sp_lat = loc_lat[sp_row]
    index = GeohashSpatialIndex.build(sp_lng, sp_lat, precision)

    arrays = {
        "id_blob": id_blob,
        "id_offsets": id_offsets,
        "text_blob": text_blob,
        "text_offsets": text_offsets,
        "hash_sorted": hashes[order],
        "hash_row": order,
        "shard_offsets": shard_offsets,
        "loc_lng": loc_lng,
        "loc_lat": loc_lat,
        "geo_lng": geo_lng,
        "geo_lat": geo_lat,
        "confidence": confidence,
        "building_row": building_row,
        "poi": poi,
        "bld_blob": bld_blob,
        "bld_offsets": bld_offsets,
        "bld_lng": bld_lng,
        "bld_lat": bld_lat,
        "sp_row": sp_row,
        "sp_lng": sp_lng,
        "sp_lat": sp_lat,
        "sp_cell_codes": index.cell_codes,
        "sp_cell_starts": index.cell_starts,
        "sp_cell_rows": index.cell_rows,
    }
    meta = {
        "version": snapshot.version,
        "n_rows": n,
        "n_shards": n_shards,
        "precision": int(precision),
        "strategy": type(strategy).__name__,
    }
    return arrays, meta


def write_snapshot(
    path: str | os.PathLike,
    store: "ShardedLocationStore",
    confidences: dict[str, float] | None = None,
) -> SnapshotInfo:
    """Serialize the store's current snapshot; publish is atomic.

    The file is written to ``<path>.tmp.<pid>``, fsynced, and renamed
    into place, so a concurrent :func:`load_snapshot` of ``path`` sees
    either the previous complete file or the new complete file — never a
    torn one.  The containing directory is fsynced too so the rename
    survives a crash.
    """
    arrays, meta = build_columnar_arrays(store, confidences)
    path = os.fspath(path)

    header: dict = {"meta": meta, "arrays": {}}
    # Lay out payloads after a generously padded header; two passes would
    # be exact, but a fixed slack keeps offsets independent of JSON size
    # jitter and the header always fits real-world array counts.
    payload = []
    offset = 0
    for name, arr in arrays.items():
        arr = np.ascontiguousarray(arr)
        offset = (offset + _ALIGN - 1) // _ALIGN * _ALIGN
        header["arrays"][name] = {
            "dtype": arr.dtype.str,
            "shape": list(arr.shape),
            "offset": offset,
            "nbytes": arr.nbytes,
            "crc32": zlib.crc32(arr.view(np.uint8).data) & 0xFFFFFFFF,
        }
        payload.append((offset, arr))
        offset += arr.nbytes

    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    data_start = len(MAGIC) + 8 + len(header_bytes)
    data_start = (data_start + _ALIGN - 1) // _ALIGN * _ALIGN

    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as f:
        f.write(MAGIC)
        f.write(len(header_bytes).to_bytes(8, "little"))
        f.write(header_bytes)
        for arr_offset, arr in payload:
            f.seek(data_start + arr_offset)
            f.write(arr.view(np.uint8).data)
        # A trailing zero-length array seeks past EOF without writing;
        # extend the file to the full laid-out size so every header
        # offset (even an empty array's) is inside the mapping.
        f.truncate(max(data_start + offset, f.tell()))
        f.seek(0, os.SEEK_END)
        f.flush()
        os.fsync(f.fileno())
        nbytes = f.tell()
    os.replace(tmp, path)
    dir_fd = os.open(os.path.dirname(path) or ".", os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)
    return SnapshotInfo(
        path=path,
        version=meta["version"],
        n_rows=meta["n_rows"],
        n_shards=meta["n_shards"],
        nbytes=nbytes,
    )


class ColumnarSnapshot:
    """Zero-copy read view over one snapshot file.

    All array attributes are ``np.memmap`` slices — opening a snapshot
    touches only the header page; data pages fault in on first use and
    are shared between every process that maps the same file.
    """

    def __init__(self, path: str, header: dict, arrays: dict[str, np.ndarray]):
        self.path = path
        self.meta = header["meta"]
        self.version: int = self.meta["version"]
        self.n_rows: int = self.meta["n_rows"]
        self.n_shards: int = self.meta["n_shards"]
        self.precision: int = self.meta["precision"]
        self._a = arrays
        self._dup_hashes = bool(
            self.n_rows > 1
            and np.any(arrays["hash_sorted"][1:] == arrays["hash_sorted"][:-1])
        )
        self._index: GeohashSpatialIndex | None = None

    def __getattr__(self, name: str) -> np.ndarray:
        try:
            return self.__dict__["_a"][name]
        except KeyError:
            raise AttributeError(name) from None

    # -- id resolution ---------------------------------------------------
    def id_at(self, row: int) -> str:
        return _string_at(self._a["id_blob"], self._a["id_offsets"], row)

    def text_at(self, row: int) -> str:
        return _string_at(self._a["text_blob"], self._a["text_offsets"], row)

    def building_at(self, bld_row: int) -> str:
        return _string_at(self._a["bld_blob"], self._a["bld_offsets"], bld_row)

    def lookup_rows(self, address_ids: list[str]) -> np.ndarray:
        """Row index per id, ``-1`` for ids outside the address book."""
        n = self.n_rows
        if n == 0 or not address_ids:
            return np.full(len(address_ids), -1, dtype=np.int64)
        hash_sorted = self._a["hash_sorted"]
        hash_row = self._a["hash_row"]
        h = np.fromiter(
            (_id_hash(a) for a in address_ids),
            dtype=np.uint64,
            count=len(address_ids),
        )
        pos = np.searchsorted(hash_sorted, h)
        clamped = np.minimum(pos, n - 1)
        found = hash_sorted[clamped] == h
        rows = np.where(found, hash_row[clamped], -1)
        if self._dup_hashes:
            # Rare path: disambiguate within equal-hash runs by id bytes.
            for i in np.flatnonzero(found):
                p = int(pos[i])
                row = -1
                while p < n and hash_sorted[p] == h[i]:
                    if self.id_at(int(hash_row[p])) == address_ids[i]:
                        row = int(hash_row[p])
                        break
                    p += 1
                rows[i] = row
        return rows

    def shard_of_row(self, row: int) -> int:
        """Which shard owns a row (rows are grouped by shard)."""
        offsets = self._a["shard_offsets"]
        return int(np.searchsorted(offsets, row, side="right")) - 1

    def shards_for_ids(self, address_ids: list[str]) -> np.ndarray:
        """Shard per id; ``-1`` for unknown ids (caller picks a fallback)."""
        rows = self.lookup_rows(address_ids)
        offsets = self._a["shard_offsets"]
        shards = np.searchsorted(offsets, rows, side="right").astype(np.int64) - 1
        shards[rows < 0] = -1
        return shards

    # -- query path ------------------------------------------------------
    def resolve_batch(
        self, address_ids: list[str]
    ) -> dict[str, QueryResult | UnknownAddressError]:
        """Vectorized three-tier resolution, same contract as
        :meth:`repro.serve.shard.ShardedLocationStore.query_ids_batch`."""
        rows = self.lookup_rows(address_ids)
        a = self._a
        safe = np.maximum(rows, 0)
        loc_ok = np.isfinite(a["loc_lng"][safe]) & (rows >= 0)
        bld_rows = a["building_row"][safe]
        bld_ok = (
            (rows >= 0)
            & ~loc_ok
            & np.isfinite(a["bld_lng"][np.maximum(bld_rows, 0)])
            & (bld_rows >= 0)
        )
        out: dict[str, QueryResult | UnknownAddressError] = {}
        for i, address_id in enumerate(address_ids):
            row = int(rows[i])
            if row < 0:
                out[address_id] = UnknownAddressError(address_id)
            elif loc_ok[i]:
                conf = float(a["confidence"][row])
                out[address_id] = QueryResult(
                    Point(float(a["loc_lng"][row]), float(a["loc_lat"][row])),
                    QuerySource.ADDRESS,
                    confidence=conf if np.isfinite(conf) else None,
                )
            elif bld_ok[i]:
                b = int(bld_rows[i])
                out[address_id] = QueryResult(
                    Point(float(a["bld_lng"][b]), float(a["bld_lat"][b])),
                    QuerySource.BUILDING,
                )
            else:
                out[address_id] = QueryResult(
                    Point(float(a["geo_lng"][row]), float(a["geo_lat"][row])),
                    QuerySource.GEOCODE,
                )
        return out

    def query_id(self, address_id: str) -> QueryResult:
        result = self.resolve_batch([address_id])[address_id]
        if isinstance(result, UnknownAddressError):
            raise result
        return result

    # -- spatial ---------------------------------------------------------
    def spatial_index(self) -> GeohashSpatialIndex:
        """The embedded ring-search index over inferred locations."""
        if self._index is None:
            a = self._a
            self._index = GeohashSpatialIndex(
                a["sp_lng"],
                a["sp_lat"],
                self.precision,
                a["sp_cell_codes"],
                a["sp_cell_starts"],
                a["sp_cell_rows"],
            )
        return self._index

    def nearest(self, lng: float, lat: float) -> tuple[str, Point, float] | None:
        """Closest inferred delivery location: ``(address_id, point, m)``."""
        hit = self.spatial_index().nearest(lng, lat)
        if hit is None:
            return None
        sp, dist = hit
        row = int(self._a["sp_row"][sp])
        point = Point(float(self._a["loc_lng"][row]), float(self._a["loc_lat"][row]))
        return self.id_at(row), point, dist

    # -- reconstruction (restore path) -----------------------------------
    def address_locations(self) -> dict[str, Point]:
        """Inferred locations as a dict (restore/diff path, not serving)."""
        out: dict[str, Point] = {}
        a = self._a
        for row in np.flatnonzero(np.isfinite(a["loc_lng"])):
            out[self.id_at(int(row))] = Point(
                float(a["loc_lng"][row]), float(a["loc_lat"][row])
            )
        return out

    def addresses(self) -> dict[str, Address]:
        """Rebuild the address book (:class:`repro.trajectory.Address`)."""
        a = self._a
        out: dict[str, Address] = {}
        for row in range(self.n_rows):
            address_id = self.id_at(row)
            out[address_id] = Address(
                address_id=address_id,
                text=self.text_at(row),
                building_id=self.building_at(int(a["building_row"][row])),
                geocode=Point(float(a["geo_lng"][row]), float(a["geo_lat"][row])),
                poi_category=int(a["poi"][row]),
            )
        return out


def load_snapshot(
    path: str | os.PathLike, verify: bool = False
) -> ColumnarSnapshot:
    """Map a snapshot file read-only; ``verify`` checks every array CRC.

    The hot path (worker reload) skips CRC verification — atomic-rename
    publishing guarantees the mapped file is complete — while the
    crash-recovery path passes ``verify=True`` to reject files a dying
    writer may have left behind under a non-final name or on a
    non-atomic filesystem.
    """
    path = os.fspath(path)
    raw = np.memmap(path, dtype=np.uint8, mode="r")
    if raw.nbytes < len(MAGIC) + 8 or bytes(raw[: len(MAGIC)]) != MAGIC:
        raise SnapshotCorruptError(f"bad snapshot magic: {path}")
    header_len = int.from_bytes(bytes(raw[len(MAGIC) : len(MAGIC) + 8]), "little")
    header_end = len(MAGIC) + 8 + header_len
    if header_end > raw.nbytes:
        raise SnapshotCorruptError(f"truncated snapshot header: {path}")
    try:
        header = json.loads(bytes(raw[len(MAGIC) + 8 : header_end]).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotCorruptError(f"unreadable snapshot header: {path}") from exc
    data_start = (header_end + _ALIGN - 1) // _ALIGN * _ALIGN
    arrays: dict[str, np.ndarray] = {}
    for name, spec in header["arrays"].items():
        if spec["nbytes"] == 0:  # no payload to map (or to corrupt)
            arrays[name] = np.empty(spec["shape"], dtype=spec["dtype"])
            continue
        start = data_start + spec["offset"]
        end = start + spec["nbytes"]
        if end > raw.nbytes:
            raise SnapshotCorruptError(f"truncated array {name!r}: {path}")
        view = raw[start:end]
        if verify and (zlib.crc32(view.data) & 0xFFFFFFFF) != spec["crc32"]:
            raise SnapshotCorruptError(f"CRC mismatch in array {name!r}: {path}")
        arrays[name] = view.view(spec["dtype"]).reshape(spec["shape"])
    return ColumnarSnapshot(path, header, arrays)


__all__ = [
    "ColumnarSnapshot",
    "SnapshotCorruptError",
    "SnapshotInfo",
    "build_columnar_arrays",
    "load_snapshot",
    "write_snapshot",
    "DEFAULT_SPATIAL_PRECISION",
    "MAGIC",
]
