"""Request routing: cache in front, micro-batcher behind, shards below.

The router is the single synchronous resolution path the server's workers
call: check the LRU+TTL cache, and on a cold miss either go straight to
the sharded store or ride the micro-batcher so concurrent misses share
one snapshot pass.  It tags every answer with its cache state, which the
server folds into the latency histogram labels — cache hits and fallback
tiers have very different latency floors and must not share a bucket
family.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.store import QueryResult, UnknownAddressError
from repro.obs import get_registry
from repro.serve.batching import BatchStats, MicroBatcher
from repro.serve.cache import CacheStats, TTLLRUCache
from repro.serve.shard import ShardedLocationStore

#: Cache-state labels attached to every routed answer.
CACHE_HIT = "hit"
CACHE_MISS = "miss"
CACHE_BYPASS = "bypass"  # router configured without a cache


@dataclass(frozen=True)
class RoutedResult:
    """A resolved query plus how the serving tier answered it."""

    address_id: str
    result: QueryResult
    cache_state: str


class QueryRouter:
    """Cache → (micro-batcher →) sharded store resolution chain."""

    def __init__(
        self,
        store: ShardedLocationStore,
        cache: TTLLRUCache | None = None,
        batcher: MicroBatcher | None = None,
    ) -> None:
        self.store = store
        self.cache = cache
        self.batcher = batcher
        registry = get_registry()
        self._cache_events = registry.counter(
            "serve_cache_events_total", "Result-cache lookups by outcome"
        )
        self._cache_hit_ratio = registry.gauge(
            "serve_cache_hit_ratio", "Result-cache hit ratio since start"
        )

    @classmethod
    def build(
        cls,
        store: ShardedLocationStore,
        cache_capacity: int = 1024,
        cache_ttl_s: float = 30.0,
        batch_window_s: float = 0.0,
        batch_max: int = 32,
        batch_fn=None,
    ) -> "QueryRouter":
        """Assemble the standard chain; zero/negative knobs disable a part.

        ``batch_fn`` replaces the store's snapshot pass as the batched
        cold-miss evaluator (e.g. a
        :class:`~repro.serve.scoring.ModelScoringTier`); passing one
        enables the micro-batcher even at a zero batching window, since a
        custom evaluator is useless without the batcher in front of it.
        """
        cache = (
            TTLLRUCache(cache_capacity, cache_ttl_s) if cache_capacity > 0 else None
        )
        batcher = (
            MicroBatcher(batch_fn or store.query_ids_batch, batch_max, batch_window_s)
            if batch_window_s > 0 or batch_fn is not None
            else None
        )
        return cls(store, cache=cache, batcher=batcher)

    def resolve(self, address_id: str) -> RoutedResult:
        """Resolve one id; raises :class:`UnknownAddressError` on bad ids."""
        if self.cache is not None:
            cached = self.cache.get(address_id)
            if cached is not None:
                self._cache_events.inc(event="hit")
                self._note_hit_ratio()
                return RoutedResult(address_id, cached, CACHE_HIT)
            self._cache_events.inc(event="miss")
            self._note_hit_ratio()
        if self.batcher is not None:
            result = self.batcher.submit(address_id)
        else:
            result = self.store.query_id(address_id)
        if self.cache is not None:
            self.cache.put(address_id, result)
            state = CACHE_MISS
        else:
            state = CACHE_BYPASS
        return RoutedResult(address_id, result, state)

    def _note_hit_ratio(self) -> None:
        hits = self._cache_events.value(event="hit")
        misses = self._cache_events.value(event="miss")
        if hits + misses:
            self._cache_hit_ratio.set(hits / (hits + misses))

    def on_refresh(self) -> int:
        """Drop cached answers after a store swap; returns entries dropped."""
        if self.cache is None:
            return 0
        return self.cache.clear()

    def cache_stats(self) -> CacheStats | None:
        return self.cache.stats() if self.cache is not None else None

    def batch_stats(self) -> BatchStats | None:
        return self.batcher.stats() if self.batcher is not None else None
