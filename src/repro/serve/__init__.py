"""repro.serve — the concurrent online query-serving subsystem.

Turns the offline pipeline's address→location table into a servable
system (the online half of the paper's Figure 14 deployment):

* :class:`ShardedLocationStore` — the table partitioned by a pluggable
  :class:`ShardStrategy` (address-id hash or geohash prefix), refreshed
  by copy-on-write atomic snapshot swap so readers never take a lock.
* :class:`QueryServer` — thread-pool workers behind a *bounded* admission
  queue (explicit ``REJECTED`` backpressure), per-request deadlines, and
  full :mod:`repro.obs` instrumentation.
* :class:`TTLLRUCache` / :class:`MicroBatcher` / :class:`QueryRouter` —
  the per-request resolution chain: recency cache, cold-miss coalescing,
  single-snapshot batched fallback-chain evaluation.
* :class:`LoadGenerator` — seeded closed-loop and open-loop (Poisson)
  workloads producing p50/p95/p99 + throughput + rejection reports
  (``repro serve-bench``).
* :class:`ColumnarSnapshot` / :class:`SnapshotPublisher` /
  :class:`ProcessRouter` — the multi-process backend: versioned columnar
  snapshot files loaded zero-copy via ``np.memmap``, an append-only
  update log with crash recovery (:meth:`ShardedLocationStore.restore`),
  and a shard-routed worker-process pool with heartbeat + restart
  (``repro serve-bench --backend process``).
"""

from repro.serve.batching import BatchStats, MicroBatcher
from repro.serve.cache import CacheStats, TTLLRUCache
from repro.serve.columnar import (
    ColumnarSnapshot,
    SnapshotCorruptError,
    SnapshotInfo,
    load_snapshot,
    write_snapshot,
)
from repro.serve.mp import (
    ProcessRouter,
    SnapshotPublisher,
    VersionCounter,
    WorkerDiedError,
    router_plane_specs,
    worker_plane_specs,
)
from repro.serve.loadgen import (
    LoadGenerator,
    LoadReport,
    ScheduledRequest,
    build_report,
    closed_sequences,
    percentile,
    poisson_schedule,
)
from repro.serve.router import QueryRouter, RoutedResult
from repro.serve.scoring import ModelScoringTier
from repro.serve.server import (
    PendingQuery,
    QueryServer,
    ServeResponse,
    ServeStatus,
    ServerConfig,
)
from repro.serve.shard import (
    GeohashShardStrategy,
    HashShardStrategy,
    ShardedLocationStore,
    ShardSnapshot,
    ShardStrategy,
)

__all__ = [
    "BatchStats",
    "MicroBatcher",
    "CacheStats",
    "TTLLRUCache",
    "ColumnarSnapshot",
    "SnapshotCorruptError",
    "SnapshotInfo",
    "load_snapshot",
    "write_snapshot",
    "ProcessRouter",
    "SnapshotPublisher",
    "VersionCounter",
    "WorkerDiedError",
    "router_plane_specs",
    "worker_plane_specs",
    "LoadGenerator",
    "LoadReport",
    "ScheduledRequest",
    "build_report",
    "closed_sequences",
    "percentile",
    "poisson_schedule",
    "QueryRouter",
    "RoutedResult",
    "ModelScoringTier",
    "PendingQuery",
    "QueryServer",
    "ServeResponse",
    "ServeStatus",
    "ServerConfig",
    "GeohashShardStrategy",
    "HashShardStrategy",
    "ShardedLocationStore",
    "ShardSnapshot",
    "ShardStrategy",
]
