"""A uniform spatial grid index over projected (meter) coordinates.

Used to accelerate radius queries during clustering and candidate retrieval:
all points within ``r`` of a query are found by scanning the
``ceil(r / cell)``-ring of neighbouring cells.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Hashable, Iterator

import numpy as np


class GridIndex:
    """Buckets (x, y) meter coordinates into square cells.

    Items are arbitrary hashable ids; coordinates are remembered so radius
    queries can do exact distance checks.
    """

    def __init__(self, cell_size_m: float) -> None:
        if cell_size_m <= 0:
            raise ValueError("cell_size_m must be positive")
        self.cell_size_m = float(cell_size_m)
        self._cells: dict[tuple[int, int], list[Hashable]] = defaultdict(list)
        self._coords: dict[Hashable, tuple[float, float]] = {}

    def __len__(self) -> int:
        return len(self._coords)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._coords

    def _cell_of(self, x: float, y: float) -> tuple[int, int]:
        return (int(math.floor(x / self.cell_size_m)), int(math.floor(y / self.cell_size_m)))

    def insert(self, item: Hashable, x: float, y: float) -> None:
        """Add ``item`` at (x, y); re-inserting an existing id moves it."""
        if item in self._coords:
            self.remove(item)
        self._coords[item] = (x, y)
        self._cells[self._cell_of(x, y)].append(item)

    def remove(self, item: Hashable) -> None:
        """Remove ``item``; raises ``KeyError`` if absent."""
        x, y = self._coords.pop(item)
        cell = self._cell_of(x, y)
        bucket = self._cells[cell]
        bucket.remove(item)
        if not bucket:
            del self._cells[cell]

    def position(self, item: Hashable) -> tuple[float, float]:
        """The stored coordinates of ``item``."""
        return self._coords[item]

    def items(self) -> Iterator[tuple[Hashable, tuple[float, float]]]:
        """Iterate over ``(item, (x, y))`` pairs."""
        return iter(self._coords.items())

    def query_radius(self, x: float, y: float, radius_m: float) -> list[Hashable]:
        """All items within ``radius_m`` (inclusive) of (x, y)."""
        if radius_m < 0:
            raise ValueError("radius_m must be non-negative")
        ring = int(math.ceil(radius_m / self.cell_size_m))
        cx, cy = self._cell_of(x, y)
        r2 = radius_m * radius_m
        found = []
        for gx in range(cx - ring, cx + ring + 1):
            for gy in range(cy - ring, cy + ring + 1):
                for item in self._cells.get((gx, gy), ()):
                    px, py = self._coords[item]
                    if (px - x) ** 2 + (py - y) ** 2 <= r2:
                        found.append(item)
        return found

    def nearest(self, x: float, y: float) -> Hashable | None:
        """The closest item to (x, y), or ``None`` when empty.

        Expands the search ring until a hit is confirmed closer than the
        next unexplored ring could be.
        """
        if not self._coords:
            return None
        cx, cy = self._cell_of(x, y)
        best: Hashable | None = None
        best_d2 = math.inf
        ring = 0
        max_ring = self._max_ring(cx, cy)
        while ring <= max_ring:
            for gx, gy in self._ring_cells(cx, cy, ring):
                for item in self._cells.get((gx, gy), ()):
                    px, py = self._coords[item]
                    d2 = (px - x) ** 2 + (py - y) ** 2
                    if d2 < best_d2:
                        best, best_d2 = item, d2
            if best is not None:
                # Anything in a farther ring is at least (ring*cell) away
                # from the query cell border; stop once that bound exceeds
                # the best hit.
                if math.sqrt(best_d2) <= ring * self.cell_size_m:
                    break
            ring += 1
        return best

    def _max_ring(self, cx: int, cy: int) -> int:
        return max(
            max(abs(gx - cx), abs(gy - cy)) for gx, gy in self._cells
        )

    @staticmethod
    def _ring_cells(cx: int, cy: int, ring: int) -> Iterator[tuple[int, int]]:
        if ring == 0:
            yield (cx, cy)
            return
        for gx in range(cx - ring, cx + ring + 1):
            yield (gx, cy - ring)
            yield (gx, cy + ring)
        for gy in range(cy - ring + 1, cy + ring):
            yield (cx - ring, gy)
            yield (cx + ring, gy)

    def to_arrays(self) -> tuple[list[Hashable], np.ndarray]:
        """All items and an ``(n, 2)`` coordinate array, aligned by index."""
        ids = list(self._coords)
        coords = np.array([self._coords[i] for i in ids], dtype=float).reshape(-1, 2)
        return ids, coords
