"""Distance functions on the sphere and in local metric planes."""

from __future__ import annotations

import math

import numpy as np

#: Mean Earth radius in meters (IUGG).
EARTH_RADIUS_M = 6_371_008.8


def haversine_m(lng1: float, lat1: float, lng2: float, lat2: float) -> float:
    """Great-circle distance between two lng/lat points, in meters."""
    phi1 = math.radians(lat1)
    phi2 = math.radians(lat2)
    dphi = phi2 - phi1
    dlmb = math.radians(lng2 - lng1)
    a = math.sin(dphi / 2.0) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlmb / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_M * math.asin(min(1.0, math.sqrt(a)))


def haversine_m_vec(
    lng1: np.ndarray,
    lat1: np.ndarray,
    lng2: np.ndarray,
    lat2: np.ndarray,
) -> np.ndarray:
    """Vectorized :func:`haversine_m`; inputs broadcast like numpy arrays."""
    phi1 = np.radians(lat1)
    phi2 = np.radians(lat2)
    dphi = phi2 - phi1
    dlmb = np.radians(np.asarray(lng2) - np.asarray(lng1))
    a = np.sin(dphi / 2.0) ** 2 + np.cos(phi1) * np.cos(phi2) * np.sin(dlmb / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_M * np.arcsin(np.minimum(1.0, np.sqrt(a)))


def euclidean_m(x1: float, y1: float, x2: float, y2: float) -> float:
    """Planar distance between two projected points, in meters."""
    return math.hypot(x2 - x1, y2 - y1)
