"""A static STR-packed R-tree over points.

Complements :class:`~repro.geo.GridIndex`: the grid is ideal for uniform
city-scale data with known density; the R-tree handles skewed
distributions (e.g. station-heavy stay-point clouds) and bounding-box
queries without tuning a cell size.  Built once (Sort-Tile-Recursive
packing), queried many times — the access pattern of candidate retrieval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Sequence

import numpy as np


@dataclass
class _Node:
    min_x: float
    min_y: float
    max_x: float
    max_y: float
    children: list["_Node"] | None  # None for leaves
    items: list[tuple[Hashable, float, float]] | None

    def intersects_box(self, qx0: float, qy0: float, qx1: float, qy1: float) -> bool:
        return not (
            self.min_x > qx1 or self.max_x < qx0 or self.min_y > qy1 or self.max_y < qy0
        )

    def min_dist2(self, x: float, y: float) -> float:
        dx = max(self.min_x - x, 0.0, x - self.max_x)
        dy = max(self.min_y - y, 0.0, y - self.max_y)
        return dx * dx + dy * dy


class RTree:
    """Immutable point R-tree with box, radius and nearest queries."""

    def __init__(
        self,
        items: Sequence[Hashable],
        coords: np.ndarray,
        leaf_size: int = 16,
    ) -> None:
        coords = np.asarray(coords, dtype=float).reshape(-1, 2)
        if len(items) != len(coords):
            raise ValueError("items and coords must align")
        if leaf_size < 2:
            raise ValueError("leaf_size must be >= 2")
        self.leaf_size = leaf_size
        self._size = len(items)
        records = [(item, float(x), float(y)) for item, (x, y) in zip(items, coords)]
        self.root = self._build(records) if records else None

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    def _build(self, records: list[tuple[Hashable, float, float]]) -> _Node:
        if len(records) <= self.leaf_size:
            xs = [r[1] for r in records]
            ys = [r[2] for r in records]
            return _Node(min(xs), min(ys), max(xs), max(ys), None, records)
        # STR packing: sort by x, slice into vertical strips, sort each
        # strip by y, chunk into nodes.
        n = len(records)
        n_nodes = math.ceil(n / self.leaf_size)
        n_strips = math.ceil(math.sqrt(n_nodes))
        by_x = sorted(records, key=lambda r: (r[1], r[2]))
        strip_size = math.ceil(n / n_strips)
        children: list[_Node] = []
        for s in range(0, n, strip_size):
            strip = sorted(by_x[s : s + strip_size], key=lambda r: (r[2], r[1]))
            for c in range(0, len(strip), self.leaf_size):
                chunk = strip[c : c + self.leaf_size]
                xs = [r[1] for r in chunk]
                ys = [r[2] for r in chunk]
                children.append(_Node(min(xs), min(ys), max(xs), max(ys), None, chunk))
        # Pack upward until a single root remains.
        while len(children) > 1:
            children = self._pack_level(children)
        return children[0]

    def _pack_level(self, nodes: list[_Node]) -> list[_Node]:
        fanout = self.leaf_size
        n_groups = math.ceil(len(nodes) / fanout)
        n_strips = math.ceil(math.sqrt(n_groups))
        by_x = sorted(nodes, key=lambda nd: (nd.min_x + nd.max_x))
        strip_size = math.ceil(len(nodes) / n_strips)
        parents: list[_Node] = []
        for s in range(0, len(by_x), strip_size):
            strip = sorted(by_x[s : s + strip_size], key=lambda nd: (nd.min_y + nd.max_y))
            for c in range(0, len(strip), fanout):
                chunk = strip[c : c + fanout]
                parents.append(
                    _Node(
                        min(nd.min_x for nd in chunk),
                        min(nd.min_y for nd in chunk),
                        max(nd.max_x for nd in chunk),
                        max(nd.max_y for nd in chunk),
                        chunk,
                        None,
                    )
                )
        return parents

    # ------------------------------------------------------------------
    def query_box(self, x0: float, y0: float, x1: float, y1: float) -> list[Hashable]:
        """Items inside the closed box ``[x0, x1] x [y0, y1]``."""
        if x0 > x1 or y0 > y1:
            raise ValueError("degenerate query box")
        found: list[Hashable] = []
        if self.root is None:
            return found
        stack = [self.root]
        while stack:
            node = stack.pop()
            if not node.intersects_box(x0, y0, x1, y1):
                continue
            if node.items is not None:
                for item, x, y in node.items:
                    if x0 <= x <= x1 and y0 <= y <= y1:
                        found.append(item)
            else:
                stack.extend(node.children)
        return found

    def query_radius(self, x: float, y: float, radius: float) -> list[Hashable]:
        """Items within ``radius`` (inclusive) of (x, y)."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        found: list[Hashable] = []
        if self.root is None:
            return found
        r2 = radius * radius
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.min_dist2(x, y) > r2:
                continue
            if node.items is not None:
                for item, px, py in node.items:
                    if (px - x) ** 2 + (py - y) ** 2 <= r2:
                        found.append(item)
            else:
                stack.extend(node.children)
        return found

    def nearest(self, x: float, y: float) -> Hashable | None:
        """The closest item to (x, y) via best-first branch and bound."""
        if self.root is None:
            return None
        import heapq

        best: Hashable | None = None
        best_d2 = math.inf
        counter = 0
        heap: list[tuple[float, int, _Node]] = [(self.root.min_dist2(x, y), counter, self.root)]
        while heap:
            d2, _, node = heapq.heappop(heap)
            if d2 >= best_d2:
                break
            if node.items is not None:
                for item, px, py in node.items:
                    pd2 = (px - x) ** 2 + (py - y) ** 2
                    if pd2 < best_d2:
                        best, best_d2 = item, pd2
            else:
                for child in node.children:
                    counter += 1
                    heapq.heappush(heap, (child.min_dist2(x, y), counter, child))
        return best
