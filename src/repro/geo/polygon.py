"""Planar polygon utilities: convex hull, point-in-polygon, area.

Used for region-of-interest style analyses over stay points and candidate
pools (the VGI literature the paper builds on extracts ROIs from exactly
this kind of data), and for visual/audit exports of candidate service
areas.  All functions operate on projected meter coordinates.
"""

from __future__ import annotations

import numpy as np


def convex_hull(points: np.ndarray) -> np.ndarray:
    """Andrew's monotone-chain convex hull.

    Returns hull vertices in counter-clockwise order (no repeated closing
    vertex).  Degenerate inputs return what they can: fewer than 3 distinct
    points yield those points.
    """
    points = np.asarray(points, dtype=float).reshape(-1, 2)
    unique = np.unique(points, axis=0)
    if len(unique) <= 2:
        return unique
    pts = unique[np.lexsort((unique[:, 1], unique[:, 0]))]

    def cross(o, a, b):
        return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])

    lower: list[np.ndarray] = []
    for p in pts:
        while len(lower) >= 2 and cross(lower[-2], lower[-1], p) <= 0:
            lower.pop()
        lower.append(p)
    upper: list[np.ndarray] = []
    for p in pts[::-1]:
        while len(upper) >= 2 and cross(upper[-2], upper[-1], p) <= 0:
            upper.pop()
        upper.append(p)
    return np.array(lower[:-1] + upper[:-1])


def polygon_area(vertices: np.ndarray) -> float:
    """Signed shoelace area (positive for counter-clockwise rings)."""
    vertices = np.asarray(vertices, dtype=float).reshape(-1, 2)
    if len(vertices) < 3:
        return 0.0
    x = vertices[:, 0]
    y = vertices[:, 1]
    return float(0.5 * np.sum(x * np.roll(y, -1) - np.roll(x, -1) * y))


def point_in_polygon(x: float, y: float, vertices: np.ndarray) -> bool:
    """Ray-casting point-in-polygon test (boundary counts as inside)."""
    vertices = np.asarray(vertices, dtype=float).reshape(-1, 2)
    n = len(vertices)
    if n < 3:
        return False
    inside = False
    for i in range(n):
        x1, y1 = vertices[i]
        x2, y2 = vertices[(i + 1) % n]
        # On-edge check (within numerical tolerance).
        cross = (x2 - x1) * (y - y1) - (y2 - y1) * (x - x1)
        if abs(cross) < 1e-9:
            if min(x1, x2) - 1e-9 <= x <= max(x1, x2) + 1e-9 and min(y1, y2) - 1e-9 <= y <= max(y1, y2) + 1e-9:
                return True
        if (y1 > y) != (y2 > y):
            x_int = x1 + (y - y1) * (x2 - x1) / (y2 - y1)
            if x < x_int:
                inside = not inside
    return inside
