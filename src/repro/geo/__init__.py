"""Geospatial primitives: points, distances, projections, GeoHash, grid index.

All distances are in meters.  Coordinates are WGS84 longitude/latitude in
degrees unless a function name says otherwise.  City-scale algorithms work in
a local equirectangular projection (meters), which is accurate to well under
a meter over the few-kilometre extents this library deals with.
"""

from repro.geo.point import Point
from repro.geo.bbox import BBox
from repro.geo.distance import (
    EARTH_RADIUS_M,
    haversine_m,
    haversine_m_vec,
    euclidean_m,
)
from repro.geo.projection import LocalProjection
from repro.geo.geohash import (
    GeohashSpatialIndex,
    geohash_encode,
    geohash_decode,
    geohash_bbox,
    geohash_neighbors,
    geohash_pack,
    geohash_pack_vec,
    geohash_ring,
    geohash_unpack,
)
from repro.geo.grid import GridIndex
from repro.geo.rtree import RTree
from repro.geo.polygon import convex_hull, point_in_polygon, polygon_area

__all__ = [
    "RTree",
    "convex_hull",
    "point_in_polygon",
    "polygon_area",
    "Point",
    "BBox",
    "EARTH_RADIUS_M",
    "haversine_m",
    "haversine_m_vec",
    "euclidean_m",
    "LocalProjection",
    "GeohashSpatialIndex",
    "geohash_encode",
    "geohash_decode",
    "geohash_bbox",
    "geohash_neighbors",
    "geohash_pack",
    "geohash_pack_vec",
    "geohash_ring",
    "geohash_unpack",
    "GridIndex",
]
