"""A WGS84 point."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Point:
    """An immutable longitude/latitude pair in degrees.

    The field order (``lng`` first) follows the GeoJSON / x-y convention.
    """

    lng: float
    lat: float

    def __post_init__(self) -> None:
        if not -180.0 <= self.lng <= 180.0:
            raise ValueError(f"longitude out of range: {self.lng!r}")
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude out of range: {self.lat!r}")

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(lng, lat)``."""
        return (self.lng, self.lat)

    def distance_m(self, other: "Point") -> float:
        """Great-circle distance to ``other`` in meters."""
        from repro.geo.distance import haversine_m

        return haversine_m(self.lng, self.lat, other.lng, other.lat)
