"""Local equirectangular projection: lng/lat degrees <-> meters."""

from __future__ import annotations

import math
from typing import Union

import numpy as np

from repro.geo.distance import EARTH_RADIUS_M
from repro.geo.point import Point

ArrayLike = Union[float, np.ndarray]


class LocalProjection:
    """A metric plane tangent to the Earth at an origin point.

    ``x`` grows eastward and ``y`` northward, both in meters.  Over a
    city-scale extent (tens of km) the distortion is negligible for the
    clustering and feature computations in this library.
    """

    def __init__(self, origin: Point) -> None:
        self.origin = origin
        self._cos_lat = math.cos(math.radians(origin.lat))
        self._m_per_deg_lat = math.pi * EARTH_RADIUS_M / 180.0
        self._m_per_deg_lng = self._m_per_deg_lat * self._cos_lat

    def content_key(self) -> tuple:
        """Identity for content fingerprinting (the origin defines the plane)."""
        return ("LocalProjection", self.origin.lng, self.origin.lat)

    def to_xy(self, lng: ArrayLike, lat: ArrayLike) -> tuple[ArrayLike, ArrayLike]:
        """Project lng/lat degrees to local x/y meters."""
        x = (np.asarray(lng, dtype=float) - self.origin.lng) * self._m_per_deg_lng
        y = (np.asarray(lat, dtype=float) - self.origin.lat) * self._m_per_deg_lat
        if np.ndim(x) == 0:
            return float(x), float(y)
        return x, y

    def to_lnglat(self, x: ArrayLike, y: ArrayLike) -> tuple[ArrayLike, ArrayLike]:
        """Unproject local x/y meters back to lng/lat degrees."""
        lng = np.asarray(x, dtype=float) / self._m_per_deg_lng + self.origin.lng
        lat = np.asarray(y, dtype=float) / self._m_per_deg_lat + self.origin.lat
        if np.ndim(lng) == 0:
            return float(lng), float(lat)
        return lng, lat

    def project_point(self, point: Point) -> tuple[float, float]:
        """Project a :class:`Point` to x/y meters."""
        return self.to_xy(point.lng, point.lat)  # type: ignore[return-value]

    def unproject_point(self, x: float, y: float) -> Point:
        """Unproject x/y meters to a :class:`Point`."""
        lng, lat = self.to_lnglat(x, y)
        return Point(float(lng), float(lat))
