"""Axis-aligned bounding boxes in lng/lat space."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.geo.point import Point


@dataclass(frozen=True)
class BBox:
    """A closed axis-aligned box ``[min_lng, max_lng] x [min_lat, max_lat]``."""

    min_lng: float
    min_lat: float
    max_lng: float
    max_lat: float

    def __post_init__(self) -> None:
        if self.min_lng > self.max_lng or self.min_lat > self.max_lat:
            raise ValueError(f"degenerate bbox: {self!r}")

    @classmethod
    def from_points(cls, points: Iterable[Point]) -> "BBox":
        """The tightest box containing all ``points`` (must be non-empty)."""
        pts = list(points)
        if not pts:
            raise ValueError("cannot build a BBox from zero points")
        lngs = [p.lng for p in pts]
        lats = [p.lat for p in pts]
        return cls(min(lngs), min(lats), max(lngs), max(lats))

    @property
    def center(self) -> Point:
        """The box centroid."""
        return Point((self.min_lng + self.max_lng) / 2.0, (self.min_lat + self.max_lat) / 2.0)

    def contains(self, point: Point) -> bool:
        """Whether ``point`` lies inside or on the border of the box."""
        return (
            self.min_lng <= point.lng <= self.max_lng
            and self.min_lat <= point.lat <= self.max_lat
        )

    def intersects(self, other: "BBox") -> bool:
        """Whether the two boxes share any point."""
        return not (
            other.min_lng > self.max_lng
            or other.max_lng < self.min_lng
            or other.min_lat > self.max_lat
            or other.max_lat < self.min_lat
        )

    def expanded(self, dlng: float, dlat: float) -> "BBox":
        """A copy grown by ``dlng``/``dlat`` degrees on every side."""
        return BBox(
            self.min_lng - dlng,
            self.min_lat - dlat,
            self.max_lng + dlng,
            self.max_lat + dlat,
        )
