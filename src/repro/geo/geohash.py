"""Pure-python GeoHash encoding/decoding plus a packed-cell spatial index.

GeoHash 8 cells are roughly 38 m x 19 m at mid latitudes; the UNet-based
baseline (Section V) rasterizes annotated locations onto a 9 x 9 grid of
GeoHash-8 cells.

The serving tier reuses the same cells for two jobs: a
:class:`~repro.serve.shard.GeohashShardStrategy` routes an address to a
shard by hashing its cell, and :class:`GeohashSpatialIndex` answers
nearest-candidate queries by expanding :func:`geohash_ring` rings around
the query cell instead of scanning every point.  Cells pack into uint64
codes (5 bits per character) so the index is a trio of flat numpy arrays
that serializes directly into the columnar snapshot file
(:mod:`repro.serve.columnar`).
"""

from __future__ import annotations

import math

import numpy as np

from repro.geo.bbox import BBox
from repro.geo.distance import haversine_m, haversine_m_vec
from repro.geo.point import Point

_BASE32 = "0123456789bcdefghjkmnpqrstuvwxyz"
_BASE32_INDEX = {c: i for i, c in enumerate(_BASE32)}


def geohash_encode(lng: float, lat: float, precision: int = 8) -> str:
    """Encode a lng/lat pair into a GeoHash string of ``precision`` chars."""
    if precision < 1:
        raise ValueError("precision must be >= 1")
    lat_lo, lat_hi = -90.0, 90.0
    lng_lo, lng_hi = -180.0, 180.0
    bits = []
    even = True  # longitude bit first
    while len(bits) < precision * 5:
        if even:
            mid = (lng_lo + lng_hi) / 2.0
            if lng >= mid:
                bits.append(1)
                lng_lo = mid
            else:
                bits.append(0)
                lng_hi = mid
        else:
            mid = (lat_lo + lat_hi) / 2.0
            if lat >= mid:
                bits.append(1)
                lat_lo = mid
            else:
                bits.append(0)
                lat_hi = mid
        even = not even
    chars = []
    for i in range(0, len(bits), 5):
        value = 0
        for b in bits[i : i + 5]:
            value = (value << 1) | b
        chars.append(_BASE32[value])
    return "".join(chars)


def geohash_bbox(geohash: str) -> BBox:
    """The bounding box covered by a GeoHash cell."""
    if not geohash:
        raise ValueError("empty geohash")
    lat_lo, lat_hi = -90.0, 90.0
    lng_lo, lng_hi = -180.0, 180.0
    even = True
    for char in geohash:
        try:
            value = _BASE32_INDEX[char]
        except KeyError:
            raise ValueError(f"invalid geohash character: {char!r}") from None
        for shift in range(4, -1, -1):
            bit = (value >> shift) & 1
            if even:
                mid = (lng_lo + lng_hi) / 2.0
                if bit:
                    lng_lo = mid
                else:
                    lng_hi = mid
            else:
                mid = (lat_lo + lat_hi) / 2.0
                if bit:
                    lat_lo = mid
                else:
                    lat_hi = mid
            even = not even
    return BBox(lng_lo, lat_lo, lng_hi, lat_hi)


def geohash_decode(geohash: str) -> Point:
    """The center point of a GeoHash cell."""
    return geohash_bbox(geohash).center


def geohash_neighbors(geohash: str) -> list[str]:
    """The 8 surrounding cells (re-encoded from offset centers)."""
    return geohash_ring(geohash, 1)


def geohash_ring(geohash: str, k: int) -> list[str]:
    """Cells at Chebyshev distance exactly ``k`` from ``geohash``.

    ``k == 0`` is the cell itself; ``k == 1`` is the classic 8-neighbor
    ring.  Cells are re-encoded from offset centers and deduplicated.
    Longitude offsets wrap across the antimeridian (a ring around a cell
    near lng 180 includes cells near lng -180); latitude offsets past
    the poles are dropped, so rings near the poles shrink instead of
    raising.
    """
    if k < 0:
        raise ValueError(f"ring distance must be >= 0: {k}")
    if k == 0:
        return [geohash]
    box = geohash_bbox(geohash)
    dlng = box.max_lng - box.min_lng
    dlat = box.max_lat - box.min_lat
    center = box.center
    offsets: list[tuple[int, int]] = []
    for dx in range(-k, k + 1):
        offsets.append((dx, -k))
        offsets.append((dx, k))
    for dy in range(-k + 1, k):
        offsets.append((-k, dy))
        offsets.append((k, dy))
    out: list[str] = []
    seen: set[str] = set()
    precision = len(geohash)
    for dx, dy in offsets:
        lat = center.lat + dy * dlat
        if not -90.0 <= lat <= 90.0:
            continue
        lng = ((center.lng + dx * dlng + 180.0) % 360.0) - 180.0
        cell = geohash_encode(lng, lat, precision)
        if cell not in seen:
            seen.add(cell)
            out.append(cell)
    return out


# ---------------------------------------------------------------------------
# Packed cells: a geohash string <-> one uint64 (5 bits per character)
# ---------------------------------------------------------------------------

#: Longest geohash that still packs into an unsigned 64-bit integer.
MAX_PACKED_PRECISION = 12


def geohash_pack(geohash: str) -> int:
    """Pack a geohash string into one integer, 5 bits per character.

    Only cells of equal precision compare meaningfully; the columnar
    snapshot stores the precision next to the packed array.
    """
    if not geohash:
        raise ValueError("empty geohash")
    if len(geohash) > MAX_PACKED_PRECISION:
        raise ValueError(f"geohash too long to pack: {geohash!r}")
    value = 0
    for char in geohash:
        try:
            value = (value << 5) | _BASE32_INDEX[char]
        except KeyError:
            raise ValueError(f"invalid geohash character: {char!r}") from None
    return value


def geohash_unpack(code: int, precision: int) -> str:
    """Inverse of :func:`geohash_pack` for a known precision."""
    if precision < 1 or precision > MAX_PACKED_PRECISION:
        raise ValueError(f"invalid precision: {precision}")
    chars = []
    for i in range(precision):
        chars.append(_BASE32[(code >> (5 * (precision - 1 - i))) & 0x1F])
    return "".join(chars)


def geohash_pack_vec(
    lngs: np.ndarray, lats: np.ndarray, precision: int
) -> np.ndarray:
    """Packed geohash codes for arrays of coordinates, fully vectorized.

    Bit-exact with ``geohash_pack(geohash_encode(lng, lat, precision))``:
    geohash encoding is binary subdivision, so the lng/lat bit strings are
    just the top bits of the quantized coordinates, interleaved starting
    with longitude.
    """
    if precision < 1 or precision > MAX_PACKED_PRECISION:
        raise ValueError(f"invalid precision: {precision}")
    lngs = np.asarray(lngs, dtype=np.float64)
    lats = np.asarray(lats, dtype=np.float64)
    total_bits = precision * 5
    n_lng_bits = (total_bits + 1) // 2  # longitude bit comes first
    n_lat_bits = total_bits // 2
    lng_q = np.floor((lngs + 180.0) / 360.0 * (1 << n_lng_bits)).astype(np.uint64)
    lat_q = np.floor((lats + 90.0) / 180.0 * (1 << n_lat_bits)).astype(np.uint64)
    np.minimum(lng_q, np.uint64((1 << n_lng_bits) - 1), out=lng_q)
    np.minimum(lat_q, np.uint64((1 << n_lat_bits) - 1), out=lat_q)
    codes = np.zeros(lngs.shape, dtype=np.uint64)
    lng_shift, lat_shift = n_lng_bits, n_lat_bits
    for bit in range(total_bits):
        if bit % 2 == 0:
            lng_shift -= 1
            next_bit = (lng_q >> np.uint64(lng_shift)) & np.uint64(1)
        else:
            lat_shift -= 1
            next_bit = (lat_q >> np.uint64(lat_shift)) & np.uint64(1)
        codes = (codes << np.uint64(1)) | next_bit
    return codes


class GeohashSpatialIndex:
    """Nearest-candidate retrieval over geohash cells, ring by ring.

    Points are bucketed by their packed geohash cell; :meth:`nearest`
    expands :func:`geohash_ring` rings around the query cell and stops as
    soon as the best hit provably beats anything a farther ring could
    hold (the same termination argument as
    :class:`repro.geo.grid.GridIndex`, with cell extents measured at the
    query latitude).  The index is three flat arrays — sorted unique cell
    codes, bucket offsets, and the row permutation — so it mmaps straight
    out of a columnar snapshot file without rebuild.
    """

    def __init__(
        self,
        lngs: np.ndarray,
        lats: np.ndarray,
        precision: int,
        cell_codes: np.ndarray,
        cell_starts: np.ndarray,
        cell_rows: np.ndarray,
    ) -> None:
        self.lngs = np.asarray(lngs, dtype=np.float64)
        self.lats = np.asarray(lats, dtype=np.float64)
        self.precision = precision
        self.cell_codes = np.asarray(cell_codes, dtype=np.uint64)
        self.cell_starts = np.asarray(cell_starts, dtype=np.int64)
        self.cell_rows = np.asarray(cell_rows, dtype=np.int64)

    @classmethod
    def build(
        cls, lngs: np.ndarray, lats: np.ndarray, precision: int = 6
    ) -> "GeohashSpatialIndex":
        """Bucket ``(lngs, lats)`` rows by packed geohash cell."""
        lngs = np.asarray(lngs, dtype=np.float64)
        lats = np.asarray(lats, dtype=np.float64)
        if lngs.shape != lats.shape or lngs.ndim != 1:
            raise ValueError("lngs/lats must be 1-d arrays of equal length")
        codes = geohash_pack_vec(lngs, lats, precision)
        order = np.argsort(codes, kind="stable").astype(np.int64)
        sorted_codes = codes[order]
        unique_codes, starts = np.unique(sorted_codes, return_index=True)
        cell_starts = np.empty(len(unique_codes) + 1, dtype=np.int64)
        cell_starts[:-1] = starts
        cell_starts[-1] = len(sorted_codes)
        return cls(lngs, lats, precision, unique_codes, cell_starts, order)

    def __len__(self) -> int:
        return int(self.lngs.shape[0])

    def rows_in_cells(self, codes: np.ndarray) -> np.ndarray:
        """All row indices bucketed under any of the packed ``codes``."""
        codes = np.asarray(codes, dtype=np.uint64)
        pos = np.searchsorted(self.cell_codes, codes)
        pos = np.minimum(pos, len(self.cell_codes) - 1) if len(self.cell_codes) else pos
        chunks = []
        for p, code in zip(pos, codes):
            if len(self.cell_codes) and self.cell_codes[p] == code:
                chunks.append(self.cell_rows[self.cell_starts[p] : self.cell_starts[p + 1]])
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(chunks)

    #: Latitude beyond which cell widths collapse and the ring bound
    #: would demand thousands of rings; :meth:`nearest` scans linearly.
    POLAR_LAT = 85.0

    def _cell_extent_m(self, cell: str, lat: float) -> float:
        """The smaller cell dimension in meters, measured at ``lat``.

        Measured at the *actual* query latitude: the termination bound
        needs a lower bound on cell width, and widths only shrink as
        ``|lat|`` grows, so clamping toward the equator would overstate
        the extent and let the ring search stop early near the poles.
        """
        box = geohash_bbox(cell)
        width = haversine_m(box.min_lng, lat, box.max_lng, lat)
        height = haversine_m(box.min_lng, box.min_lat, box.min_lng, box.max_lat)
        return max(1e-9, min(width, height))

    def nearest(self, lng: float, lat: float) -> tuple[int, float] | None:
        """``(row, distance_m)`` of the closest indexed point, or ``None``.

        Ring search: scan ring ``k`` around the query cell, keep the best
        hit, and stop once ``best_d <= k * min_cell_extent`` — no point in
        ring ``k+1`` or beyond can be closer.  Falls back to
        :meth:`nearest_linear` if the rings exhaust the data extent
        without a hit (query far outside the indexed area).
        """
        n = len(self)
        if n == 0:
            return None
        if abs(lat) > self.POLAR_LAT:
            # Near the poles one ring step covers only meters of
            # longitude; the exact scan is cheaper than the thousands
            # of rings the termination bound would require.
            return self.nearest_linear(lng, lat)
        query_cell = geohash_encode(lng, lat, self.precision)
        extent = self._cell_extent_m(query_cell, lat)
        far = max(
            haversine_m(lng, lat, float(self.lngs[i]), float(self.lats[i]))
            for i in (int(np.argmin(self.lngs)), int(np.argmax(self.lngs)),
                      int(np.argmin(self.lats)), int(np.argmax(self.lats)))
        )
        max_ring = min(2048, int(math.ceil(far / extent)) + 1)
        best_row, best_d = -1, math.inf
        for ring in range(max_ring + 1):
            cells = geohash_ring(query_cell, ring)
            codes = np.array([geohash_pack(c) for c in cells], dtype=np.uint64)
            rows = self.rows_in_cells(codes)
            if rows.size:
                d = haversine_m_vec(self.lngs[rows], self.lats[rows], lng, lat)
                i = int(np.argmin(d))
                if float(d[i]) < best_d:
                    best_d = float(d[i])
                    best_row = int(rows[i])
            if best_row >= 0 and best_d <= ring * extent:
                return best_row, best_d
        # Rings exhausted without a provable stop: the remaining points sit
        # beyond the scanned extent, so only the exact scan can rank them.
        return self.nearest_linear(lng, lat)

    def nearest_linear(self, lng: float, lat: float) -> tuple[int, float] | None:
        """Reference linear scan; parity oracle for :meth:`nearest`."""
        if len(self) == 0:
            return None
        d = haversine_m_vec(self.lngs, self.lats, lng, lat)
        row = int(np.argmin(d))
        return row, float(d[row])
