"""Pure-python GeoHash encoding/decoding.

GeoHash 8 cells are roughly 38 m x 19 m at mid latitudes; the UNet-based
baseline (Section V) rasterizes annotated locations onto a 9 x 9 grid of
GeoHash-8 cells.
"""

from __future__ import annotations

from repro.geo.bbox import BBox
from repro.geo.point import Point

_BASE32 = "0123456789bcdefghjkmnpqrstuvwxyz"
_BASE32_INDEX = {c: i for i, c in enumerate(_BASE32)}


def geohash_encode(lng: float, lat: float, precision: int = 8) -> str:
    """Encode a lng/lat pair into a GeoHash string of ``precision`` chars."""
    if precision < 1:
        raise ValueError("precision must be >= 1")
    lat_lo, lat_hi = -90.0, 90.0
    lng_lo, lng_hi = -180.0, 180.0
    bits = []
    even = True  # longitude bit first
    while len(bits) < precision * 5:
        if even:
            mid = (lng_lo + lng_hi) / 2.0
            if lng >= mid:
                bits.append(1)
                lng_lo = mid
            else:
                bits.append(0)
                lng_hi = mid
        else:
            mid = (lat_lo + lat_hi) / 2.0
            if lat >= mid:
                bits.append(1)
                lat_lo = mid
            else:
                bits.append(0)
                lat_hi = mid
        even = not even
    chars = []
    for i in range(0, len(bits), 5):
        value = 0
        for b in bits[i : i + 5]:
            value = (value << 1) | b
        chars.append(_BASE32[value])
    return "".join(chars)


def geohash_bbox(geohash: str) -> BBox:
    """The bounding box covered by a GeoHash cell."""
    if not geohash:
        raise ValueError("empty geohash")
    lat_lo, lat_hi = -90.0, 90.0
    lng_lo, lng_hi = -180.0, 180.0
    even = True
    for char in geohash:
        try:
            value = _BASE32_INDEX[char]
        except KeyError:
            raise ValueError(f"invalid geohash character: {char!r}") from None
        for shift in range(4, -1, -1):
            bit = (value >> shift) & 1
            if even:
                mid = (lng_lo + lng_hi) / 2.0
                if bit:
                    lng_lo = mid
                else:
                    lng_hi = mid
            else:
                mid = (lat_lo + lat_hi) / 2.0
                if bit:
                    lat_lo = mid
                else:
                    lat_hi = mid
            even = not even
    return BBox(lng_lo, lat_lo, lng_hi, lat_hi)


def geohash_decode(geohash: str) -> Point:
    """The center point of a GeoHash cell."""
    return geohash_bbox(geohash).center


def geohash_neighbors(geohash: str) -> list[str]:
    """The 8 surrounding cells (re-encoded from offset centers)."""
    box = geohash_bbox(geohash)
    dlng = box.max_lng - box.min_lng
    dlat = box.max_lat - box.min_lat
    center = box.center
    out = []
    for dy in (-1, 0, 1):
        for dx in (-1, 0, 1):
            if dx == 0 and dy == 0:
                continue
            lng = center.lng + dx * dlng
            lat = center.lat + dy * dlat
            if -180.0 <= lng <= 180.0 and -90.0 <= lat <= 90.0:
                out.append(geohash_encode(lng, lat, len(geohash)))
    return out
