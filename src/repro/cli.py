"""Command-line interface.

Workflow:

.. code-block:: bash

    python -m repro generate --preset downbj --out data/
    python -m repro evaluate --data data/ --methods Geocoding,DLInfMA
    python -m repro infer    --data data/ --out data/locations.json
    python -m repro query    --data data/ --locations data/locations.json \
                             --address-id a00042
    python -m repro serve-bench --data data/ --locations data/locations.json \
                             --workload open --rate 500 --duration 2

``generate`` writes trips/addresses/ground-truth/split files; ``evaluate``
reproduces a Table II-style comparison on them; ``infer`` runs the full
DLInfMA pipeline and dumps the address→location table; ``query`` answers a
single lookup through the deployed store's fallback chain; ``serve-bench``
load-tests the concurrent sharded serving tier (:mod:`repro.serve`) and
reports p50/p95/p99 latency, throughput, cache hit rate, and rejections.

Observability: ``evaluate``, ``update``, and ``serve-bench`` accept
``--trace PATH`` (write a JSON-lines span trace), ``--metrics-out PATH``
(export the metrics registry as JSON, or Prometheus text for
``.prom``/``.txt`` suffixes), ``--profile PATH`` (sampling wall-clock
profile, speedscope JSON or collapsed text by suffix), ``--memory PATH``
(per-stage tracemalloc snapshots), and ``--json`` (machine-readable report
on stdout); ``repro metrics PATH`` renders a saved metrics file as a table.

Health: ``repro health --metrics m.json --slo slo.yaml`` evaluates
declarative SLOs against an exported metrics file and exits nonzero on any
violation; ``serve-bench --slo slo.yaml`` applies the same objectives to
the live request windows (with burn rates); ``update --drift-out d.json``
compares pool/matcher fingerprints before and after the incremental batch;
``repro profile -- <subcommand ...>`` wraps any subcommand in the sampling
profiler.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro import obs
from repro.apps import DeliveryLocationStore
from repro.core import DLInfMA, DLInfMAConfig
from repro.core.persistence import load_locations, save_locations
from repro.eval import Workload, evaluate, metrics_table, run_methods
from repro.geo import BBox, LocalProjection
from repro.synth import (
    AddressSplit,
    downbj_config,
    generate_dataset,
    split_addresses_by_region,
    subbj_config,
    tiny_config,
)
from repro.synth.io import (
    load_addresses,
    load_ground_truth,
    load_trips,
    save_addresses,
    save_ground_truth,
    save_trips,
)

PRESETS = {"downbj": downbj_config, "subbj": subbj_config, "tiny": tiny_config}


def _cmd_generate(args: argparse.Namespace) -> int:
    factory = PRESETS[args.preset]
    config = factory(seed=args.seed) if args.preset == "tiny" else factory(
        scale=args.scale, seed=args.seed
    )
    dataset = generate_dataset(config)
    split = split_addresses_by_region(dataset)
    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    save_trips(dataset.trips, out / "trips.jsonl")
    save_addresses(dataset.addresses, out / "addresses.json")
    save_ground_truth(dataset.ground_truth, out / "ground_truth.json")
    (out / "split.json").write_text(
        json.dumps({"train": split.train, "val": split.val, "test": split.test})
    )
    stats = dataset.stats()
    print(f"generated {dataset.name}-like dataset into {out}/")
    for key, value in stats.items():
        print(f"  {key:<12} {value:.0f}")
    return 0


def _load_workload(data_dir: pathlib.Path) -> Workload:
    trips = load_trips(data_dir / "trips.jsonl")
    addresses = load_addresses(data_dir / "addresses.json")
    ground_truth = load_ground_truth(data_dir / "ground_truth.json")
    split_payload = json.loads((data_dir / "split.json").read_text())
    split = AddressSplit(
        tuple(split_payload["train"]),
        tuple(split_payload["val"]),
        tuple(split_payload["test"]),
    )
    box = BBox.from_points([a.geocode for a in addresses.values()])
    projection = LocalProjection(box.center)
    return Workload(
        trips=trips,
        addresses=addresses,
        ground_truth=ground_truth,
        split=split,
        projection=projection,
    )


def _print_stage_timings(rows, indent: str = "  ") -> None:
    """Print ``(stage, seconds)`` rows; accepts a legacy timings dict too."""
    if isinstance(rows, dict):
        rows = [
            (key[:-2] if key.endswith("_s") else key, seconds)
            for key, seconds in rows.items()
        ]
    for stage, seconds in rows:
        print(f"{indent}{stage:<24} {seconds * 1000.0:9.1f} ms")


def _begin_observability(args: argparse.Namespace) -> None:
    if getattr(args, "trace", None):
        obs.configure_tracing(args.trace)
    if getattr(args, "profile", None):
        args._sampler = obs.SamplingProfiler().start()
    if getattr(args, "memory", None):
        obs.configure_memory_profiling()


def _end_observability(args: argparse.Namespace, config=None) -> None:
    quiet = getattr(args, "json", False)
    if getattr(args, "metrics_out", None):
        obs.export_metrics(args.metrics_out, meta=obs.run_metadata(config))
        if not quiet:
            print(f"metrics -> {args.metrics_out}")
    if getattr(args, "trace", None):
        obs.disable_tracing()
        if not quiet:
            print(f"trace -> {args.trace}")
    sampler = getattr(args, "_sampler", None)
    if sampler is not None:
        profile = sampler.stop()
        profile.save(args.profile)
        if not quiet:
            print(f"profile -> {args.profile} "
                  f"({profile.n_ticks} ticks @ {profile.hz:.0f} Hz)")
    if getattr(args, "memory", None):
        memory = obs.disable_memory_profiling()
        if memory is not None:
            memory.save(args.memory)
            if not quiet:
                print(f"memory -> {args.memory} "
                      f"({len(memory.snapshots)} stage snapshots)")


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """The shared --trace/--metrics-out/--profile/--memory flag group."""
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write a JSON-lines span trace to PATH")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="export metrics to PATH (.json, or .prom/.txt "
                             "for Prometheus text format)")
    parser.add_argument("--profile", default=None, metavar="PATH",
                        help="sampling wall-clock profile to PATH (speedscope "
                             "JSON, or collapsed text for .txt/.collapsed)")
    parser.add_argument("--memory", default=None, metavar="PATH",
                        help="per-stage tracemalloc snapshots to PATH (JSON)")


def _cmd_evaluate(args: argparse.Namespace) -> int:
    _begin_observability(args)
    workload = _load_workload(pathlib.Path(args.data))
    names = [n.strip() for n in args.methods.split(",") if n.strip()]
    runs = run_methods(workload, names, seed=args.seed, fast=args.fast)
    results = {
        name: evaluate(run.predictions, workload.ground_truth)
        for name, run in runs.items()
    }
    if args.json:
        payload = {
            "data": args.data,
            "seed": args.seed,
            "fast": args.fast,
            "methods": {
                name: {
                    "mae_m": results[name].mae,
                    "p95_m": results[name].p95,
                    "beta50_pct": results[name].beta50,
                    "n": results[name].n,
                    "fit_seconds": runs[name].fit_seconds,
                    "predict_seconds": runs[name].predict_seconds,
                    "stage_timings_s": [
                        [stage, seconds] for stage, seconds in runs[name].stage_rows
                    ],
                }
                for name in names
            },
        }
        print(json.dumps(payload, indent=2))
    else:
        print(metrics_table(
            results, title=f"Evaluation on {args.data} (test addresses)", order=names
        ))
        if args.timings:
            print()
            print("Per-stage engine timings:")
            for name in names:
                run = runs[name]
                if not run.stage_rows:
                    continue
                print(f"{name}:")
                _print_stage_timings(run.stage_rows)
    _end_observability(
        args, config={"command": "evaluate", "methods": names, "seed": args.seed,
                      "fast": args.fast}
    )
    return 0


def _model_fingerprints(model: DLInfMA) -> list:
    """Pool + (when scorable) matcher fingerprints of a fitted pipeline."""
    from repro.obs.drift import matcher_fingerprint, pool_fingerprint

    fingerprints = [
        pool_fingerprint(model.pool, model.extractor.profiles, model.examples)
    ]
    if model.selector is not None and model.examples:
        fingerprints.append(matcher_fingerprint(model.selector, model.examples))
    return fingerprints


def _cmd_update(args: argparse.Namespace) -> int:
    _begin_observability(args)
    workload = _load_workload(pathlib.Path(args.data))
    new_trips = load_trips(args.new_trips)
    model = DLInfMA(DLInfMAConfig(selector=args.selector))
    model.fit(
        workload.trips,
        workload.addresses,
        workload.ground_truth,
        workload.train_ids,
        workload.val_ids,
        projection=workload.projection,
    )
    fit_rows = model.context.timing_rows()
    baseline_fps = _model_fingerprints(model) if args.drift_out else []
    model.update(
        new_trips, workload.ground_truth, workload.train_ids, workload.val_ids
    )
    update_rows = model.context.timing_rows()
    drift_reports = []
    if args.drift_out:
        from repro.obs.drift import compare_fingerprints, save_drift_report

        current = {fp.kind: fp for fp in _model_fingerprints(model)}
        drift_reports = [
            compare_fingerprints(base, current[base.kind])
            for base in baseline_fps
            if base.kind in current
        ]
        save_drift_report(drift_reports, args.drift_out)
    delivered = sorted(model.extractor.trips_by_address)
    locations = model.predict(delivered)
    save_locations(locations, args.out)
    n_new = model.counters.get("stay_point_extraction.trips", len(new_trips))
    counters = model.counters
    if args.json:
        payload = {
            "submitted": len(new_trips),
            "absorbed": n_new,
            "total_trips": len(model.extractor.trips),
            "locations_out": str(args.out),
            "n_locations": len(locations),
            "examples_refreshed": counters.get("feature_extraction.examples_refreshed", 0),
            "examples_rebuilt": counters.get("feature_extraction.examples_rebuilt", 0),
            "addresses_affected": counters.get("feature_extraction.addresses_affected", 0),
            "fit_stage_timings_s": [[s, t] for s, t in fit_rows],
            "update_stage_timings_s": [[s, t] for s, t in update_rows],
        }
        if args.drift_out:
            payload["drift"] = {
                "out": str(args.drift_out),
                "drifted": any(r.drifted for r in drift_reports),
                "reports": [r.to_dict() for r in drift_reports],
            }
        print(json.dumps(payload, indent=2))
    else:
        print(f"absorbed {n_new} new trips of {len(new_trips)} submitted "
              f"({len(model.extractor.trips)} total) -> {args.out}")
        print(f"refreshed {counters.get('feature_extraction.examples_refreshed', 0)}"
              f" + rebuilt {counters.get('feature_extraction.examples_rebuilt', 0)}"
              f" address examples "
              f"({counters.get('feature_extraction.addresses_affected', 0)} affected)")
        for report in drift_reports:
            print(report.render())
        if args.drift_out:
            print(f"drift report -> {args.drift_out}")
        if args.timings:
            print()
            print("initial fit:")
            _print_stage_timings(fit_rows)
            print(f"incremental update ({n_new} trips):")
            _print_stage_timings(update_rows)
    _end_observability(
        args, config={"command": "update", "selector": args.selector}
    )
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    path = pathlib.Path(args.path)
    if not path.exists():
        print(f"no such metrics file: {path}", file=sys.stderr)
        return 1
    try:
        payload = obs.load_metrics(path)
    except json.JSONDecodeError:
        print(f"not a JSON metrics file: {path} "
              "(Prometheus text exports are already human-readable)", file=sys.stderr)
        return 1
    try:
        print(obs.render_metrics(payload))
    except TypeError as exc:
        print(f"malformed metrics file {path}: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_health(args: argparse.Namespace) -> int:
    """Evaluate an SLO spec against an exported metrics file.

    Exit codes: 0 healthy, 1 any objective violated (or no data for it),
    2 unreadable inputs — so CI can gate on the verdict directly.
    """
    from repro.obs.health import evaluate_slos, load_slo_file

    metrics_path = pathlib.Path(args.metrics)
    slo_path = pathlib.Path(args.slo)
    try:
        slos = load_slo_file(slo_path)
    except (OSError, ValueError, KeyError) as exc:
        print(f"cannot load SLO spec {slo_path}: {exc}", file=sys.stderr)
        return 2
    try:
        payload = obs.load_metrics(metrics_path)
    except OSError as exc:
        print(f"cannot read metrics file {metrics_path}: {exc}", file=sys.stderr)
        return 2
    except json.JSONDecodeError:
        print(f"not a JSON metrics file: {metrics_path} "
              "(point --metrics at a --metrics-out .json export)", file=sys.stderr)
        return 2
    report = evaluate_slos(payload, slos, source=str(metrics_path))
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    return report.exit_code


def _cmd_profile(args: argparse.Namespace) -> int:
    """Run any subcommand under the sampling profiler."""
    rest = list(args.rest)
    if rest and rest[0] == "--":
        rest = rest[1:]
    if not rest:
        print("profile: missing subcommand (usage: repro profile [-- ] "
              "<subcommand> ...)", file=sys.stderr)
        return 2
    sampler = obs.SamplingProfiler(hz=args.hz).start()
    try:
        code = main(rest)
    finally:
        profile = sampler.stop()
    if args.out:
        profile.save(args.out)
        print(f"profile -> {args.out} "
              f"({profile.n_ticks} ticks @ {profile.hz:.0f} Hz, "
              f"{profile.duration_s:.2f} s)")
    rows = profile.top(args.top)
    if rows:
        print(f"top {len(rows)} frames by self time:")
        for frame, self_s, total_s in rows:
            print(f"  {frame:<48} self {self_s:7.3f} s  total {total_s:7.3f} s")
    return code


def _cmd_infer(args: argparse.Namespace) -> int:
    workload = _load_workload(pathlib.Path(args.data))
    model = DLInfMA(DLInfMAConfig(selector=args.selector))
    model.fit(
        workload.trips,
        workload.addresses,
        workload.ground_truth,
        workload.train_ids,
        workload.val_ids,
        projection=workload.projection,
    )
    delivered = sorted({a for trip in workload.trips for a in trip.address_ids})
    locations = model.predict(delivered)
    save_locations(locations, args.out)
    errors = evaluate(
        {a: p for a, p in locations.items() if a in workload.test_ids},
        workload.ground_truth,
    )
    print(f"inferred {len(locations)} delivery locations -> {args.out}")
    print(f"held-out test MAE {errors.mae:.1f} m, P95 {errors.p95:.1f} m, "
          f"β50 {errors.beta50:.1f}%")
    return 0


def _cmd_crossval(args: argparse.Namespace) -> int:
    from repro.eval import cross_validate, series_table

    factory = PRESETS[args.preset]
    config = factory(seed=args.seed) if args.preset == "tiny" else factory(
        scale=args.scale, seed=args.seed
    )
    dataset = generate_dataset(config)
    methods = [n.strip() for n in args.methods.split(",") if n.strip()]
    results = cross_validate(dataset, methods, n_folds=args.folds, fast=args.fast)
    rows = []
    for name in methods:
        cv = results[name]
        lo, hi = cv.mae_ci
        rows.append((name, cv.mae_mean, lo, hi, cv.beta50_mean))
    print(series_table(
        rows,
        headers=["method", "MAE(m)", "CI lo", "CI hi", "β50(%)"],
        title=f"{args.folds}-fold spatial cross-validation ({dataset.name}-like)",
    ))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from collections import Counter

    from repro.core import DLInfMAConfig, build_artifacts, extract_trip_stay_points
    from repro.eval import histogram_text, series_table

    workload = _load_workload(pathlib.Path(args.data))
    trips = workload.trips
    n_waybills = sum(len(t.waybills) for t in trips)
    n_points = sum(len(t.trajectory) for t in trips)
    print(series_table(
        [
            ("trips", len(trips)),
            ("couriers", len({t.courier_id for t in trips})),
            ("addresses", len({a for t in trips for a in t.address_ids})),
            ("waybills", n_waybills),
            ("gps points", n_points),
        ],
        headers=["quantity", "value"],
        title=f"Dataset statistics for {args.data}",
    ))

    deliveries = Counter()
    for trip in trips:
        for address_id in trip.address_ids:
            deliveries[address_id] += 1
    per_addr = Counter(deliveries.values())
    print()
    print(histogram_text(per_addr, title="Deliveries per address"))

    stays = extract_trip_stay_points(trips)
    per_trip = Counter(len(v) for v in stays.values())
    print()
    print(histogram_text(per_trip, title="Stay points per trip"))

    artifacts = build_artifacts(trips, workload.addresses, workload.projection, DLInfMAConfig())
    per_example = Counter(e.n_candidates for e in artifacts.examples.values())
    print()
    print(histogram_text(per_example, title=f"Candidates per address (pool={len(artifacts.pool)})"))
    return 0


def _cmd_export_geojson(args: argparse.Namespace) -> int:
    from repro.core import DLInfMAConfig, build_artifacts
    from repro.eval import pool_to_geojson, predictions_to_geojson, write_geojson

    workload = _load_workload(pathlib.Path(args.data))
    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    artifacts = build_artifacts(
        workload.trips, workload.addresses, workload.projection, DLInfMAConfig()
    )
    write_geojson(pool_to_geojson(artifacts.pool), out_dir / "candidates.geojson")
    written = ["candidates.geojson"]
    if args.locations:
        locations = load_locations(args.locations)
        write_geojson(
            predictions_to_geojson(locations, workload.ground_truth),
            out_dir / "predictions.geojson",
        )
        written.append("predictions.geojson")
    print(f"wrote {', '.join(written)} to {out_dir}/")
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    import contextlib
    import random
    import tempfile
    import threading
    import time as _time

    from repro.serve import (
        GeohashShardStrategy,
        HashShardStrategy,
        LoadGenerator,
        ProcessRouter,
        QueryServer,
        ServerConfig,
        ShardedLocationStore,
        SnapshotPublisher,
    )

    slos = []
    if args.slo:
        from repro.obs.health import load_slo_file

        try:
            slos = load_slo_file(args.slo)
        except (OSError, ValueError, KeyError) as exc:
            print(f"cannot load SLO spec {args.slo}: {exc}", file=sys.stderr)
            return 2
    if args.no_exemplars:
        obs.set_exemplars_enabled(False)
    _begin_observability(args)
    data_dir = pathlib.Path(args.data)
    addresses = load_addresses(data_dir / "addresses.json")
    locations = load_locations(args.locations)
    if args.strategy == "geohash":
        strategy = GeohashShardStrategy(args.shards)
    else:
        strategy = HashShardStrategy(args.shards)
    store = ShardedLocationStore(locations, addresses, strategy=strategy)
    config = ServerConfig(
        n_workers=args.workers,
        queue_capacity=args.queue,
        default_timeout_s=args.timeout,
        cache_capacity=args.cache_size,
        cache_ttl_s=args.cache_ttl,
        batch_window_s=args.batch_window,
        batch_max=args.batch_max,
    )
    rng = random.Random(args.seed)
    with contextlib.ExitStack() as stack:
        if args.backend == "process":
            # Worker processes mmap a published columnar snapshot; the
            # mid-run churn goes through the durable publish protocol
            # (log → swap → snapshot file → version-counter flip).
            snapshot_dir = args.snapshot_dir or stack.enter_context(
                tempfile.TemporaryDirectory(prefix="serve-bench-snap-")
            )
            publisher = SnapshotPublisher(snapshot_dir)
            publisher.publish(store)
            server = stack.enter_context(
                ProcessRouter(snapshot_dir, n_workers=args.workers,
                              config=config)
            )

            def apply_refresh() -> None:
                publisher.refresh(store, locations)
        else:
            server = stack.enter_context(QueryServer(store, config))

            def apply_refresh() -> None:
                server.apply_refresh(locations)

        generator = LoadGenerator(server, sorted(addresses), rng)
        stop_churn = threading.Event()
        churn_thread = None
        refreshes = [0]
        if args.refresh_every > 0:
            def churn() -> None:
                while not stop_churn.wait(args.refresh_every):
                    apply_refresh()
                    refreshes[0] += 1

            churn_thread = threading.Thread(target=churn, name="serve-churn")
            churn_thread.start()
        t0 = _time.perf_counter()
        if args.workload == "closed":
            report = generator.run_closed(
                n_clients=args.clients, duration_s=args.duration, slos=slos
            )
        else:
            report = generator.run_open(
                rate_rps=args.rate, duration_s=args.duration, slos=slos
            )
        wall = _time.perf_counter() - t0
        if churn_thread is not None:
            stop_churn.set()
            churn_thread.join()
        fleet = None
        fleet_registry = None
        if args.backend == "process":
            # Stop the pool first so every worker has flushed its final
            # spans and closed its metrics plane, then scrape the planes
            # (zero IPC — and the snapshot tempdir is still alive here).
            server.stop()
            fleet_registry = server.metrics()
            fleet_doc = fleet_registry.to_dict()
            families = {m["name"]: m for m in fleet_doc["metrics"]}

            def _family_total(name: str) -> float:
                return sum(
                    s["value"]
                    for s in families.get(name, {}).get("samples", [])
                )

            fleet = {
                "requests_total": _family_total("serve_requests_total"),
                "worker_requests_total": _family_total(
                    "serve_worker_requests_total"
                ),
                "worker_restarts": _family_total(
                    "serve_worker_restarts_total"
                ),
                "heartbeat_misses": _family_total(
                    "serve_worker_heartbeat_misses_total"
                ),
                "slo": None,
                "trace": None,
            }
            if slos:
                fleet_report = server.fleet_verdict(slos)
                fleet["slo"] = fleet_report.to_dict()
            if args.trace_merged:
                fleet["trace"] = server.trace_dump(args.trace_merged)
        if args.snapshot_dir:
            # Persist the in-process provenance ring so `repro explain
            # --obs-dir <snapshot-dir>/obs` works for the thread backend
            # too (process workers already persisted theirs at stop()).
            ring = obs.get_provenance_ring()
            if len(ring) > 0:
                obs_path = pathlib.Path(args.snapshot_dir) / "obs"
                try:
                    obs_path.mkdir(parents=True, exist_ok=True)
                    ring.write_jsonl(str(obs_path / "provenance-server.jsonl"))
                except OSError:
                    pass
    bench_config = {
        "command": "serve-bench", "workload": args.workload,
        "backend": args.backend,
        "seed": args.seed, "shards": args.shards,
        "strategy": args.strategy, "workers": args.workers,
        "queue": args.queue, "cache_size": args.cache_size,
        "batch_window_s": args.batch_window,
        "refresh_every_s": args.refresh_every,
    }
    payload = {
        "run_meta": obs.run_metadata(bench_config),
        "config": bench_config,
        "wall_s": wall,
        "refreshes_mid_run": refreshes[0],
        "report": report.to_dict(),
        "fleet": fleet,
    }
    if args.out:
        out = pathlib.Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        title = (f"serve-bench: {args.workload} loop, {args.workers} "
                 f"{args.backend} workers, {args.shards} {args.strategy} shards")
        print(title)
        print("-" * len(title))
        print(report.render())
        if args.refresh_every > 0:
            print(f"refreshes       {refreshes[0]} (mid-run, atomic swap)")
        if report.slo is not None:
            print()
            print("live SLO verdict:")
            for result in report.slo.get("results", []):
                observed = result.get("observed")
                shown = "no data" if observed is None else f"{observed:.6g}"
                print(f"  {'OK ' if result.get('ok') else 'VIOLATED':<9} "
                      f"{result.get('name')}  observed {shown}  "
                      f"<= {result.get('objective')}")
        if fleet is not None and fleet["slo"] is not None:
            print()
            print("fleet SLO verdict (merged shared-memory planes):")
            for result in fleet["slo"].get("results", []):
                observed = result.get("observed")
                shown = "no data" if observed is None else f"{observed:.6g}"
                print(f"  {'OK ' if result.get('ok') else 'VIOLATED':<9} "
                      f"{result.get('name')}  observed {shown}  "
                      f"<= {result.get('objective')}")
        if fleet is not None and fleet["trace"] is not None:
            t = fleet["trace"]
            print(f"merged trace -> {args.trace_merged} "
                  f"({t['n_kept_spans']} spans from {t['n_kept_traces']} "
                  f"sampled traces)")
        if args.out:
            print(f"report -> {args.out}")
    _end_observability(args, config={"command": "serve-bench"})
    if fleet_registry is not None and getattr(args, "metrics_out", None):
        # The process backend's authoritative export is the merged fleet
        # view, not the front-end process's registry alone — overwrite
        # what _end_observability just wrote with the merged registry so
        # `repro health --metrics` gates the whole fleet.
        obs.export_metrics(args.metrics_out, registry=fleet_registry,
                           meta=obs.run_metadata(bench_config))
    slo_ok = report.slo is None or bool(report.slo.get("ok"))
    fleet_ok = (
        fleet is None or fleet["slo"] is None or bool(fleet["slo"].get("ok"))
    )
    return 0 if report.n_errors == 0 and slo_ok and fleet_ok else 1


def _cmd_stream_bench(args: argparse.Namespace) -> int:
    """Benchmark the streaming ingestion tier (``repro.stream``).

    Exit code gates the streaming acceptance criteria directly: zero
    event loss, online-vs-batch stay parity, at least one promotion, and
    — when the poison probe runs — the drifted batch rejected with the
    served snapshot version unchanged.
    """
    import contextlib
    import tempfile

    from repro.serve import (
        ProcessRouter,
        QueryServer,
        ServerConfig,
        ShardedLocationStore,
        SnapshotPublisher,
    )
    from repro.stream.bench import StreamBenchConfig, run_stream_bench

    slos = []
    if args.slo:
        from repro.obs.health import load_slo_file

        try:
            slos = load_slo_file(args.slo)
        except (OSError, ValueError, KeyError) as exc:
            print(f"cannot load SLO spec {args.slo}: {exc}", file=sys.stderr)
            return 2
    _begin_observability(args)
    fleet = None
    with contextlib.ExitStack() as stack:
        snapshot_dir = None
        if args.backend == "process":
            snapshot_dir = args.snapshot_dir or stack.enter_context(
                tempfile.TemporaryDirectory(prefix="stream-bench-snap-")
            )
        cfg = StreamBenchConfig(
            preset=args.preset,
            scale=args.scale,
            seed=args.seed,
            duration_s=args.duration,
            event_rate=args.event_rate,
            serve_rate_rps=args.serve_rate,
            backend=args.backend,
            workers=args.workers,
            refresh_interval_s=args.refresh_interval,
            bus_capacity=args.bus_capacity,
            overflow=args.overflow,
            lateness_s=args.lateness,
            disorder_s=args.disorder,
            p_duplicate=args.p_duplicate,
            warmup_promotions=args.warmup,
            psi_threshold=args.psi_threshold,
            poison=not args.no_poison,
            n_poison_sites=args.poison_sites,
            parity_check=not args.no_parity,
            snapshot_dir=snapshot_dir,
            blackbox_dir=args.blackbox_dir,
        )

        def factory(dataset, geocodes):
            store = ShardedLocationStore(geocodes, dataset.addresses)
            server_config = ServerConfig(n_workers=args.workers)
            if args.backend == "process":
                # The streaming metrics plane lands in the same obs/
                # directory as the router and worker planes, so the
                # ingest tier is scrape-able alongside the serving fleet.
                publisher = SnapshotPublisher(snapshot_dir)
                publisher.publish(store)
                router = ProcessRouter(
                    snapshot_dir, n_workers=args.workers,
                    config=server_config,
                ).start()

                def promote(locations) -> int:
                    return publisher.refresh(store, locations).version

                def close() -> None:
                    router.stop()
                    publisher.close()

                return promote, publisher.current_version, close, router
            server = QueryServer(store, server_config).start()
            return (
                server.apply_refresh,
                lambda: server.store.version,
                server.stop,
                server,
            )

        payload = run_stream_bench(cfg, slos=slos, promote_factory=factory)
        if args.backend == "process":
            # Post-mortem fleet scrape: the shared-memory planes outlive
            # the worker processes, and metrics-stream.shm sits next to
            # the router/worker planes — prove the streaming tier joined
            # the fleet view.
            from repro.obs.shm import merge_snapshots, scrape_planes

            obs_dir = str(pathlib.Path(snapshot_dir) / "obs")
            snapshots = scrape_planes(obs_dir)
            fleet_doc = merge_snapshots(snapshots).to_dict()
            families = {m["name"]: m for m in fleet_doc["metrics"]}

            def _family_total(name: str) -> float:
                return sum(
                    s["value"]
                    for s in families.get(name, {}).get("samples", [])
                )

            fleet = {
                "stream_events_total": _family_total("stream_events_total"),
                "stream_promotions_total": _family_total(
                    "stream_promotions_total"
                ),
                "serve_requests_total": _family_total("serve_requests_total"),
                "n_planes": len(snapshots),
            }
    payload["run_meta"] = obs.run_metadata({"command": "stream-bench",
                                            **payload["config"]})
    payload["fleet"] = fleet
    if args.out:
        out = pathlib.Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        ingest = payload["ingest"]
        freshness = payload["freshness"]
        promos = payload["promotions"]
        title = (f"stream-bench: {cfg.preset} preset, {args.backend} "
                 f"backend, {cfg.duration_s:g}s")
        print(title)
        print("-" * len(title))
        print(f"offered         {ingest['offered']} events "
              f"({ingest['events_per_sec']:.0f}/s)")
        print(f"accepted        {ingest.get('accepted', 0)}   "
              f"duplicate {ingest.get('duplicate', 0)}   "
              f"late {ingest.get('late', 0)}   shed {ingest.get('shed', 0)}")
        print(f"lost            {ingest['lost']} "
              f"({'zero loss' if payload['zero_loss'] else 'LOSS'})")
        print(f"stays emitted   {ingest['stays_emitted']}")
        if freshness["n_samples"]:
            print(f"freshness lag   p50 {freshness['p50_s']:.3f}s   "
                  f"p95 {freshness['p95_s']:.3f}s   "
                  f"max {freshness['max_s']:.3f}s")
        print(f"promotions      {promos['n_promoted']} promoted, "
              f"{promos['n_rejected']} rejected "
              f"{promos['by_outcome']}")
        print(f"final version   {promos['final_version']}")
        if payload["parity"] is not None:
            p = payload["parity"]
            verdict = "EQUAL" if p["equal"] else "MISMATCH"
            print(f"parity          {verdict} "
                  f"(online {p['n_online']} vs batch {p['n_batch']})")
        if payload["poison"] is not None:
            poison = payload["poison"]
            verdict = "rejected" if poison["rejected"] else "NOT REJECTED"
            print(f"poison probe    {verdict} ({poison['outcome']}); "
                  f"served version "
                  f"{'unchanged' if poison['served_version_unchanged'] else 'MOVED'}")
        if payload["serve"] is not None:
            serve = payload["serve"]
            print(f"serve load      {serve['n_issued']} requests, "
                  f"{serve['n_errors']} errors")
        if payload.get("blackbox") is not None:
            bb = payload["blackbox"]
            print(f"black boxes     {len(bb['dumps'])} dump(s) in "
                  f"{bb['dir']}")
            for dump_path in bb["dumps"]:
                print(f"                {dump_path}")
        if fleet is not None:
            print(f"fleet scrape    stream_events_total="
                  f"{fleet['stream_events_total']:.0f}  "
                  f"stream_promotions_total="
                  f"{fleet['stream_promotions_total']:.0f}")
        if args.out:
            print(f"report -> {args.out}")
    _end_observability(args, config={"command": "stream-bench"})
    poison = payload["poison"]
    ok = (
        payload["zero_loss"]
        and (payload["parity"] is None or payload["parity"]["equal"])
        and payload["promotions"]["n_promoted"] >= 1
        and (poison is None
             or (poison["rejected"] and poison["served_version_unchanged"]))
    )
    return 0 if ok else 1


def _cmd_obs_export(args: argparse.Namespace) -> int:
    """Scrape metrics planes post-mortem and render the merged registry.

    The planes (and per-worker span files) outlive the processes that
    wrote them, so a crashed or finished serving run is still exportable:
    point ``--obs-dir`` at the snapshot directory's ``obs/`` subdir.
    """
    import glob as _glob

    from repro.obs.shm import merged_registry, scrape_planes
    from repro.obs.trace import merge_traces

    if not pathlib.Path(args.obs_dir).is_dir():
        print(f"not a directory: {args.obs_dir}", file=sys.stderr)
        return 2
    snapshots = scrape_planes(args.obs_dir)
    if not snapshots:
        print(f"no metrics planes (metrics-*.shm) in {args.obs_dir}",
              file=sys.stderr)
        return 2
    registry = merged_registry(args.obs_dir)
    meta = obs.run_metadata({"command": "obs-export",
                             "obs_dir": args.obs_dir,
                             "n_planes": len(snapshots)})
    torn = sum(s.n_torn for s in snapshots)
    if args.out:
        obs.export_metrics(args.out, registry=registry, meta=meta,
                           exemplars=args.exemplars)
        if not args.json:
            print(f"merged metrics ({len(snapshots)} planes"
                  + (f", {torn} torn slots skipped" if torn else "")
                  + f") -> {args.out}")
    if args.trace_out:
        paths = sorted(_glob.glob(
            str(pathlib.Path(args.obs_dir) / "trace-worker-*.jsonl")
        ))
        stats = merge_traces(paths, args.trace_out)
        if not args.json:
            print(f"merged trace ({stats['n_kept_spans']} spans from "
                  f"{stats['n_kept_traces']} sampled traces) -> "
                  f"{args.trace_out}")
    if args.json:
        print(registry.to_json(meta))
    elif not args.out:
        print(obs.render_metrics(registry.to_dict(meta)))
    if args.slo:
        from repro.obs.health import evaluate_slos, load_slo_file

        try:
            slos = load_slo_file(args.slo)
        except (OSError, ValueError, KeyError) as exc:
            print(f"cannot load SLO spec {args.slo}: {exc}", file=sys.stderr)
            return 2
        report = evaluate_slos(registry.to_dict(meta), slos, source="fleet")
        if not args.json:
            print()
            print(report.render())
        return report.exit_code
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    """Explain served answers for one address from persisted provenance.

    Merges every ``provenance-*.jsonl`` file under ``--obs-dir`` (workers
    persist their rings on snapshot rotation and shutdown; benches persist
    the in-process ring at teardown), then renders the records minted for
    the requested address id — candidate scores and ranks, stay evidence,
    snapshot/model/pool fingerprints, and the serving tier that answered.
    """
    from repro.obs.provenance import merge_provenance, render_record

    obs_dir = pathlib.Path(args.obs_dir)
    if not obs_dir.is_dir():
        print(f"not a directory: {args.obs_dir}", file=sys.stderr)
        return 2
    paths = sorted(str(p) for p in obs_dir.glob("provenance-*.jsonl"))
    if not paths:
        print(f"no provenance files (provenance-*.jsonl) in {args.obs_dir}",
              file=sys.stderr)
        return 2
    records, stats = merge_provenance(paths)
    matched = [r for r in records if r.address_id == args.address_id]
    matched = matched[: args.limit]
    if args.json:
        print(json.dumps(
            {
                "address_id": args.address_id,
                "n_matched": len(matched),
                "merge_stats": stats,
                "records": [r.to_dict() for r in matched],
            },
            indent=2, sort_keys=True,
        ))
        return 0 if matched else 1
    if not matched:
        print(f"no provenance records for {args.address_id!r} "
              f"({stats['n_records']} records from {stats['n_files']} files)",
              file=sys.stderr)
        return 1
    print(f"{len(matched)} record(s) for {args.address_id} "
          f"(newest first; {stats['n_records']} total from "
          f"{stats['n_files']} files"
          + (f", {stats['n_torn_lines']} torn lines skipped"
             if stats["n_torn_lines"] else "")
          + ")")
    for record in matched:
        print()
        print(render_record(record))
    return 0


def _cmd_blackbox(args: argparse.Namespace) -> int:
    """Render a flight-recorder black-box dump for post-incident reading."""
    from repro.obs.recorder import load_blackbox, render_blackbox

    try:
        payload = load_blackbox(args.path)
    except (OSError, ValueError) as exc:
        print(f"cannot load black box {args.path}: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(render_blackbox(payload))
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    data_dir = pathlib.Path(args.data)
    addresses = load_addresses(data_dir / "addresses.json")
    locations = load_locations(args.locations)
    store = DeliveryLocationStore(locations, addresses)
    address = addresses.get(args.address_id)
    if address is None:
        print(f"unknown address id: {args.address_id}", file=sys.stderr)
        return 1
    result = store.query(address)
    print(f"address   {address.address_id}: {address.text!r}")
    print(f"location  lng={result.location.lng:.6f} lat={result.location.lat:.6f}")
    print(f"source    {result.source.value}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="DLInfMA reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_gen = sub.add_parser("generate", help="generate a synthetic dataset")
    p_gen.add_argument("--preset", choices=sorted(PRESETS), default="downbj")
    p_gen.add_argument("--scale", type=float, default=1.0)
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("--out", required=True)
    p_gen.set_defaults(func=_cmd_generate)

    p_eval = sub.add_parser("evaluate", help="compare methods on a dataset")
    p_eval.add_argument("--data", required=True)
    p_eval.add_argument("--methods", default="Geocoding,GeoCloud,GeoRank,DLInfMA")
    p_eval.add_argument("--seed", type=int, default=0)
    p_eval.add_argument("--fast", action="store_true")
    p_eval.add_argument("--timings", action="store_true",
                        help="print per-stage engine timings per method")
    p_eval.add_argument("--json", action="store_true",
                        help="emit a machine-readable JSON report on stdout")
    _add_obs_flags(p_eval)
    p_eval.set_defaults(func=_cmd_evaluate)

    p_infer = sub.add_parser("infer", help="run DLInfMA and dump locations")
    p_infer.add_argument("--data", required=True)
    p_infer.add_argument("--out", required=True)
    p_infer.add_argument("--selector", default="locmatcher")
    p_infer.set_defaults(func=_cmd_infer)

    p_upd = sub.add_parser(
        "update", help="fit on a dataset, then absorb a new trip batch incrementally"
    )
    p_upd.add_argument("--data", required=True)
    p_upd.add_argument("--new-trips", required=True,
                       help="trips.jsonl with the batch to absorb")
    p_upd.add_argument("--out", required=True)
    p_upd.add_argument("--selector", default="locmatcher")
    p_upd.add_argument("--timings", action="store_true",
                       help="print fit vs. update per-stage timings")
    p_upd.add_argument("--json", action="store_true",
                       help="emit a machine-readable JSON report on stdout")
    p_upd.add_argument("--drift-out", default=None, metavar="PATH",
                       help="compare pool/matcher fingerprints before vs. "
                            "after the batch and write a drift report JSON")
    _add_obs_flags(p_upd)
    p_upd.set_defaults(func=_cmd_update)

    p_metrics = sub.add_parser(
        "metrics", help="render an exported metrics JSON file as a table"
    )
    p_metrics.add_argument("path", help="metrics file written by --metrics-out")
    p_metrics.set_defaults(func=_cmd_metrics)

    p_health = sub.add_parser(
        "health", help="evaluate an SLO spec against an exported metrics file"
    )
    p_health.add_argument("--metrics", required=True,
                          help="metrics JSON written by --metrics-out")
    p_health.add_argument("--slo", required=True,
                          help="SLO spec (YAML or JSON)")
    p_health.add_argument("--json", action="store_true",
                          help="emit the machine-readable verdict on stdout")
    p_health.set_defaults(func=_cmd_health)

    p_prof = sub.add_parser(
        "profile", help="run any subcommand under the sampling profiler"
    )
    p_prof.add_argument("--hz", type=float, default=100.0,
                        help="sampling frequency (samples per second)")
    p_prof.add_argument("--out", default=None, metavar="PATH",
                        help="write the profile (speedscope JSON, or "
                             "collapsed text for .txt/.collapsed)")
    p_prof.add_argument("--top", type=int, default=15,
                        help="print the N heaviest frames by self time")
    p_prof.add_argument("rest", nargs=argparse.REMAINDER,
                        help="subcommand to profile (prefix with --)")
    p_prof.set_defaults(func=_cmd_profile)

    p_cv = sub.add_parser("crossval", help="spatial cross-validation on a preset")
    p_cv.add_argument("--preset", choices=sorted(PRESETS), default="downbj")
    p_cv.add_argument("--scale", type=float, default=1.0)
    p_cv.add_argument("--seed", type=int, default=0)
    p_cv.add_argument("--folds", type=int, default=3)
    p_cv.add_argument("--methods", default="Geocoding,GeoCloud,DLInfMA")
    p_cv.add_argument("--fast", action="store_true")
    p_cv.set_defaults(func=_cmd_crossval)

    p_stats = sub.add_parser("stats", help="print dataset distribution stats")
    p_stats.add_argument("--data", required=True)
    p_stats.set_defaults(func=_cmd_stats)

    p_geo = sub.add_parser("export-geojson", help="export candidates/predictions as GeoJSON")
    p_geo.add_argument("--data", required=True)
    p_geo.add_argument("--out", required=True)
    p_geo.add_argument("--locations", default=None)
    p_geo.set_defaults(func=_cmd_export_geojson)

    p_serve = sub.add_parser(
        "serve-bench",
        help="load-test the concurrent serving tier over a locations table",
    )
    p_serve.add_argument("--data", required=True)
    p_serve.add_argument("--locations", required=True,
                         help="address→location JSON (infer output or ground truth)")
    p_serve.add_argument("--workload", choices=("closed", "open"), default="closed")
    p_serve.add_argument("--backend", choices=("thread", "process"),
                         default="thread",
                         help="thread: in-process QueryServer pool; process: "
                              "worker processes over a mmap'd columnar snapshot")
    p_serve.add_argument("--snapshot-dir", default=None, metavar="DIR",
                         help="snapshot directory for --backend process "
                              "(default: a temporary directory)")
    p_serve.add_argument("--clients", type=int, default=4,
                         help="closed-loop concurrent clients")
    p_serve.add_argument("--rate", type=float, default=200.0,
                         help="open-loop Poisson arrival rate (req/s)")
    p_serve.add_argument("--duration", type=float, default=2.0,
                         help="load duration in seconds")
    p_serve.add_argument("--workers", type=int, default=4)
    p_serve.add_argument("--queue", type=int, default=64,
                         help="admission queue capacity (backpressure bound)")
    p_serve.add_argument("--timeout", type=float, default=1.0,
                         help="per-request deadline in seconds")
    p_serve.add_argument("--shards", type=int, default=4)
    p_serve.add_argument("--strategy", choices=("hash", "geohash"), default="hash")
    p_serve.add_argument("--cache-size", type=int, default=2048,
                         help="result-cache capacity (0 disables)")
    p_serve.add_argument("--cache-ttl", type=float, default=30.0)
    p_serve.add_argument("--batch-window", type=float, default=0.0,
                         help="micro-batch window in seconds (0 disables)")
    p_serve.add_argument("--batch-max", type=int, default=32)
    p_serve.add_argument("--refresh-every", type=float, default=0.0,
                         help="re-apply the locations table every N seconds "
                              "mid-run (exercises the atomic shard swap)")
    p_serve.add_argument("--seed", type=int, default=0,
                         help="loadgen rng seed (schedules are deterministic)")
    p_serve.add_argument("--json", action="store_true",
                         help="emit the machine-readable report on stdout")
    p_serve.add_argument("--out", default=None, metavar="PATH",
                         help="also write the JSON report to PATH")
    p_serve.add_argument("--slo", default=None, metavar="PATH",
                         help="SLO spec to verdict the live request windows "
                              "against (nonzero exit on violation); with "
                              "--backend process the same objectives are "
                              "also evaluated against the merged fleet "
                              "metrics scraped from shared memory")
    p_serve.add_argument("--trace-merged", default=None, metavar="PATH",
                         help="with --backend process: merge router + "
                              "per-worker span files into one tail-sampled "
                              "trace at PATH")
    p_serve.add_argument("--no-exemplars", action="store_true",
                         help="skip attaching exemplars (trace id + "
                              "provenance key) to latency histogram "
                              "observations — the overhead escape hatch")
    _add_obs_flags(p_serve)
    p_serve.set_defaults(func=_cmd_serve_bench)

    p_stream = sub.add_parser(
        "stream-bench",
        help="benchmark the streaming ingestion tier: online stay "
             "extraction, gate-checked promotion, freshness lag",
    )
    p_stream.add_argument("--preset", choices=("tiny", "downbj", "subbj"),
                          default="tiny")
    p_stream.add_argument("--scale", type=float, default=1.0,
                          help="preset scale factor (downbj/subbj)")
    p_stream.add_argument("--seed", type=int, default=0,
                          help="dataset + event-stream rng seed")
    p_stream.add_argument("--duration", type=float, default=4.0,
                          help="event-production duration in seconds")
    p_stream.add_argument("--event-rate", type=float, default=0.0,
                          help="offered events/s (0 = as fast as possible)")
    p_stream.add_argument("--serve-rate", type=float, default=100.0,
                          help="concurrent open-loop query load in req/s "
                               "(0 disables)")
    p_stream.add_argument("--backend", choices=("thread", "process"),
                          default="thread",
                          help="promotion target: in-process QueryServer or "
                               "worker processes over published snapshots")
    p_stream.add_argument("--snapshot-dir", default=None, metavar="DIR",
                          help="snapshot directory for --backend process "
                               "(default: a temporary directory)")
    p_stream.add_argument("--workers", type=int, default=2)
    p_stream.add_argument("--refresh-interval", type=float, default=0.5,
                          help="scheduler tick interval in seconds")
    p_stream.add_argument("--bus-capacity", type=int, default=8192)
    p_stream.add_argument("--overflow",
                          choices=("block", "shed_newest", "shed_oldest"),
                          default="block",
                          help="bus policy when full: backpressure or shed")
    p_stream.add_argument("--lateness", type=float, default=30.0,
                          help="watermark lateness bound in seconds")
    p_stream.add_argument("--disorder", type=float, default=20.0,
                          help="generator arrival-disorder bound in seconds")
    p_stream.add_argument("--p-duplicate", type=float, default=0.02,
                          help="per-fix duplicate re-emission probability")
    p_stream.add_argument("--warmup", type=int, default=2,
                          help="promotions before the drift gate arms")
    p_stream.add_argument("--psi-threshold", type=float, default=1.0,
                          help="drift-gate PSI threshold (replay compression "
                               "runs hotter than real time; see bench docs)")
    p_stream.add_argument("--no-poison", action="store_true",
                          help="skip the poisoned-batch rejection probe")
    p_stream.add_argument("--poison-sites", type=int, default=32)
    p_stream.add_argument("--no-parity", action="store_true",
                          help="skip the online-vs-batch parity replay")
    p_stream.add_argument("--json", action="store_true",
                          help="emit the machine-readable report on stdout")
    p_stream.add_argument("--out", default=None, metavar="PATH",
                          help="also write the JSON report to PATH "
                               "(BENCH_stream.json)")
    p_stream.add_argument("--slo", default=None, metavar="PATH",
                          help="SLO spec the promotion gate evaluates each "
                               "tick (ci/slo-stream.yaml)")
    p_stream.add_argument("--blackbox-dir", default=None, metavar="DIR",
                          help="arm the flight recorder: every gate refusal "
                               "or anomaly during the run dumps a black box "
                               "(blackbox-*.json) into DIR; render with "
                               "`repro blackbox`")
    _add_obs_flags(p_stream)
    p_stream.set_defaults(func=_cmd_stream_bench)

    p_obs = sub.add_parser(
        "obs-export",
        help="scrape shared-memory metrics planes into one merged export",
    )
    p_obs.add_argument("--obs-dir", required=True, metavar="DIR",
                       help="observability directory holding metrics-*.shm "
                            "planes (a snapshot dir's obs/ subdirectory)")
    p_obs.add_argument("--out", default=None, metavar="PATH",
                       help="write the merged registry to PATH (.json, or "
                            ".prom/.txt for Prometheus text format)")
    p_obs.add_argument("--trace-out", default=None, metavar="PATH",
                       help="also merge trace-worker-*.jsonl span files "
                            "into one tail-sampled trace at PATH")
    p_obs.add_argument("--slo", default=None, metavar="PATH",
                       help="evaluate an SLO spec against the merged "
                            "registry (nonzero exit on violation)")
    p_obs.add_argument("--exemplars", action="store_true",
                       help="attach OpenMetrics exemplars (trace id + "
                            "provenance key) to histogram bucket lines in "
                            ".prom/.txt output")
    p_obs.add_argument("--json", action="store_true",
                       help="emit the merged registry JSON on stdout")
    p_obs.set_defaults(func=_cmd_obs_export)

    p_explain = sub.add_parser(
        "explain",
        help="explain served answers for an address from provenance records",
    )
    p_explain.add_argument("address_id", help="address id to explain")
    p_explain.add_argument("--obs-dir", required=True, metavar="DIR",
                           help="observability directory holding "
                                "provenance-*.jsonl files (a snapshot "
                                "dir's obs/ subdirectory)")
    p_explain.add_argument("--limit", type=int, default=5,
                           help="show at most N records (newest first)")
    p_explain.add_argument("--json", action="store_true",
                           help="emit the matched records as JSON")
    p_explain.set_defaults(func=_cmd_explain)

    p_bb = sub.add_parser(
        "blackbox",
        help="render a flight-recorder black-box dump",
    )
    p_bb.add_argument("path", help="blackbox-*.json dump file")
    p_bb.add_argument("--json", action="store_true",
                      help="emit the raw dump JSON on stdout")
    p_bb.set_defaults(func=_cmd_blackbox)

    p_query = sub.add_parser("query", help="resolve one address via the store")
    p_query.add_argument("--data", required=True)
    p_query.add_argument("--locations", required=True)
    p_query.add_argument("--address-id", required=True)
    p_query.set_defaults(func=_cmd_query)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
