"""repro — reproduction of DLInfMA (ICDE 2022).

Discovering Actual Delivery Locations from Mis-Annotated Couriers'
Trajectories.  See DESIGN.md for the system inventory and EXPERIMENTS.md for
the paper-vs-measured record.

Subpackages
-----------
- :mod:`repro.geo` — geospatial primitives
- :mod:`repro.trajectory` — trajectory model + preprocessing
- :mod:`repro.cluster` — clustering algorithms
- :mod:`repro.nn` — numpy autograd neural-network framework
- :mod:`repro.ml` — classical ML (trees, forests, boosting, ranking)
- :mod:`repro.synth` — synthetic courier world + datasets
- :mod:`repro.core` — the DLInfMA pipeline and LocMatcher
- :mod:`repro.baselines` — all comparison methods from the paper
- :mod:`repro.eval` — metrics and experiment harness
- :mod:`repro.apps` — deployment store + downstream applications
"""

__version__ = "1.0.0"
