"""Courier trip simulation: schedules, GPS traces, waybills.

Each courier owns a spatial zone (one or more blocks — the paper notes
delivery tasks in a region are usually assigned to the same courier).  A
simulated trip samples addresses from the zone (weighted by customer
activity), routes through their delivery spots nearest-neighbour style from
the station, dwells at each spot to deliver, occasionally pauses for
non-delivery stops, and emits noisy GPS fixes at ~13.5 s intervals — the
sampling rate of the paper's datasets.

Waybills carry *clean* recorded times here (confirmation right after the
drop-off); :mod:`repro.synth.delays` injects batch-confirmation delays.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.synth.city import City, POI_DWELL_FACTOR
from repro.trajectory import DeliveryTrip, Trajectory, Waybill


@dataclass(frozen=True)
class SimulationConfig:
    """Knobs of the courier simulation."""

    n_days: int = 20
    blocks_per_courier: int = 1
    addresses_per_trip: tuple[int, int] = (8, 16)
    sampling_s: float = 13.5
    gps_sigma_m: float = 8.0
    outlier_prob: float = 0.003
    outlier_jump_m: float = 400.0
    speed_mps: float = 3.0
    dwell_s: tuple[float, float] = (60.0, 200.0)
    per_parcel_extra_dwell_s: float = 20.0
    extra_stop_prob: float = 0.18
    extra_stop_dwell_s: tuple[float, float] = (60.0, 480.0)
    trip_start_hour: tuple[float, float] = (8.0, 15.0)
    # Chance an address receives two parcels in the same trip (customers
    # do order multiple packages; Definition 5's W is a multiset).  Off by
    # default: multi-parcel trips thicken the annotation clusters, which
    # shifts the calibrated baseline balance documented in EXPERIMENTS.md.
    double_parcel_prob: float = 0.0
    # Even "immediate" confirmations happen from seconds to a couple of
    # minutes after the drop-off — often while already walking away.
    confirm_jitter_s: tuple[float, float] = (10.0, 120.0)

    def __post_init__(self) -> None:
        if self.n_days < 1:
            raise ValueError("n_days must be >= 1")
        if self.sampling_s <= 0 or self.speed_mps <= 0:
            raise ValueError("sampling_s and speed_mps must be positive")
        if self.addresses_per_trip[0] < 1:
            raise ValueError("need at least one address per trip")


@dataclass
class PlannedStop:
    """One dwell in a trip schedule; ``spot_id`` is None for rest stops."""

    x: float
    y: float
    t_arrive: float
    t_leave: float
    spot_id: str | None
    address_ids: list[str] = field(default_factory=list)

    @property
    def t_mid(self) -> float:
        """Midpoint of the dwell — the actual delivery time."""
        return (self.t_arrive + self.t_leave) / 2.0


@dataclass
class SimulatedTrip:
    """A delivery trip plus the simulation ground truth behind it."""

    trip: DeliveryTrip
    stops: list[PlannedStop]
    actual_delivery_time: dict[str, float]  # waybill_id -> time


class TripSimulator:
    """Generates a full dataset's worth of courier trips.

    ``weather`` (optional, one entry per simulated day) slows couriers and
    stretches dwells on rainy days — see :mod:`repro.synth.weather`.
    """

    def __init__(
        self,
        city: City,
        config: SimulationConfig,
        rng: np.random.Generator,
        weather: list | None = None,
        weather_config=None,
    ) -> None:
        from repro.synth.weather import WeatherConfig

        self.city = city
        self.config = config
        self.rng = rng
        self.weather = list(weather) if weather else []
        self.weather_config = weather_config or WeatherConfig()
        self.courier_zones = self._assign_couriers()

    def _day_factors(self, day: int) -> tuple[float, float]:
        """(speed factor, dwell factor) for a simulated day."""
        from repro.synth.weather import Weather

        if day < len(self.weather) and self.weather[day] == Weather.RAIN:
            return (
                self.weather_config.rain_speed_factor,
                self.weather_config.rain_dwell_factor,
            )
        return 1.0, 1.0

    def _assign_couriers(self) -> dict[str, list[str]]:
        """Partition blocks into per-courier zones."""
        block_ids = sorted(self.city.blocks)
        zones: dict[str, list[str]] = {}
        per = max(1, self.config.blocks_per_courier)
        for i in range(0, len(block_ids), per):
            courier_id = f"c{i // per:03d}"
            zones[courier_id] = block_ids[i : i + per]
        return zones

    # ------------------------------------------------------------------
    def simulate(self) -> list[SimulatedTrip]:
        """Run the full simulation: every courier, every day."""
        out: list[SimulatedTrip] = []
        for day in range(self.config.n_days):
            for courier_id in sorted(self.courier_zones):
                sim = self._simulate_trip(courier_id, day)
                if sim is not None:
                    out.append(sim)
        return out

    # ------------------------------------------------------------------
    def _zone_addresses(self, courier_id: str):
        records = []
        for block_id in self.courier_zones[courier_id]:
            records.extend(self.city.addresses_in_block(block_id))
        return sorted(records, key=lambda r: r.address_id)

    def _simulate_trip(self, courier_id: str, day: int) -> SimulatedTrip | None:
        cfg = self.config
        rng = self.rng
        records = self._zone_addresses(courier_id)
        if not records:
            return None
        lo, hi = cfg.addresses_per_trip
        n_addr = int(rng.integers(lo, min(hi, len(records)) + 1)) if len(records) > lo else len(records)
        weights = np.array([r.activity for r in records])
        weights = weights / weights.sum()
        chosen_idx = rng.choice(len(records), size=min(n_addr, len(records)), replace=False, p=weights)
        chosen = [records[i] for i in chosen_idx]

        # Group chosen addresses by their ground-truth spot.
        by_spot: dict[str, list[str]] = {}
        for record in chosen:
            by_spot.setdefault(record.spot_id, []).append(record.address_id)

        t0 = day * 86_400.0 + float(rng.uniform(*cfg.trip_start_hour)) * 3_600.0
        speed_factor, dwell_factor = self._day_factors(day)
        stops = self._schedule(by_spot, t0, speed_factor, dwell_factor)
        trip_id = f"{courier_id}-d{day:03d}"
        trajectory = self._render_trajectory(courier_id, stops, t0, speed_factor)
        if len(trajectory) < 2:
            return None

        waybills: list[Waybill] = []
        actual: dict[str, float] = {}
        for stop in stops:
            if stop.spot_id is None:
                continue
            for address_id in stop.address_ids:
                # Skip the draw entirely when disabled so default datasets
                # are bit-identical with and without this feature.
                n_parcels = (
                    2
                    if cfg.double_parcel_prob > 0 and rng.random() < cfg.double_parcel_prob
                    else 1
                )
                for parcel in range(n_parcels):
                    waybill_id = f"{trip_id}-{address_id}" + (f"-p{parcel}" if parcel else "")
                    t_actual = stop.t_mid
                    recorded = t_actual + float(rng.uniform(*cfg.confirm_jitter_s))
                    waybills.append(
                        Waybill(
                            waybill_id=waybill_id,
                            address_id=address_id,
                            t_received=t0 - float(rng.uniform(1, 6)) * 3_600.0,
                            t_delivered=recorded,
                        )
                    )
                    actual[waybill_id] = t_actual
        if not waybills:
            return None

        trip = DeliveryTrip(
            trip_id=trip_id,
            courier_id=courier_id,
            t_start=t0,
            t_end=trajectory.points[-1].t,
            trajectory=trajectory,
            waybills=waybills,
        )
        return SimulatedTrip(trip=trip, stops=stops, actual_delivery_time=actual)

    def _schedule(
        self,
        by_spot: dict[str, list[str]],
        t0: float,
        speed_factor: float = 1.0,
        dwell_factor: float = 1.0,
    ) -> list[PlannedStop]:
        """Nearest-neighbour route over spots with dwell times + rest stops."""
        cfg = self.config
        rng = self.rng
        speed = cfg.speed_mps * speed_factor
        remaining = dict(by_spot)
        x, y = self.city.station_xy
        t = t0
        stops: list[PlannedStop] = []
        while remaining:
            # Nearest unvisited spot.
            spot_id = min(
                remaining,
                key=lambda s: (self.city.spots[s].x - x) ** 2 + (self.city.spots[s].y - y) ** 2,
            )
            address_ids = remaining.pop(spot_id)
            spot = self.city.spots[spot_id]
            dist = float(np.hypot(spot.x - x, spot.y - y))
            t_travel = dist / speed

            # Possibly pause mid-leg (rest, traffic, pickup...).
            if rng.random() < cfg.extra_stop_prob and dist > 60.0:
                frac = float(rng.uniform(0.3, 0.7))
                rx = x + frac * (spot.x - x) + float(rng.normal(0, 10))
                ry = y + frac * (spot.y - y) + float(rng.normal(0, 10))
                t_arrive = t + frac * t_travel
                dwell = float(rng.uniform(*cfg.extra_stop_dwell_s))
                stops.append(PlannedStop(rx, ry, t_arrive, t_arrive + dwell, spot_id=None))
                t += dwell

            t_arrive = t + t_travel
            dwell = float(rng.uniform(*cfg.dwell_s)) * dwell_factor
            dwell *= self._poi_dwell_factor(address_ids)
            dwell += cfg.per_parcel_extra_dwell_s * max(0, len(address_ids) - 1)
            stops.append(
                PlannedStop(spot.x, spot.y, t_arrive, t_arrive + dwell, spot_id, list(address_ids))
            )
            x, y, t = spot.x, spot.y, t_arrive + dwell
        return stops

    def _poi_dwell_factor(self, address_ids: list[str]) -> float:
        """Mean POI-category dwell multiplier of the served addresses."""
        if not address_ids:
            return 1.0
        factors = [
            POI_DWELL_FACTOR[self.city.addresses[a].poi_category]
            for a in address_ids
            if a in self.city.addresses
        ]
        return float(np.mean(factors)) if factors else 1.0

    def _render_trajectory(
        self,
        courier_id: str,
        stops: list[PlannedStop],
        t0: float,
        speed_factor: float = 1.0,
    ) -> Trajectory:
        """Sample noisy GPS fixes along the piecewise-linear schedule."""
        cfg = self.config
        rng = self.rng
        speed = cfg.speed_mps * speed_factor
        # Anchor points of the true path: (t, x, y).
        anchors_t = [t0]
        sx, sy = self.city.station_xy
        anchors_x = [sx]
        anchors_y = [sy]
        for stop in stops:
            anchors_t.extend([stop.t_arrive, stop.t_leave])
            anchors_x.extend([stop.x, stop.x])
            anchors_y.extend([stop.y, stop.y])
        # Return leg to the station.
        last = stops[-1] if stops else None
        if last is not None:
            dist = float(np.hypot(last.x - sx, last.y - sy))
            anchors_t.append(last.t_leave + dist / speed)
            anchors_x.append(sx)
            anchors_y.append(sy)

        t_end = anchors_t[-1]
        times = []
        t = t0
        while t <= t_end:
            times.append(t)
            t += cfg.sampling_s * float(rng.uniform(0.75, 1.25))
        times = np.array(times)
        if len(times) < 2:
            return Trajectory(courier_id, [])
        xs = np.interp(times, anchors_t, anchors_x)
        ys = np.interp(times, anchors_t, anchors_y)
        xs = xs + rng.normal(0, cfg.gps_sigma_m, size=len(times))
        ys = ys + rng.normal(0, cfg.gps_sigma_m, size=len(times))
        # Occasional outlier jumps (cleaned later by the noise filter).
        outliers = rng.random(len(times)) < cfg.outlier_prob
        if outliers.any():
            angles = rng.uniform(0, 2 * np.pi, size=int(outliers.sum()))
            xs[outliers] += cfg.outlier_jump_m * np.cos(angles)
            ys[outliers] += cfg.outlier_jump_m * np.sin(angles)

        lng, lat = self.city.projection.to_lnglat(xs, ys)
        return Trajectory.from_arrays(courier_id, np.atleast_1d(lng), np.atleast_1d(lat), times)
