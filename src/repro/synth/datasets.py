"""Dataset presets and assembly.

The paper evaluates on two proprietary JD Logistics datasets: DowBJ (inside
Beijing's 3rd Ring) and SubBJ (outside).  Their published differences are
reproduced as configuration deltas:

- DowBJ: better geocoding precision, more deliveries per address, fewer
  stay points per trip (average 24 vs 27), fewer candidates per address.
- SubBJ: noisier geocoding, more addresses with few deliveries, more stays
  and more candidates per address (harder inference).

``generate_dataset`` runs city generation, geocoding, trip simulation and
the default delay injection (2 confirmation batches, p_delay = 0.3 — the
behaviour the paper observed in real data).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.geo import Point
from repro.synth.city import City, CityConfig
from repro.synth.delays import inject_delays
from repro.synth.geocoder import GeocoderConfig, SyntheticGeocoder
from repro.synth.simulate import SimulatedTrip, SimulationConfig, TripSimulator
from repro.trajectory import Address, DeliveryTrip


@dataclass(frozen=True)
class DatasetConfig:
    """Everything needed to deterministically generate one dataset."""

    name: str
    city: CityConfig
    sim: SimulationConfig
    geocoder: GeocoderConfig
    p_delay: float = 0.3
    n_confirm_batches: int = 2
    seed: int = 0


def downbj_config(scale: float = 1.0, seed: int = 0) -> DatasetConfig:
    """A DowBJ-like preset (downtown: precise geocodes, many deliveries)."""
    return DatasetConfig(
        name="DowBJ",
        city=CityConfig(
            n_blocks_x=max(2, round(4 * scale)),
            n_blocks_y=max(1, round(2 * scale)),
            block_size_m=300.0,
            buildings_per_block=(7, 11),
            addresses_per_building=(2, 5),
        ),
        sim=SimulationConfig(
            n_days=max(2, round(22 * scale)),
            blocks_per_courier=2,
            addresses_per_trip=(8, 14),
            extra_stop_prob=0.12,
        ),
        geocoder=GeocoderConfig(
            jitter_sigma_m=15.0, parse_confusion_prob=0.02, coarse_poi_prob=0.10
        ),
        seed=seed,
    )


def subbj_config(scale: float = 1.0, seed: int = 1) -> DatasetConfig:
    """A SubBJ-like preset (suburban: coarse geocodes, sparser deliveries)."""
    return DatasetConfig(
        name="SubBJ",
        city=CityConfig(
            n_blocks_x=max(2, round(4 * scale)),
            n_blocks_y=max(1, round(2 * scale)),
            block_size_m=380.0,
            buildings_per_block=(8, 12),
            addresses_per_building=(3, 6),
        ),
        sim=SimulationConfig(
            n_days=max(2, round(18 * scale)),
            blocks_per_courier=2,
            addresses_per_trip=(10, 18),
            extra_stop_prob=0.25,
        ),
        geocoder=GeocoderConfig(
            jitter_sigma_m=30.0, parse_confusion_prob=0.06, coarse_poi_prob=0.22
        ),
        seed=seed,
    )


def tiny_config(seed: int = 0) -> DatasetConfig:
    """A minimal fast preset for unit tests."""
    base = downbj_config(seed=seed)
    return replace(
        base,
        name="Tiny",
        city=replace(
            base.city,
            n_blocks_x=3,
            n_blocks_y=1,
            buildings_per_block=(4, 6),
            addresses_per_building=(3, 5),
        ),
        sim=replace(base.sim, n_days=12, blocks_per_courier=1, addresses_per_trip=(6, 10)),
    )


@dataclass
class SynthDataset:
    """A fully generated dataset with ground truth attached."""

    name: str
    config: DatasetConfig
    city: City
    sim_trips: list[SimulatedTrip]
    trips: list[DeliveryTrip]  # with default delay injection applied
    addresses: dict[str, Address]
    ground_truth: dict[str, Point] = field(default_factory=dict)

    def with_delays(
        self, p_delay: float, n_batches: int | None = None, seed: int = 0
    ) -> list[DeliveryTrip]:
        """Re-inject delays at a different probability (Table III sweeps)."""
        return inject_delays(
            self.sim_trips,
            p_delay=p_delay,
            n_batches=n_batches or self.config.n_confirm_batches,
            rng=np.random.default_rng(seed),
        )

    @property
    def delivered_address_ids(self) -> list[str]:
        """Addresses that actually appear in at least one trip."""
        seen: set[str] = set()
        for trip in self.trips:
            seen.update(trip.address_ids)
        return sorted(seen)

    def stats(self) -> dict[str, float]:
        """Table I-style dataset statistics."""
        n_waybills = sum(len(t.waybills) for t in self.trips)
        n_points = sum(len(t.trajectory) for t in self.trips)
        n_couriers = len({t.courier_id for t in self.trips})
        return {
            "trips": len(self.trips),
            "couriers": n_couriers,
            "addresses": len(self.delivered_address_ids),
            "waybills": n_waybills,
            "gps_points": n_points,
            "buildings": len(self.city.buildings),
        }


def generate_dataset(config: DatasetConfig) -> SynthDataset:
    """Deterministically generate a dataset from its config."""
    rng = np.random.default_rng(config.seed)
    city = City(config.city, rng)
    geocoder = SyntheticGeocoder(city, config.geocoder, rng)
    addresses = geocoder.geocode_all()
    simulator = TripSimulator(city, config.sim, rng)
    sim_trips = simulator.simulate()
    trips = inject_delays(
        sim_trips,
        p_delay=config.p_delay,
        n_batches=config.n_confirm_batches,
        rng=np.random.default_rng(config.seed + 10_000),
    )
    ground_truth = {
        address_id: city.true_location(address_id) for address_id in city.addresses
    }
    return SynthDataset(
        name=config.name,
        config=config,
        city=city,
        sim_trips=sim_trips,
        trips=trips,
        addresses=addresses,
        ground_truth=ground_truth,
    )


@dataclass(frozen=True)
class AddressSplit:
    """Spatially disjoint train/val/test address ids."""

    train: tuple[str, ...]
    val: tuple[str, ...]
    test: tuple[str, ...]


def split_addresses_by_region(
    dataset: SynthDataset, train_frac: float = 0.6, val_frac: float = 0.2
) -> AddressSplit:
    """Split delivered addresses into spatially disjoint regions.

    The paper splits by disjoint spatial regions so no delivery location
    appears in two partitions.  Blocks are ordered west-to-east and
    assigned to train / val / test by cumulative address count.
    """
    if train_frac <= 0 or val_frac < 0 or train_frac + val_frac >= 1:
        raise ValueError("need 0 < train_frac, 0 <= val_frac, train+val < 1")
    delivered = set(dataset.delivered_address_ids)
    blocks = sorted(dataset.city.blocks.values(), key=lambda b: (b.center_x, b.center_y))
    per_block: list[list[str]] = []
    for block in blocks:
        ids = [
            a.address_id
            for a in dataset.city.addresses_in_block(block.block_id)
            if a.address_id in delivered
        ]
        per_block.append(sorted(ids))
    total = sum(len(ids) for ids in per_block)
    buckets: list[list[list[str]]] = [[], [], []]  # train, val, test (block lists)
    running = 0
    for ids in per_block:
        # Classify by the block's midpoint position along the sweep.
        frac = (running + len(ids) / 2.0) / total if total else 0.0
        if frac < train_frac:
            buckets[0].append(ids)
        elif frac < train_frac + val_frac:
            buckets[1].append(ids)
        else:
            buckets[2].append(ids)
        running += len(ids)
    # Guarantee a non-empty test partition: steal the last block available.
    if not buckets[2]:
        donor = 1 if len(buckets[1]) > 0 else 0
        if len(buckets[donor]) > 1 or (donor == 1 and buckets[donor]):
            buckets[2].append(buckets[donor].pop())
        elif len(buckets[0]) > 1:
            buckets[2].append(buckets[0].pop())
    train = [a for ids in buckets[0] for a in ids]
    val = [a for ids in buckets[1] for a in ids]
    test = [a for ids in buckets[2] for a in ids]
    return AddressSplit(tuple(train), tuple(val), tuple(test))
