"""Raw day-stream assembly.

Production GPS arrives as continuous per-courier day streams, not
pre-segmented trips.  This module glues a courier's simulated trips into a
day stream (with station dwells between trips), giving
:func:`repro.trajectory.segment_trips` a realistic end-to-end consumer:
stream -> segmentation -> the pipeline's trip inputs.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.synth.city import City
from repro.synth.simulate import SimulatedTrip
from repro.trajectory import TrajPoint, Trajectory


def build_day_streams(
    sim_trips: list[SimulatedTrip],
    city: City,
    station_dwell_s: float = 1_200.0,
    sampling_s: float = 13.5,
    gps_sigma_m: float = 6.0,
    rng: np.random.Generator | None = None,
) -> dict[tuple[str, int], Trajectory]:
    """One raw stream per (courier, day): trips plus station dwells.

    The courier sits at the station for ``station_dwell_s`` before the
    first trip and after the last one (emitting noisy fixes), so station
    dwells are available as segmentation cut points.
    """
    if station_dwell_s <= 0 or sampling_s <= 0:
        raise ValueError("station_dwell_s and sampling_s must be positive")
    rng = rng or np.random.default_rng(0)
    sx, sy = city.station_xy

    by_day: dict[tuple[str, int], list[SimulatedTrip]] = defaultdict(list)
    for sim in sim_trips:
        day = int(sim.trip.t_start // 86_400.0)
        by_day[(sim.trip.courier_id, day)].append(sim)

    def station_fixes(t_from: float, t_to: float) -> list[TrajPoint]:
        points = []
        t = t_from
        while t < t_to:
            x = sx + float(rng.normal(0, gps_sigma_m))
            y = sy + float(rng.normal(0, gps_sigma_m))
            lng, lat = city.projection.to_lnglat(x, y)
            points.append(TrajPoint(float(lng), float(lat), t))
            t += sampling_s * float(rng.uniform(0.8, 1.2))
        return points

    streams: dict[tuple[str, int], Trajectory] = {}
    for key, sims in by_day.items():
        sims = sorted(sims, key=lambda s: s.trip.t_start)
        points: list[TrajPoint] = []
        first_start = sims[0].trip.trajectory.points[0].t
        points.extend(station_fixes(first_start - station_dwell_s, first_start - 1.0))
        for sim in sims:
            trip_points = sim.trip.trajectory.points
            # Guard monotonicity at the seam.
            while points and trip_points and points[-1].t >= trip_points[0].t:
                points.pop()
            points.extend(trip_points)
        last_end = points[-1].t if points else first_start
        points.extend(station_fixes(last_end + 1.0, last_end + station_dwell_s))
        streams[key] = Trajectory(key[0], points)
    return streams
