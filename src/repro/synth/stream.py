"""Raw day-stream assembly and unbounded event-stream generation.

Production GPS arrives as continuous per-courier day streams, not
pre-segmented trips.  This module glues a courier's simulated trips into a
day stream (with station dwells between trips), giving
:func:`repro.trajectory.segment_trips` a realistic end-to-end consumer:
stream -> segmentation -> the pipeline's trip inputs.

:class:`FixEventStream` takes the same day streams one step further, to
the *arrival* domain: an unbounded, seeded generator of individual
:class:`~repro.stream.events.GpsFix` events with bounded out-of-order
arrival and duplicated fixes — the honest input shape for the
``repro.stream`` ingest path.  :func:`build_day_streams` itself is
untouched: the disorder lives entirely in the event generator.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.stream.events import GpsFix
from repro.synth.city import City
from repro.synth.simulate import SimulatedTrip
from repro.trajectory import TrajPoint, Trajectory


def build_day_streams(
    sim_trips: list[SimulatedTrip],
    city: City,
    station_dwell_s: float = 1_200.0,
    sampling_s: float = 13.5,
    gps_sigma_m: float = 6.0,
    rng: np.random.Generator | None = None,
) -> dict[tuple[str, int], Trajectory]:
    """One raw stream per (courier, day): trips plus station dwells.

    The courier sits at the station for ``station_dwell_s`` before the
    first trip and after the last one (emitting noisy fixes), so station
    dwells are available as segmentation cut points.
    """
    if station_dwell_s <= 0 or sampling_s <= 0:
        raise ValueError("station_dwell_s and sampling_s must be positive")
    rng = rng or np.random.default_rng(0)
    sx, sy = city.station_xy

    by_day: dict[tuple[str, int], list[SimulatedTrip]] = defaultdict(list)
    for sim in sim_trips:
        day = int(sim.trip.t_start // 86_400.0)
        by_day[(sim.trip.courier_id, day)].append(sim)

    def station_fixes(t_from: float, t_to: float) -> list[TrajPoint]:
        points = []
        t = t_from
        while t < t_to:
            x = sx + float(rng.normal(0, gps_sigma_m))
            y = sy + float(rng.normal(0, gps_sigma_m))
            lng, lat = city.projection.to_lnglat(x, y)
            points.append(TrajPoint(float(lng), float(lat), t))
            t += sampling_s * float(rng.uniform(0.8, 1.2))
        return points

    streams: dict[tuple[str, int], Trajectory] = {}
    for key, sims in by_day.items():
        sims = sorted(sims, key=lambda s: s.trip.t_start)
        points: list[TrajPoint] = []
        first_start = sims[0].trip.trajectory.points[0].t
        points.extend(station_fixes(first_start - station_dwell_s, first_start - 1.0))
        for sim in sims:
            trip_points = sim.trip.trajectory.points
            # Guard monotonicity at the seam.
            while points and trip_points and points[-1].t >= trip_points[0].t:
                points.pop()
            points.extend(trip_points)
        last_end = points[-1].t if points else first_start
        points.extend(station_fixes(last_end + 1.0, last_end + station_dwell_s))
        streams[key] = Trajectory(key[0], points)
    return streams


@dataclass(frozen=True)
class EventStreamConfig:
    """Arrival-process knobs for :class:`FixEventStream`.

    ``disorder_s`` bounds how far a fix's arrival position may lag newer
    fixes in *event time* — an ingest watermark with
    ``lateness_s >= disorder_s`` therefore loses nothing.
    ``p_duplicate`` re-emits a fix (same courier, same timestamp) within
    the next ``dup_gap_events`` arrivals.  ``cycle_gap_s`` is idle event
    time between replays of the day-stream template, giving idle-state
    eviction something real to evict.
    """

    disorder_s: float = 30.0
    p_duplicate: float = 0.02
    dup_gap_events: int = 8
    cycle_gap_s: float = 3_600.0

    def __post_init__(self) -> None:
        if self.disorder_s < 0:
            raise ValueError("disorder_s must be >= 0")
        if not 0.0 <= self.p_duplicate < 1.0:
            raise ValueError("p_duplicate must be in [0, 1)")
        if self.dup_gap_events < 1:
            raise ValueError("dup_gap_events must be >= 1")
        if self.cycle_gap_s < 0:
            raise ValueError("cycle_gap_s must be >= 0")


class FixEventStream:
    """Unbounded seeded GPS-fix event stream with ground truth.

    Day streams (from :func:`build_day_streams`) are the template; the
    generator replays them forever, time-shifting each *cycle* by the
    template span plus ``cycle_gap_s``.  Within a cycle, arrival order
    is a seeded jitter of event order (disorder bounded by
    ``disorder_s``) and a seeded fraction of fixes is duplicated — so
    the ingest path's watermark, dedup, and eviction machinery is
    exercised honestly, with everything reproducible from ``seed``.

    Ground truth: :meth:`expected_trajectory` returns the exact
    per-courier trajectory a correct consumer reconstructs after
    ``n_cycles`` (running :func:`repro.trajectory.detect_stay_points`
    over it yields the reference stays the online extractor must match
    bit for bit), and every cycle's events are regenerable in isolation
    via :meth:`events_for_cycle`.
    """

    def __init__(
        self,
        day_streams: dict[tuple[str, int], Trajectory],
        seed: int = 0,
        config: EventStreamConfig | None = None,
    ) -> None:
        if not day_streams:
            raise ValueError("day_streams must not be empty")
        self.seed = int(seed)
        self.config = config or EventStreamConfig()
        # Per-courier template: day streams concatenated chronologically
        # with the same seam guard as build_day_streams, so the template
        # itself is a valid strictly-chronological trajectory.
        by_courier: dict[str, list[Trajectory]] = defaultdict(list)
        for (courier_id, _day), traj in sorted(
            day_streams.items(), key=lambda kv: (kv[0][0], kv[0][1])
        ):
            by_courier[courier_id].append(traj)
        self.templates: dict[str, list[TrajPoint]] = {}
        for courier_id, trajs in by_courier.items():
            points: list[TrajPoint] = []
            for traj in trajs:
                for p in traj.points:
                    if points and p.t <= points[-1].t:
                        continue  # seam guard: drop non-monotone overlap
                    points.append(p)
            if points:
                self.templates[courier_id] = points
        all_t = [p.t for pts in self.templates.values() for p in pts]
        self.t_min = min(all_t)
        self.t_max = max(all_t)
        self.period_s = (self.t_max - self.t_min) + self.config.cycle_gap_s

    @property
    def n_couriers(self) -> int:
        return len(self.templates)

    def events_per_cycle(self) -> int:
        """Template fixes per cycle (duplicates come on top)."""
        return sum(len(pts) for pts in self.templates.values())

    # -- generation ------------------------------------------------------
    def events_for_cycle(self, cycle: int) -> list[GpsFix]:
        """All arrivals of one cycle, in arrival order.  Deterministic:
        ``(seed, cycle)`` fully determines the output."""
        rng = np.random.default_rng([self.seed, int(cycle)])
        shift = cycle * self.period_s
        flat: list[GpsFix] = []
        for courier_id, points in self.templates.items():
            for p in points:
                flat.append(GpsFix(courier_id, p.lng, p.lat, p.t + shift))
        # Event-time order first, then bounded arrival jitter: sorting by
        # t + U(0, disorder_s) can demote a fix past at most disorder_s
        # of newer event time.
        flat.sort(key=lambda f: (f.t, f.courier_id))
        jitter = rng.uniform(0.0, self.config.disorder_s, len(flat))
        order = np.argsort(
            np.array([f.t for f in flat]) + jitter, kind="stable"
        )
        arrivals = [flat[i] for i in order]
        if self.config.p_duplicate <= 0.0:
            return arrivals
        out: list[GpsFix] = []
        pending: list[tuple[int, GpsFix]] = []  # (emit_at_index, fix)
        for i, fix in enumerate(arrivals):
            while pending and pending[0][0] <= i:
                out.append(pending.pop(0)[1])
            out.append(fix)
            if rng.random() < self.config.p_duplicate:
                gap = int(rng.integers(1, self.config.dup_gap_events + 1))
                pending.append((i + gap, fix))
        out.extend(f for _, f in pending)
        return out

    def __iter__(self) -> Iterator[GpsFix]:
        """Unbounded: cycles forever."""
        cycle = 0
        while True:
            yield from self.events_for_cycle(cycle)
            cycle += 1

    def take(self, n: int) -> list[GpsFix]:
        """The first ``n`` arrivals of the stream."""
        out: list[GpsFix] = []
        for fix in self:
            out.append(fix)
            if len(out) >= n:
                break
        return out

    # -- ground truth ----------------------------------------------------
    def expected_trajectory(self, courier_id: str, n_cycles: int) -> Trajectory:
        """The deduplicated, event-time-ordered trajectory after
        ``n_cycles`` full cycles — the batch-parity reference."""
        points: list[TrajPoint] = []
        template = self.templates[courier_id]
        for cycle in range(n_cycles):
            shift = cycle * self.period_s
            points.extend(
                TrajPoint(p.lng, p.lat, p.t + shift) for p in template
            )
        return Trajectory(courier_id, points)

    def expected_trajectories(self, n_cycles: int) -> dict[str, Trajectory]:
        return {
            courier_id: self.expected_trajectory(courier_id, n_cycles)
            for courier_id in self.templates
        }
