"""Synthetic city generator.

Builds the world the courier simulation runs in: a grid of residential
complexes (blocks), each with buildings, a shared express locker and a
reception desk.  Every address belongs to a building and is assigned an
*actual delivery location* according to the customer's preference —
doorstep, locker or reception — which reproduces the paper's observation
(Figure 9(a)) that addresses in the same building can have different
delivery locations.

The city works in projected meters; :class:`repro.synth.datasets` converts
to lng/lat when emitting trajectories.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.geo import LocalProjection, Point

#: Number of POI categories the (synthetic) geocoder reports (paper: 21).
N_POI_CATEGORIES = 21

#: Deterministic dwell-time multiplier per POI category.  The paper notes
#: the POI category "influence[s] the average stay duration at a location"
#: (Section IV-A): offices with receptions are quick handovers, dense
#: residential blocks and markets take longer.  Values span 0.6x-1.5x.
POI_DWELL_FACTOR = tuple(0.6 + 0.9 * (i / (N_POI_CATEGORIES - 1)) for i in range(N_POI_CATEGORIES))

# Pinyin-style complex names; consecutive entries are deliberately similar so
# the geocoder's parse-confusion failure mode (case study 1) has neighbours
# to confuse, e.g. "San Yi Li" vs "San Yi Xi Li".
_COMPLEX_NAMES = [
    "San Yi Li",
    "San Yi Xi Li",
    "Hua Yuan Lu",
    "Hua Yuan Dong Lu",
    "Fu Cheng Men",
    "Fu Cheng Men Wai",
    "Yong An Li",
    "Yong An Xi Li",
    "Chao Yang Men",
    "Chao Yang Men Nei",
    "Tuan Jie Hu",
    "Tuan Jie Hu Bei",
    "Jin Song",
    "Jin Song Dong",
    "Pan Jia Yuan",
    "Pan Jia Yuan Nan",
    "Shuang Jing",
    "Shuang Jing Qiao",
    "Da Wang Lu",
    "Da Wang Xi Lu",
    "Bai Zi Wan",
    "Bai Zi Wan Nan",
    "Guang Qu Men",
    "Guang Qu Men Wai",
    "Jian Guo Men",
    "Jian Guo Men Wai",
]


class SpotKind(enum.Enum):
    """What a delivery spot physically is."""

    DOORSTEP = "doorstep"
    LOCKER = "locker"
    RECEPTION = "reception"


@dataclass(frozen=True)
class DeliverySpot:
    """A physical drop-off location in meters."""

    spot_id: str
    x: float
    y: float
    kind: SpotKind
    block_id: str


@dataclass(frozen=True)
class SynthBuilding:
    """A building inside a complex."""

    building_id: str
    block_id: str
    x: float
    y: float
    name: str


@dataclass(frozen=True)
class SynthAddressRecord:
    """A generated address with its ground-truth delivery spot."""

    address_id: str
    text: str
    building_id: str
    spot_id: str
    poi_category: int
    activity: float  # relative ordering frequency (heavy-tailed)


@dataclass(frozen=True)
class Block:
    """A residential complex: buildings plus shared locker/reception."""

    block_id: str
    name: str
    center_x: float
    center_y: float
    locker: DeliverySpot
    reception: DeliverySpot
    building_ids: tuple[str, ...]


@dataclass(frozen=True)
class CityConfig:
    """Knobs of the synthetic city."""

    n_blocks_x: int = 3
    n_blocks_y: int = 2
    block_size_m: float = 320.0
    buildings_per_block: tuple[int, int] = (4, 7)
    addresses_per_building: tuple[int, int] = (2, 5)
    locker_preference: float = 0.15
    reception_preference: float = 0.10
    doorstep_offset_m: float = 12.0
    origin: Point = field(default_factory=lambda: Point(116.40, 39.90))

    def __post_init__(self) -> None:
        if self.n_blocks_x < 1 or self.n_blocks_y < 1:
            raise ValueError("need at least one block in each direction")
        if self.locker_preference + self.reception_preference >= 1.0:
            raise ValueError("locker + reception preference must leave room for doorsteps")


class City:
    """The generated world: blocks, buildings, spots, addresses, a station."""

    def __init__(self, config: CityConfig, rng: np.random.Generator) -> None:
        self.config = config
        self.projection = LocalProjection(config.origin)
        self.blocks: dict[str, Block] = {}
        self.buildings: dict[str, SynthBuilding] = {}
        self.spots: dict[str, DeliverySpot] = {}
        self.addresses: dict[str, SynthAddressRecord] = {}
        #: Station (depot) the couriers start trips from, in meters.
        self.station_xy: tuple[float, float] = (-config.block_size_m, -config.block_size_m / 2)
        self._generate(rng)

    # ------------------------------------------------------------------
    def _generate(self, rng: np.random.Generator) -> None:
        cfg = self.config
        addr_counter = 0
        for bx in range(cfg.n_blocks_x):
            for by in range(cfg.n_blocks_y):
                block_index = bx * cfg.n_blocks_y + by
                block_id = f"blk{block_index:03d}"
                name = _COMPLEX_NAMES[block_index % len(_COMPLEX_NAMES)]
                cx = (bx + 0.5) * cfg.block_size_m
                cy = (by + 0.5) * cfg.block_size_m

                locker = DeliverySpot(
                    spot_id=f"{block_id}-locker",
                    x=cx + float(rng.uniform(-40, 40)),
                    y=cy + float(rng.uniform(-40, 40)),
                    kind=SpotKind.LOCKER,
                    block_id=block_id,
                )
                reception = DeliverySpot(
                    spot_id=f"{block_id}-reception",
                    x=cx + float(rng.uniform(-60, 60)),
                    y=cy + float(rng.uniform(-60, 60)),
                    kind=SpotKind.RECEPTION,
                    block_id=block_id,
                )
                self.spots[locker.spot_id] = locker
                self.spots[reception.spot_id] = reception

                n_buildings = int(rng.integers(*cfg.buildings_per_block))
                building_ids = []
                for b in range(n_buildings):
                    building_id = f"{block_id}-b{b:02d}"
                    # Scatter buildings inside the block, away from borders.
                    margin = 0.12 * cfg.block_size_m
                    bx_m = cx + float(rng.uniform(-0.5, 0.5)) * (cfg.block_size_m - 2 * margin)
                    by_m = cy + float(rng.uniform(-0.5, 0.5)) * (cfg.block_size_m - 2 * margin)
                    building = SynthBuilding(
                        building_id=building_id,
                        block_id=block_id,
                        x=bx_m,
                        y=by_m,
                        name=f"{name} Building {b + 1}",
                    )
                    self.buildings[building_id] = building
                    building_ids.append(building_id)

                    doorstep = DeliverySpot(
                        spot_id=f"{building_id}-door",
                        x=bx_m + float(rng.uniform(-1, 1)) * cfg.doorstep_offset_m,
                        y=by_m + float(rng.uniform(-1, 1)) * cfg.doorstep_offset_m,
                        kind=SpotKind.DOORSTEP,
                        block_id=block_id,
                    )
                    self.spots[doorstep.spot_id] = doorstep

                    poi_category = int(rng.integers(N_POI_CATEGORIES))
                    n_addresses = int(rng.integers(*cfg.addresses_per_building))
                    for unit in range(n_addresses):
                        spot_id = self._pick_spot(doorstep, locker, reception, rng)
                        # Heavy-tailed ordering activity (some very active
                        # customers, Figure 9(b)).
                        activity = float(rng.pareto(1.5) + 0.3)
                        record = SynthAddressRecord(
                            address_id=f"a{addr_counter:05d}",
                            text=f"{name} Building {b + 1} Unit {unit + 1}",
                            building_id=building_id,
                            spot_id=spot_id,
                            poi_category=poi_category,
                            activity=activity,
                        )
                        self.addresses[record.address_id] = record
                        addr_counter += 1

                self.blocks[block_id] = Block(
                    block_id=block_id,
                    name=name,
                    center_x=cx,
                    center_y=cy,
                    locker=locker,
                    reception=reception,
                    building_ids=tuple(building_ids),
                )

    def _pick_spot(
        self,
        doorstep: DeliverySpot,
        locker: DeliverySpot,
        reception: DeliverySpot,
        rng: np.random.Generator,
    ) -> str:
        roll = rng.random()
        if roll < self.config.locker_preference:
            return locker.spot_id
        if roll < self.config.locker_preference + self.config.reception_preference:
            return reception.spot_id
        return doorstep.spot_id

    # ------------------------------------------------------------------
    def spot_of(self, address_id: str) -> DeliverySpot:
        """The ground-truth delivery spot of an address."""
        return self.spots[self.addresses[address_id].spot_id]

    def true_location(self, address_id: str) -> Point:
        """Ground-truth delivery location as lng/lat."""
        spot = self.spot_of(address_id)
        return self.projection.unproject_point(spot.x, spot.y)

    def addresses_in_block(self, block_id: str) -> list[SynthAddressRecord]:
        """All addresses whose building belongs to ``block_id``."""
        return [
            a
            for a in self.addresses.values()
            if self.buildings[a.building_id].block_id == block_id
        ]

    @property
    def extent_m(self) -> tuple[float, float]:
        """Width/height of the block grid in meters."""
        return (
            self.config.n_blocks_x * self.config.block_size_m,
            self.config.n_blocks_y * self.config.block_size_m,
        )
