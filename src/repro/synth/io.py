"""Dataset serialization: trips, addresses and ground truth as JSON lines.

Lets generated worlds be shared between processes (e.g. the CLI's
``generate`` then ``evaluate`` commands) without re-simulating.
"""

from __future__ import annotations

import json
import pathlib
from typing import Union

from repro.geo import Point
from repro.trajectory import Address, DeliveryTrip, TrajPoint, Trajectory, Waybill

PathLike = Union[str, pathlib.Path]


def trip_to_dict(trip: DeliveryTrip) -> dict:
    """JSON-serializable form of a delivery trip."""
    return {
        "trip_id": trip.trip_id,
        "courier_id": trip.courier_id,
        "t_start": trip.t_start,
        "t_end": trip.t_end,
        "trajectory": [[p.lng, p.lat, p.t] for p in trip.trajectory],
        "waybills": [
            [w.waybill_id, w.address_id, w.t_received, w.t_delivered]
            for w in trip.waybills
        ],
    }


def trip_from_dict(payload: dict) -> DeliveryTrip:
    """Inverse of :func:`trip_to_dict`."""
    trajectory = Trajectory(
        payload["courier_id"],
        [TrajPoint(lng, lat, t) for lng, lat, t in payload["trajectory"]],
    )
    waybills = [
        Waybill(wid, aid, t_rec, t_del)
        for wid, aid, t_rec, t_del in payload["waybills"]
    ]
    return DeliveryTrip(
        trip_id=payload["trip_id"],
        courier_id=payload["courier_id"],
        t_start=payload["t_start"],
        t_end=payload["t_end"],
        trajectory=trajectory,
        waybills=waybills,
    )


def save_trips(trips: list[DeliveryTrip], path: PathLike) -> None:
    """Write trips as JSON lines."""
    with open(path, "w") as handle:
        for trip in trips:
            handle.write(json.dumps(trip_to_dict(trip)) + "\n")


def load_trips(path: PathLike) -> list[DeliveryTrip]:
    """Read trips previously written by :func:`save_trips`."""
    trips = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                trips.append(trip_from_dict(json.loads(line)))
    return trips


def save_addresses(addresses: dict[str, Address], path: PathLike) -> None:
    """Write the address book as JSON."""
    payload = {
        a.address_id: {
            "text": a.text,
            "building_id": a.building_id,
            "geocode": a.geocode.as_tuple(),
            "poi_category": a.poi_category,
        }
        for a in addresses.values()
    }
    pathlib.Path(path).write_text(json.dumps(payload))


def load_addresses(path: PathLike) -> dict[str, Address]:
    """Inverse of :func:`save_addresses`."""
    payload = json.loads(pathlib.Path(path).read_text())
    return {
        address_id: Address(
            address_id=address_id,
            text=entry["text"],
            building_id=entry["building_id"],
            geocode=Point(*entry["geocode"]),
            poi_category=entry["poi_category"],
        )
        for address_id, entry in payload.items()
    }


def save_ground_truth(ground_truth: dict[str, Point], path: PathLike) -> None:
    """Write ground-truth delivery locations as JSON."""
    payload = {a: p.as_tuple() for a, p in sorted(ground_truth.items())}
    pathlib.Path(path).write_text(json.dumps(payload))


def load_ground_truth(path: PathLike) -> dict[str, Point]:
    """Inverse of :func:`save_ground_truth`."""
    payload = json.loads(pathlib.Path(path).read_text())
    return {a: Point(lng, lat) for a, (lng, lat) in payload.items()}
