"""Daily weather for the synthetic world.

Section VI-C models delivery feasibility "considering time of the day, day
of the week and meteorology".  The simulator can take a daily weather
series: bad weather slows couriers and lengthens dwells; the availability
model conditions its profiles on it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np


class Weather(enum.Enum):
    """Daily weather condition."""

    CLEAR = "clear"
    RAIN = "rain"


@dataclass(frozen=True)
class WeatherConfig:
    """Weather process + its effect on courier behaviour."""

    p_rain: float = 0.25
    rain_speed_factor: float = 0.7  # couriers slower in rain
    rain_dwell_factor: float = 1.3  # handovers take longer

    def __post_init__(self) -> None:
        if not 0.0 <= self.p_rain <= 1.0:
            raise ValueError("p_rain must be a probability")
        if self.rain_speed_factor <= 0 or self.rain_dwell_factor <= 0:
            raise ValueError("rain factors must be positive")


def daily_weather(
    n_days: int, config: WeatherConfig | None = None, rng: np.random.Generator | None = None
) -> list[Weather]:
    """Independent per-day weather draws."""
    if n_days < 0:
        raise ValueError("n_days must be non-negative")
    config = config or WeatherConfig()
    rng = rng or np.random.default_rng(0)
    return [
        Weather.RAIN if rng.random() < config.p_rain else Weather.CLEAR
        for _ in range(n_days)
    ]


def weather_of_time(t: float, series: list[Weather]) -> Weather:
    """Weather at an absolute timestamp (day = floor(t / 86400))."""
    if not series:
        return Weather.CLEAR
    day = int(t // 86_400.0)
    return series[min(max(day, 0), len(series) - 1)]
