"""Batch-confirmation delay injection (paper Section V-D).

Couriers often confirm a batch of delivered parcels all at once while
staying somewhere.  The paper's synthetic-dataset procedure, reproduced
here: divide a trip's stops sequentially into ``n_batches`` equal-sized
groups; the leave time of each group's last stop is a batch-confirmation
time; every waybill actually delivered inside a group is delayed to that
group's confirmation time with probability ``p_delay``.

The real-world-like presets use ``n_batches = 2`` and ``p_delay ~ 0.3``
(the paper's observed courier behaviour); Table III sweeps
``p_delay ∈ {0.2, 0.6, 1.0}``.
"""

from __future__ import annotations

import numpy as np

from repro.synth.simulate import SimulatedTrip
from repro.trajectory import DeliveryTrip, Waybill


def inject_delays(
    sim_trips: list[SimulatedTrip],
    p_delay: float,
    n_batches: int = 2,
    rng: np.random.Generator | None = None,
    confirm_jitter_s: tuple[float, float] = (10.0, 120.0),
) -> list[DeliveryTrip]:
    """Produce delivery trips whose recorded times carry injected delays.

    Waybills not selected for delay keep a near-immediate confirmation
    (actual time plus a small jitter).  Returns new
    :class:`~repro.trajectory.DeliveryTrip` objects; inputs are untouched.
    """
    if not 0.0 <= p_delay <= 1.0:
        raise ValueError("p_delay must be a probability")
    if n_batches < 1:
        raise ValueError("n_batches must be >= 1")
    rng = rng or np.random.default_rng(0)

    out: list[DeliveryTrip] = []
    for sim in sim_trips:
        stops = sorted(sim.stops, key=lambda s: s.t_arrive)
        confirm_times = _batch_confirm_times(stops, n_batches)
        new_waybills: list[Waybill] = []
        for waybill in sim.trip.waybills:
            t_actual = sim.actual_delivery_time[waybill.waybill_id]
            batch_time = _batch_time_for(t_actual, confirm_times)
            if batch_time is not None and rng.random() < p_delay:
                recorded = batch_time
            else:
                recorded = t_actual + float(rng.uniform(*confirm_jitter_s))
            new_waybills.append(
                Waybill(
                    waybill_id=waybill.waybill_id,
                    address_id=waybill.address_id,
                    t_received=waybill.t_received,
                    t_delivered=max(recorded, waybill.t_received),
                )
            )
        out.append(
            DeliveryTrip(
                trip_id=sim.trip.trip_id,
                courier_id=sim.trip.courier_id,
                t_start=sim.trip.t_start,
                t_end=sim.trip.t_end,
                trajectory=sim.trip.trajectory,
                waybills=new_waybills,
            )
        )
    return out


def _batch_confirm_times(stops, n_batches: int) -> list[tuple[float, float]]:
    """``(window_start, confirm_time)`` per batch group.

    A waybill delivered in ``[window_start, confirm_time]`` can be delayed
    to ``confirm_time`` (the paper: "delivered before that time and after
    the previous batch confirmation time").
    """
    if not stops:
        return []
    n = len(stops)
    group_size = max(1, int(np.ceil(n / n_batches)))
    windows = []
    prev_confirm = -np.inf
    for start in range(0, n, group_size):
        group = stops[start : start + group_size]
        confirm = group[-1].t_leave
        windows.append((prev_confirm, confirm))
        prev_confirm = confirm
    return windows


def _batch_time_for(t_actual: float, windows: list[tuple[float, float]]) -> float | None:
    for window_start, confirm in windows:
        if window_start < t_actual <= confirm:
            return confirm
    return None
