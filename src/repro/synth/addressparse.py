"""Toy address segmentation: plaintext address -> building key.

Stands in for the paper's "commercial address segmentation and tagging
tool" that extracts ``B(addr)`` (footnote 3).  Synthetic addresses follow
the template ``"<complex name> Building <n> Unit <m>"``; the parser
tokenizes that and resolves the building against the city registry,
including the realistic failure on near-duplicate complex names when fuzzy
matching is allowed.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.synth.city import City

_PATTERN = re.compile(
    r"^(?P<complex>.+?)\s+Building\s+(?P<building>\d+)(?:\s+Unit\s+(?P<unit>\d+))?\s*$",
    re.IGNORECASE,
)


@dataclass(frozen=True)
class ParsedAddress:
    """Segmented address components."""

    complex_name: str
    building_no: int
    unit_no: int | None


def parse_address(text: str) -> ParsedAddress:
    """Segment an address string; raises ``ValueError`` when malformed."""
    match = _PATTERN.match(text.strip())
    if not match:
        raise ValueError(f"unparseable address: {text!r}")
    unit = match.group("unit")
    return ParsedAddress(
        complex_name=match.group("complex").strip(),
        building_no=int(match.group("building")),
        unit_no=int(unit) if unit is not None else None,
    )


def resolve_building(
    parsed: ParsedAddress, city: City, fuzzy: bool = False
) -> str | None:
    """Resolve a parsed address to a ``building_id`` in the city.

    Exact complex-name match first.  With ``fuzzy=True``, a unique
    2-token-prefix match is accepted — which is precisely how
    "San Yi Li" can be confused with "San Yi Xi Li" when only one of them
    exists in the registry, mirroring geocoder failure mode 1.
    """
    by_name = {}
    for block in city.blocks.values():
        by_name.setdefault(block.name, []).append(block)
    candidates = by_name.get(parsed.complex_name, [])
    if not candidates and fuzzy:
        prefix = " ".join(parsed.complex_name.split()[:2])
        matches = [
            block
            for name, blocks in by_name.items()
            if " ".join(name.split()[:2]) == prefix
            for block in blocks
        ]
        if len(matches) == 1:
            candidates = matches
    for block in candidates:
        index = parsed.building_no - 1
        if 0 <= index < len(block.building_ids):
            return block.building_ids[index]
    return None


def building_of(text: str, city: City, fuzzy: bool = False) -> str | None:
    """One-call ``B(addr)``: parse then resolve (None when unresolvable)."""
    try:
        parsed = parse_address(text)
    except ValueError:
        return None
    return resolve_building(parsed, city, fuzzy=fuzzy)
