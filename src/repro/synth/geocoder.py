"""Synthetic geocoder with the paper's three failure modes.

Section V-E identifies why Geocoding is insufficient:

1. *Parse confusion* — similar complex names ("San Yi Li" / "San Yi Xi Li")
   send the address to a building in a nearby different complex.
2. *Coarse POI database* — multiple addresses snap to the complex centroid.
3. *Preference blindness* — even a perfect geocode is the building, not the
   locker/reception the customer actually uses.

Mode 3 needs no error injection (it falls out of the city's preference
model); modes 1 and 2 are injected here with configurable probabilities so
the DowBJ-like and SubBJ-like presets can differ in geocoding precision.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo import Point
from repro.synth.city import City, SynthAddressRecord
from repro.trajectory import Address


@dataclass(frozen=True)
class GeocoderConfig:
    """Error-model knobs."""

    jitter_sigma_m: float = 20.0
    parse_confusion_prob: float = 0.04
    coarse_poi_prob: float = 0.15

    def __post_init__(self) -> None:
        if self.jitter_sigma_m < 0:
            raise ValueError("jitter_sigma_m must be non-negative")
        if not 0 <= self.parse_confusion_prob <= 1:
            raise ValueError("parse_confusion_prob must be a probability")
        if not 0 <= self.coarse_poi_prob <= 1:
            raise ValueError("coarse_poi_prob must be a probability")


class SyntheticGeocoder:
    """Geocodes city addresses with injected, realistic errors."""

    def __init__(self, city: City, config: GeocoderConfig, rng: np.random.Generator) -> None:
        self.city = city
        self.config = config
        self.rng = rng
        # Similar-name neighbours: complexes whose names share a prefix.
        self._similar: dict[str, list[str]] = {}
        blocks = list(city.blocks.values())
        for block in blocks:
            prefix = " ".join(block.name.split()[:2])
            self._similar[block.block_id] = [
                other.block_id
                for other in blocks
                if other.block_id != block.block_id
                and " ".join(other.name.split()[:2]) == prefix
            ]

    def geocode_xy(self, record: SynthAddressRecord) -> tuple[float, float]:
        """Geocode an address to meter coordinates (with errors)."""
        building = self.city.buildings[record.building_id]
        block = self.city.blocks[building.block_id]
        roll = self.rng.random()
        if roll < self.config.parse_confusion_prob and self._similar[block.block_id]:
            # Failure mode 1: land on a building of the similarly named
            # complex (same building rank when possible).
            other_id = self._similar[block.block_id][
                int(self.rng.integers(len(self._similar[block.block_id])))
            ]
            other = self.city.blocks[other_id]
            rank = min(
                block.building_ids.index(building.building_id),
                len(other.building_ids) - 1,
            )
            wrong = self.city.buildings[other.building_ids[rank]]
            base_x, base_y = wrong.x, wrong.y
        elif roll < self.config.parse_confusion_prob + self.config.coarse_poi_prob:
            # Failure mode 2: coarse POI database -> complex centroid.
            base_x, base_y = block.center_x, block.center_y
        else:
            base_x, base_y = building.x, building.y
        jitter = self.rng.normal(0.0, self.config.jitter_sigma_m, size=2)
        return float(base_x + jitter[0]), float(base_y + jitter[1])

    def geocode(self, record: SynthAddressRecord) -> Address:
        """Produce the waybill-facing :class:`~repro.trajectory.Address`."""
        x, y = self.geocode_xy(record)
        point = self.city.projection.unproject_point(x, y)
        return Address(
            address_id=record.address_id,
            text=record.text,
            building_id=record.building_id,
            geocode=Point(point.lng, point.lat),
            poi_category=record.poi_category,
        )

    def geocode_all(self) -> dict[str, Address]:
        """Geocode every address in the city (deterministic given the rng)."""
        return {
            record.address_id: self.geocode(record)
            for record in sorted(self.city.addresses.values(), key=lambda r: r.address_id)
        }
