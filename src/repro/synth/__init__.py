"""Synthetic courier world: city, geocoder, trip simulation, datasets.

Stands in for the proprietary JD Logistics data (DowBJ / SubBJ).  See
DESIGN.md for the substitution rationale.
"""

from repro.synth.city import (
    City,
    CityConfig,
    DeliverySpot,
    SpotKind,
    SynthAddressRecord,
    SynthBuilding,
    N_POI_CATEGORIES,
)
from repro.synth.geocoder import GeocoderConfig, SyntheticGeocoder
from repro.synth.simulate import (
    PlannedStop,
    SimulatedTrip,
    SimulationConfig,
    TripSimulator,
)
from repro.synth.delays import inject_delays
from repro.synth.weather import Weather, WeatherConfig, daily_weather, weather_of_time
from repro.synth.addressparse import ParsedAddress, building_of, parse_address, resolve_building
from repro.synth.stream import EventStreamConfig, FixEventStream, build_day_streams
from repro.synth.datasets import (
    AddressSplit,
    DatasetConfig,
    SynthDataset,
    downbj_config,
    generate_dataset,
    split_addresses_by_region,
    subbj_config,
    tiny_config,
)

__all__ = [
    "City",
    "CityConfig",
    "DeliverySpot",
    "SpotKind",
    "SynthAddressRecord",
    "SynthBuilding",
    "N_POI_CATEGORIES",
    "GeocoderConfig",
    "SyntheticGeocoder",
    "PlannedStop",
    "SimulatedTrip",
    "SimulationConfig",
    "TripSimulator",
    "inject_delays",
    "Weather",
    "WeatherConfig",
    "daily_weather",
    "weather_of_time",
    "ParsedAddress",
    "EventStreamConfig",
    "FixEventStream",
    "build_day_streams",
    "building_of",
    "parse_address",
    "resolve_building",
    "AddressSplit",
    "DatasetConfig",
    "SynthDataset",
    "downbj_config",
    "generate_dataset",
    "split_addresses_by_region",
    "subbj_config",
    "tiny_config",
]
