"""Parcel allocation over inferred delivery locations.

The paper's introduction names parcel allocation as a downstream
application (and notes under the P95 metric that "occasional large
inference errors can cause huge business loss" there).  This allocator
splits a batch of waybills among couriers by balancing estimated tour
workload: greedy seeding by geographic spread, then local moves while they
reduce the maximum courier tour length.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.routing import plan_route, route_length
from repro.apps.store import DeliveryLocationStore
from repro.geo import LocalProjection
from repro.trajectory import Address


@dataclass
class AssignmentResult:
    """Waybill split across couriers plus the resulting tour lengths."""

    assignment: dict[str, list[Address]]  # courier -> addresses
    tour_length_m: dict[str, float] = field(default_factory=dict)

    @property
    def makespan_m(self) -> float:
        """Longest courier tour (the balancing objective)."""
        return max(self.tour_length_m.values()) if self.tour_length_m else 0.0

    @property
    def total_m(self) -> float:
        """Sum of tour lengths."""
        return float(sum(self.tour_length_m.values()))


class ParcelAllocator:
    """Balances a waybill batch across couriers by tour length."""

    def __init__(
        self,
        store: DeliveryLocationStore,
        projection: LocalProjection,
        max_rounds: int = 30,
    ) -> None:
        self.store = store
        self.projection = projection
        self.max_rounds = max_rounds

    def _coords(self, addresses: list[Address]) -> np.ndarray:
        out = []
        for address in addresses:
            point = self.store.query(address).location
            out.append(self.projection.to_xy(point.lng, point.lat))
        return np.array(out, dtype=float).reshape(-1, 2)

    @staticmethod
    def _tour_length(coords: np.ndarray, start_xy: tuple[float, float]) -> float:
        if len(coords) == 0:
            return 0.0
        order = plan_route(coords, start_xy)
        return route_length(coords, order, start_xy)

    def allocate(
        self,
        addresses: list[Address],
        courier_ids: list[str],
        start_xy: tuple[float, float],
    ) -> AssignmentResult:
        """Assign each address to one courier, minimizing the makespan."""
        if not courier_ids:
            raise ValueError("need at least one courier")
        coords = self._coords(addresses)
        k = len(courier_ids)
        if len(addresses) == 0:
            return AssignmentResult(
                {c: [] for c in courier_ids}, {c: 0.0 for c in courier_ids}
            )

        # Seed: k-means-style geographic split keeps zones compact.
        from repro.cluster import kmeans

        n_groups = min(k, len(addresses))
        labels, _ = kmeans(coords, n_groups, rng=np.random.default_rng(0))
        groups: dict[int, list[int]] = {g: [] for g in range(k)}
        for i, label in enumerate(labels):
            groups[int(label)].append(i)

        def length_of(idx_list: list[int]) -> float:
            return self._tour_length(coords[idx_list], start_xy)

        lengths = {g: length_of(ids) for g, ids in groups.items()}

        # Local search: move one address from the longest tour to another
        # courier while the makespan improves.
        for _ in range(self.max_rounds):
            worst = max(lengths, key=lengths.get)
            improved = False
            for i in list(groups[worst]):
                for other in groups:
                    if other == worst:
                        continue
                    new_worst = length_of([j for j in groups[worst] if j != i])
                    new_other = length_of(groups[other] + [i])
                    if max(new_worst, new_other) < max(lengths[worst], lengths[other]) - 1e-6:
                        groups[worst].remove(i)
                        groups[other].append(i)
                        lengths[worst] = new_worst
                        lengths[other] = new_other
                        improved = True
                        break
                if improved:
                    break
            if not improved:
                break

        assignment = {
            courier_ids[g]: [addresses[i] for i in sorted(ids)]
            for g, ids in groups.items()
        }
        tour_length = {courier_ids[g]: lengths[g] for g in groups}
        return AssignmentResult(assignment, tour_length)
