"""The deployed delivery-location service (Figure 14).

Wires the offline DLInfMA inference to the online query store: periodic
batches of trips re-run the inference and refresh the store; online
lookups go through the address -> building -> geocode fallback chain.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.store import DeliveryLocationStore, QueryResult
from repro.core import DLInfMA, DLInfMAConfig
from repro.geo import LocalProjection, Point
from repro.trajectory import Address, DeliveryTrip


@dataclass
class ServiceStats:
    """Bookkeeping about the last inference refresh."""

    n_trips: int
    n_addresses_inferred: int
    timings: dict[str, float]


class DeliveryLocationService:
    """Offline-inference + online-query facade."""

    def __init__(
        self,
        addresses: dict[str, Address],
        projection: LocalProjection,
        config: DLInfMAConfig | None = None,
    ) -> None:
        self.addresses = dict(addresses)
        self.projection = projection
        self.config = config or DLInfMAConfig()
        self.store = DeliveryLocationStore({}, self.addresses)
        self.pipeline: DLInfMA | None = None
        self.last_refresh: ServiceStats | None = None

    def refresh(
        self,
        trips: list[DeliveryTrip],
        ground_truth: dict[str, Point],
        train_ids: list[str],
        val_ids: list[str] | None = None,
    ) -> ServiceStats:
        """Re-run the offline inference and update the store."""
        pipeline = DLInfMA(self.config)
        pipeline.fit(
            trips,
            self.addresses,
            ground_truth,
            train_ids,
            val_ids,
            projection=self.projection,
        )
        delivered = sorted({a for trip in trips for a in trip.address_ids})
        inferred = pipeline.predict(delivered)
        self.store.update(inferred)
        self.pipeline = pipeline
        self.last_refresh = ServiceStats(
            n_trips=len(trips),
            n_addresses_inferred=len(inferred),
            timings=dict(pipeline.timings),
        )
        return self.last_refresh

    def query(self, address: Address) -> QueryResult:
        """Online lookup with the three-tier fallback."""
        return self.store.query(address)

    def query_id(self, address_id: str) -> QueryResult:
        """Online lookup by known address id."""
        return self.store.query_id(address_id)

    def save(self, directory) -> None:
        """Persist the serving payload (location table) to a directory."""
        import pathlib

        from repro.core.persistence import save_locations

        directory = pathlib.Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        save_locations(self.store._by_address, directory / "locations.json")

    def load(self, directory) -> None:
        """Restore a previously saved location table into the store."""
        import pathlib

        from repro.core.persistence import load_locations

        directory = pathlib.Path(directory)
        self.store.update(load_locations(directory / "locations.json"))
