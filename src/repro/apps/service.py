"""The deployed delivery-location service (Figure 14).

Wires the offline DLInfMA inference to the online query store.  The first
batch of trips fits the pipeline from scratch; every later batch goes
through the incremental :meth:`~repro.core.DLInfMA.update` path — stay
points are extracted only for the new trips and the candidate pool is
merged forward, exactly how the deployed system absorbs data "in a
bi-weekly manner" (Section VI-A) — so refresh cost is O(new data), not
O(all data).  Online lookups go through the address -> building -> geocode
fallback chain.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.apps.store import QueryResult
from repro.core import DLInfMA, DLInfMAConfig
from repro.geo import LocalProjection, Point
from repro.obs import event, get_registry
from repro.obs import span as obs_span
from repro.obs.drift import DriftMonitor, matcher_fingerprint, pool_fingerprint
from repro.serve.shard import ShardedLocationStore, ShardStrategy
from repro.trajectory import Address, DeliveryTrip


@dataclass
class ServiceStats:
    """Bookkeeping about the last inference refresh."""

    n_trips: int
    n_addresses_inferred: int
    timings: dict[str, float]
    n_new_trips: int = 0
    incremental: bool = False
    counters: dict[str, int] = field(default_factory=dict)
    #: Drift reports keyed by fingerprint kind ("pool" / "matcher");
    #: empty on the first refresh (no baseline to compare against yet).
    drift: dict[str, dict] = field(default_factory=dict)

    @property
    def drifted(self) -> bool:
        return any(report.get("drifted") for report in self.drift.values())


class DeliveryLocationService:
    """Offline-inference + online-query facade."""

    def __init__(
        self,
        addresses: dict[str, Address],
        projection: LocalProjection,
        config: DLInfMAConfig | None = None,
        n_shards: int = 4,
        shard_strategy: ShardStrategy | None = None,
    ) -> None:
        self.addresses = dict(addresses)
        self.projection = projection
        self.config = config or DLInfMAConfig()
        self.store = ShardedLocationStore(
            {}, self.addresses, n_shards=n_shards, strategy=shard_strategy
        )
        self.pipeline: DLInfMA | None = None
        self.last_refresh: ServiceStats | None = None
        #: Fingerprints every refresh; compares each against the previous
        #: one (PSI + scalar ratios) and flags silent model/pool drift.
        self.drift = DriftMonitor()

    def refresh(
        self,
        trips: list[DeliveryTrip],
        ground_truth: dict[str, Point],
        train_ids: list[str],
        val_ids: list[str] | None = None,
    ) -> ServiceStats:
        """Absorb a batch of trips and update the store.

        The first call fits the pipeline from scratch; later calls treat
        ``trips`` as the batch that landed since the previous refresh and
        run the incremental update (already-known trip ids are skipped, so
        overlapping batches are safe).
        """
        with obs_span("service.refresh", n_trips=len(trips)) as sp:
            if self.pipeline is None:
                pipeline = DLInfMA(self.config)
                pipeline.fit(
                    trips,
                    self.addresses,
                    ground_truth,
                    train_ids,
                    val_ids,
                    projection=self.projection,
                )
                self.pipeline = pipeline
                incremental = False
                n_new = len(trips)
            else:
                pipeline = self.pipeline
                known = pipeline.extractor.trips
                n_new = sum(1 for t in trips if t.trip_id not in known)
                pipeline.update(trips, ground_truth, train_ids, val_ids)
                incremental = True

            delivered = sorted(pipeline.extractor.trips_by_address)
            inferred = pipeline.predict(delivered)
            self.store.update(inferred)
            if sp is not None:
                sp.set("incremental", incremental)
                sp.set("n_new_trips", n_new)
                sp.set("n_addresses_inferred", len(inferred))

        registry = get_registry()
        registry.counter(
            "service_refreshes_total", "Refresh batches absorbed, by kind"
        ).inc(kind="incremental" if incremental else "full")
        registry.gauge(
            "service_store_size", "Address-keyed locations currently served"
        ).set(len(self.store))
        registry.gauge(
            "service_pool_size", "Candidate locations in the current pool"
        ).set(len(pipeline.pool) if pipeline.pool is not None else 0)
        registry.gauge(
            "service_trips_absorbed", "Total trips the pipeline has absorbed"
        ).set(len(pipeline.extractor.trips))
        event(
            "service.refresh.complete", component="service",
            incremental=incremental, n_new_trips=n_new,
            n_addresses_inferred=len(inferred), store_size=len(self.store),
        )
        self.last_refresh = ServiceStats(
            n_trips=len(pipeline.extractor.trips),
            n_addresses_inferred=len(inferred),
            timings=dict(pipeline.timings),
            n_new_trips=n_new,
            incremental=incremental,
            counters=dict(pipeline.counters),
            drift=self._check_drift(pipeline),
        )
        return self.last_refresh

    def _check_drift(self, pipeline: DLInfMA) -> dict[str, dict]:
        """Fingerprint this refresh and compare against the previous one.

        The monitor handles gauge/event emission; here we just collect
        the report dicts for :class:`ServiceStats` (empty on the first
        refresh, when there is no baseline yet).
        """
        fingerprints = [
            pool_fingerprint(
                pipeline.pool, pipeline.extractor.profiles, pipeline.examples
            )
        ]
        if pipeline.selector is not None and pipeline.examples:
            fingerprints.append(
                matcher_fingerprint(pipeline.selector, pipeline.examples)
            )
        reports: dict[str, dict] = {}
        for fingerprint in fingerprints:
            report = self.drift.observe(fingerprint)
            if report is not None:
                reports[report.kind] = report.to_dict()
        return reports

    def _observe_query(self, seconds: float, result: QueryResult) -> None:
        get_registry().histogram(
            "service_query_latency_seconds",
            "Online store lookup latency, labeled by answering tier",
        ).observe(seconds, source=result.source.value)

    def query(self, address: Address) -> QueryResult:
        """Online lookup with the three-tier fallback."""
        t0 = time.perf_counter()
        result = self.store.query(address)
        self._observe_query(time.perf_counter() - t0, result)
        return result

    def query_id(self, address_id: str) -> QueryResult:
        """Online lookup by known address id.

        Raises :class:`~repro.apps.store.UnknownAddressError` (a
        :class:`KeyError` subclass) when ``address_id`` is not in the
        service's address book; the serving tier's router maps that to a
        structured ``UNKNOWN_ADDRESS`` response instead of a crash.
        """
        t0 = time.perf_counter()
        result = self.store.query_id(address_id)
        self._observe_query(time.perf_counter() - t0, result)
        return result

    def server(self, server_config=None, live_scoring: bool = False):
        """A :class:`~repro.serve.server.QueryServer` over this store.

        The server shares the service's sharded store by reference, so a
        later :meth:`refresh` becomes visible to the serving tier at the
        next snapshot swap (callers should also drop the server's result
        cache via ``QueryServer.apply_refresh`` or ``router.on_refresh``
        for immediate visibility).

        With ``live_scoring=True`` cold cache misses are answered by
        running LocMatcher in the serving path: the micro-batcher
        coalesces concurrent misses and a
        :class:`~repro.serve.scoring.ModelScoringTier` scores all
        example-backed ids of the batch in one padded masked forward pass
        (store fallback for the rest).  Requires a fitted pipeline.
        """
        from repro.serve.server import QueryServer, ServerConfig
        from repro.serve.router import QueryRouter

        config = server_config or ServerConfig()
        router = None
        if live_scoring:
            if self.pipeline is None or self.pipeline.selector is None:
                raise RuntimeError("live scoring requires a fitted pipeline")
            from repro.serve.scoring import ModelScoringTier

            tier = ModelScoringTier(self.pipeline, self.store)
            router = QueryRouter.build(
                self.store,
                cache_capacity=config.cache_capacity,
                cache_ttl_s=config.cache_ttl_s,
                batch_window_s=config.batch_window_s,
                batch_max=config.batch_max,
                batch_fn=tier.query_ids_batch,
            )
        return QueryServer(self.store, config=config, router=router)

    def save(self, directory) -> None:
        """Persist the serving payload (location table) to a directory."""
        import pathlib

        from repro.core.persistence import save_locations

        directory = pathlib.Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        save_locations(self.store.address_locations, directory / "locations.json")

    def load(self, directory) -> None:
        """Restore a previously saved location table into the store."""
        import pathlib

        from repro.core.persistence import load_locations

        directory = pathlib.Path(directory)
        self.store.update(load_locations(directory / "locations.json"))
