"""Application 1: route planning over inferred delivery locations.

Section VI-B: routes for new couriers were planned with TSP over geocoded
locations; DLInfMA's inferred locations make the planned tours match where
deliveries actually happen.  The solver is nearest-neighbour construction
plus 2-opt improvement — standard and deterministic.
"""

from __future__ import annotations

import numpy as np

from repro.apps.store import DeliveryLocationStore
from repro.geo import LocalProjection
from repro.trajectory import Address


def route_length(points: np.ndarray, order: list[int], start: tuple[float, float]) -> float:
    """Total tour length: start -> points[order[0]] -> ... -> last stop."""
    if len(order) == 0:
        return 0.0
    length = float(np.hypot(points[order[0], 0] - start[0], points[order[0], 1] - start[1]))
    for a, b in zip(order, order[1:]):
        length += float(np.hypot(*(points[a] - points[b])))
    return length


def nearest_neighbor_order(points: np.ndarray, start: tuple[float, float]) -> list[int]:
    """Greedy construction: always visit the closest unvisited stop."""
    n = len(points)
    remaining = set(range(n))
    order: list[int] = []
    x, y = start
    while remaining:
        nxt = min(remaining, key=lambda i: (points[i, 0] - x) ** 2 + (points[i, 1] - y) ** 2)
        remaining.remove(nxt)
        order.append(nxt)
        x, y = points[nxt]
    return order


def two_opt(points: np.ndarray, order: list[int], start: tuple[float, float], max_rounds: int = 20) -> list[int]:
    """2-opt: reverse segments while doing so shortens the tour."""
    best = list(order)
    best_len = route_length(points, best, start)
    n = len(best)
    for _ in range(max_rounds):
        improved = False
        for i in range(n - 1):
            for j in range(i + 2, n):
                candidate = best[: i + 1] + best[i + 1 : j + 1][::-1] + best[j + 1 :]
                cand_len = route_length(points, candidate, start)
                if cand_len < best_len - 1e-9:
                    best, best_len = candidate, cand_len
                    improved = True
        if not improved:
            break
    return best


def plan_route(points: np.ndarray, start: tuple[float, float]) -> list[int]:
    """Nearest-neighbour + 2-opt tour over ``(n, 2)`` meter coordinates."""
    points = np.asarray(points, dtype=float).reshape(-1, 2)
    if len(points) == 0:
        return []
    return two_opt(points, nearest_neighbor_order(points, start), start)


class RoutePlanner:
    """Plans delivery tours for a batch of addresses using the store."""

    def __init__(self, store: DeliveryLocationStore, projection: LocalProjection) -> None:
        self.store = store
        self.projection = projection

    def plan(
        self, addresses: list[Address], start_xy: tuple[float, float]
    ) -> tuple[list[Address], float]:
        """Visit order and tour length (meters) for a batch of addresses."""
        if not addresses:
            return [], 0.0
        coords = []
        for address in addresses:
            point = self.store.query(address).location
            coords.append(self.projection.to_xy(point.lng, point.lat))
        points = np.array(coords, dtype=float)
        order = plan_route(points, start_xy)
        return [addresses[i] for i in order], route_length(points, order, start_xy)
