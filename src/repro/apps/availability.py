"""Application 2: customer availability inference.

Section VI-C: availability labels were previously derived from the manually
recorded delivery times, which can be delayed; with inferred delivery
locations, the *actual* delivery time is recovered as the stay point near
the inferred location, and the availability profile (hour of day x day of
week) is built from those corrected times.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.geo import LocalProjection, Point
from repro.trajectory import DeliveryTrip, StayPoint

HOURS = 24
WEEKDAYS = 7


def actual_delivery_times(
    trips: list[DeliveryTrip],
    stay_points_by_trip: dict[str, list[StayPoint]],
    locations: dict[str, Point],
    projection: LocalProjection,
    radius_m: float = 30.0,
) -> dict[str, list[float]]:
    """Recover actual delivery times from stays near the inferred location.

    For each waybill, the chosen time is the stay point of its trip closest
    to the address's inferred delivery location (within ``radius_m`` and no
    later than the recorded confirmation); the recorded time is used as a
    fallback when no such stay exists.
    """
    out: dict[str, list[float]] = defaultdict(list)
    loc_xy = {
        address_id: projection.to_xy(point.lng, point.lat)
        for address_id, point in locations.items()
    }
    for trip in trips:
        stays = stay_points_by_trip.get(trip.trip_id, [])
        stay_xy = [projection.to_xy(sp.lng, sp.lat) for sp in stays]
        for waybill in trip.waybills:
            target = loc_xy.get(waybill.address_id)
            if target is None:
                continue
            best_t, best_d = None, radius_m
            for sp, (sx, sy) in zip(stays, stay_xy):
                if sp.t > waybill.t_delivered:
                    continue
                d = float(np.hypot(sx - target[0], sy - target[1]))
                if d <= best_d:
                    best_t, best_d = sp.t, d
            out[waybill.address_id].append(
                best_t if best_t is not None else waybill.t_delivered
            )
    return dict(out)


@dataclass
class AvailabilityProfile:
    """Delivery-feasibility estimates over (weekday, hour) buckets."""

    grid: np.ndarray  # (WEEKDAYS, HOURS) smoothed probabilities

    def prob(self, weekday: int, hour: int) -> float:
        """Estimated availability at a weekday/hour."""
        return float(self.grid[weekday % WEEKDAYS, hour % HOURS])

    def hourly(self) -> np.ndarray:
        """Availability by hour of day, averaged over weekdays."""
        return self.grid.mean(axis=0)

    def windows(self, threshold: float = 0.5) -> list[tuple[int, int]]:
        """Contiguous hour windows ``[start, end)`` above ``threshold``,
        averaged over weekdays."""
        hourly = self.hourly()
        windows: list[tuple[int, int]] = []
        start = None
        for hour in range(HOURS):
            if hourly[hour] >= threshold and start is None:
                start = hour
            elif hourly[hour] < threshold and start is not None:
                windows.append((start, hour))
                start = None
        if start is not None:
            windows.append((start, HOURS))
        return windows


class AvailabilityModel:
    """Builds per-address availability profiles from delivery times.

    With a daily weather series (``repro.synth.weather``), separate
    profiles are kept for clear and rainy days — the paper's availability
    application conditions on meteorology alongside hour and weekday.
    """

    def __init__(self, smoothing: float = 1.0) -> None:
        if smoothing < 0:
            raise ValueError("smoothing must be non-negative")
        self.smoothing = smoothing
        self.profiles: dict[str, AvailabilityProfile] = {}
        self.weather_profiles: dict[tuple[str, str], AvailabilityProfile] = {}

    def _grid_from(self, times: list[float]) -> AvailabilityProfile:
        counts = np.zeros((WEEKDAYS, HOURS))
        for t in times:
            day = int(t // 86_400.0) % WEEKDAYS
            hour = int((t % 86_400.0) // 3_600.0)
            counts[day, hour] += 1.0
        smoothed = counts + self.smoothing / (WEEKDAYS * HOURS)
        return AvailabilityProfile(grid=smoothed / smoothed.max())

    def fit(
        self,
        delivery_times: dict[str, list[float]],
        weather: list | None = None,
    ) -> "AvailabilityModel":
        """Estimate profiles from successful-delivery timestamps.

        Each delivery is a positive observation for its (weekday, hour)
        bucket; probabilities are bucket shares normalized to a peak of 1
        with Laplace smoothing, so sparse addresses degrade gracefully.
        When ``weather`` is given (one entry per simulated day), per-weather
        profiles become available via :meth:`weather_profile`.
        """
        self.profiles = {}
        self.weather_profiles = {}
        for address_id, times in delivery_times.items():
            self.profiles[address_id] = self._grid_from(times)
            if weather:
                from repro.synth.weather import weather_of_time

                by_condition: dict[str, list[float]] = {}
                for t in times:
                    condition = weather_of_time(t, weather).value
                    by_condition.setdefault(condition, []).append(t)
                for condition, subset in by_condition.items():
                    self.weather_profiles[(address_id, condition)] = self._grid_from(subset)
        return self

    def profile(self, address_id: str) -> AvailabilityProfile:
        """The profile of an address; raises ``KeyError`` when unknown."""
        return self.profiles[address_id]

    def weather_profile(self, address_id: str, condition: str) -> AvailabilityProfile:
        """The weather-conditioned profile; falls back to the overall
        profile when the address has no deliveries under ``condition``."""
        return self.weather_profiles.get((address_id, condition), self.profiles[address_id])
