"""Delivery-location store with the deployed system's query fallback.

Section VI-A: inference results are stored address-keyed; a building-keyed
table holds each building's *most used* delivery location so addresses
never seen in history still get a sensible answer; the geocode is the last
resort.  Queries report which tier answered.

The store is read-mostly: refreshes land "in a bi-weekly manner" while
queries keep flowing, so :meth:`DeliveryLocationStore.update` builds the
new tables off to the side and swaps the references in — readers only
ever see a fully-built table, never one mid-mutation.  The sharded,
lock-free variant used by the online serving tier lives in
:mod:`repro.serve.shard`.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from enum import Enum

from repro.geo import Point
from repro.trajectory import Address


class UnknownAddressError(KeyError):
    """Raised when a lookup names an address id outside the address book.

    Subclasses :class:`KeyError` so callers that guarded against the old
    raw ``KeyError`` keep working, while new callers (the serving tier's
    router, the CLI) can catch the typed miss explicitly and map it to a
    structured "unknown address" response instead of a crash.
    """

    def __init__(self, address_id: str) -> None:
        super().__init__(address_id)
        self.address_id = address_id

    def __str__(self) -> str:
        return f"unknown address id: {self.address_id!r}"


class QuerySource(Enum):
    """Which tier of the store answered a query."""

    ADDRESS = "address"
    BUILDING = "building"
    GEOCODE = "geocode"
    #: Answered by live LocMatcher scoring (the serving tier's model path,
    #: :class:`repro.serve.scoring.ModelScoringTier`) rather than a table.
    MODEL = "model"


@dataclass(frozen=True)
class QueryResult:
    """A resolved delivery location and its provenance.

    ``confidence`` is the scorer's probability for the served candidate
    (softmax mass under :class:`repro.serve.scoring.ModelScoringTier`,
    or a publisher-supplied value in columnar snapshots); table lookups
    that carry no score leave it ``None``.
    """

    location: Point
    source: QuerySource
    confidence: float | None = None


def aggregate_building_locations(
    address_locations: dict[str, Point], addresses: dict[str, Address]
) -> dict[str, Point]:
    """Most frequently used location per building (mode over addresses).

    Shared by the single-table store here and the sharded serving store,
    which aggregates across *all* shards so the building fallback sees the
    global vote, not a per-shard slice.
    """
    votes: dict[str, Counter] = defaultdict(Counter)
    for address_id, point in address_locations.items():
        address = addresses.get(address_id)
        if address is None:
            continue
        key = (round(point.lng, 6), round(point.lat, 6))
        votes[address.building_id][key] += 1
    return {
        building: Point(*max(counter.items(), key=lambda kv: (kv[1], kv[0]))[0])
        for building, counter in votes.items()
    }


class DeliveryLocationStore:
    """Two-tier key-value store: address -> location, building -> location."""

    def __init__(
        self,
        address_locations: dict[str, Point],
        addresses: dict[str, Address],
    ) -> None:
        self._by_address = dict(address_locations)
        self._addresses = dict(addresses)
        self._by_building = aggregate_building_locations(
            self._by_address, self._addresses
        )

    # ------------------------------------------------------------------
    def query(self, address: Address) -> QueryResult:
        """Resolve a delivery location: address -> building -> geocode."""
        point = self._by_address.get(address.address_id)
        if point is not None:
            return QueryResult(point, QuerySource.ADDRESS)
        point = self._by_building.get(address.building_id)
        if point is not None:
            return QueryResult(point, QuerySource.BUILDING)
        return QueryResult(address.geocode, QuerySource.GEOCODE)

    def query_id(self, address_id: str) -> QueryResult:
        """Resolve by id; the address must be in the store's address book.

        Raises :class:`UnknownAddressError` (a :class:`KeyError` subclass)
        for ids outside the address book.
        """
        address = self._addresses.get(address_id)
        if address is None:
            raise UnknownAddressError(address_id)
        return self.query(address)

    def update(self, address_locations: dict[str, Point]) -> None:
        """Merge a fresh inference batch (periodic refresh, Section VI-A).

        Snapshot-then-swap: the merged address table and the re-aggregated
        building table are built as *new* dicts and then bound in two
        atomic reference assignments, so a concurrent :meth:`query` always
        reads a complete table (it may briefly pair the new address table
        with the old building table, which only affects which fallback a
        cold address hits, never correctness of a served location).
        """
        merged = {**self._by_address, **address_locations}
        rebuilt = aggregate_building_locations(merged, self._addresses)
        self._by_address = merged
        self._by_building = rebuilt

    def __len__(self) -> int:
        return len(self._by_address)

    @property
    def address_locations(self) -> dict[str, Point]:
        """The address-level table (read-only copy)."""
        return dict(self._by_address)

    @property
    def building_locations(self) -> dict[str, Point]:
        """The building-level fallback table (read-only copy)."""
        return dict(self._by_building)
