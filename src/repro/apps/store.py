"""Delivery-location store with the deployed system's query fallback.

Section VI-A: inference results are stored address-keyed; a building-keyed
table holds each building's *most used* delivery location so addresses
never seen in history still get a sensible answer; the geocode is the last
resort.  Queries report which tier answered.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from enum import Enum

from repro.geo import Point
from repro.trajectory import Address


class QuerySource(Enum):
    """Which tier of the store answered a query."""

    ADDRESS = "address"
    BUILDING = "building"
    GEOCODE = "geocode"


@dataclass(frozen=True)
class QueryResult:
    """A resolved delivery location and its provenance."""

    location: Point
    source: QuerySource


class DeliveryLocationStore:
    """Two-tier key-value store: address -> location, building -> location."""

    def __init__(
        self,
        address_locations: dict[str, Point],
        addresses: dict[str, Address],
    ) -> None:
        self._by_address = dict(address_locations)
        self._addresses = dict(addresses)
        self._by_building = self._aggregate_buildings()

    def _aggregate_buildings(self) -> dict[str, Point]:
        """Most frequently used location per building (mode over addresses)."""
        votes: dict[str, Counter] = defaultdict(Counter)
        for address_id, point in self._by_address.items():
            address = self._addresses.get(address_id)
            if address is None:
                continue
            key = (round(point.lng, 6), round(point.lat, 6))
            votes[address.building_id][key] += 1
        return {
            building: Point(*max(counter.items(), key=lambda kv: (kv[1], kv[0]))[0])
            for building, counter in votes.items()
        }

    # ------------------------------------------------------------------
    def query(self, address: Address) -> QueryResult:
        """Resolve a delivery location: address -> building -> geocode."""
        point = self._by_address.get(address.address_id)
        if point is not None:
            return QueryResult(point, QuerySource.ADDRESS)
        point = self._by_building.get(address.building_id)
        if point is not None:
            return QueryResult(point, QuerySource.BUILDING)
        return QueryResult(address.geocode, QuerySource.GEOCODE)

    def query_id(self, address_id: str) -> QueryResult:
        """Resolve by id; the address must be in the store's address book."""
        address = self._addresses.get(address_id)
        if address is None:
            raise KeyError(f"unknown address id: {address_id!r}")
        return self.query(address)

    def update(self, address_locations: dict[str, Point]) -> None:
        """Merge a fresh inference batch (periodic refresh, Section VI-A)."""
        self._by_address.update(address_locations)
        self._by_building = self._aggregate_buildings()

    def __len__(self) -> int:
        return len(self._by_address)

    @property
    def building_locations(self) -> dict[str, Point]:
        """The building-level fallback table (read-only copy)."""
        return dict(self._by_building)
