"""Arrival-time estimation over inferred delivery locations.

The paper's introduction lists arrival-time estimation among the
downstream applications that accurate delivery locations feed.  This
estimator combines the planned tour geometry (travel legs at an estimated
courier speed) with per-location historical dwell statistics (the
candidate profiles' average stay durations) to produce per-stop ETAs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.store import DeliveryLocationStore
from repro.geo import LocalProjection
from repro.trajectory import Address, DeliveryTrip, speeds_mps


@dataclass(frozen=True)
class StopETA:
    """Predicted arrival/departure for one stop of a tour."""

    address_id: str
    eta_s: float  # arrival, seconds from tour start
    etd_s: float  # departure (arrival + expected dwell)


def estimate_courier_speed(trips: list[DeliveryTrip], default_mps: float = 3.0) -> float:
    """Median moving speed across trips (fixes faster than 0.5 m/s)."""
    samples: list[float] = []
    for trip in trips:
        sp = speeds_mps(trip.trajectory)
        samples.extend(sp[sp > 0.5].tolist())
    if not samples:
        return default_mps
    return float(np.median(samples))


class ETAEstimator:
    """Per-stop ETAs for a planned tour.

    ``dwell_s_by_address`` supplies expected service time per address
    (e.g. candidate-profile average durations); addresses without history
    use ``default_dwell_s``.
    """

    def __init__(
        self,
        store: DeliveryLocationStore,
        projection: LocalProjection,
        speed_mps: float = 3.0,
        dwell_s_by_address: dict[str, float] | None = None,
        default_dwell_s: float = 120.0,
    ) -> None:
        if speed_mps <= 0:
            raise ValueError("speed_mps must be positive")
        if default_dwell_s < 0:
            raise ValueError("default_dwell_s must be non-negative")
        self.store = store
        self.projection = projection
        self.speed_mps = speed_mps
        self.dwell_s_by_address = dict(dwell_s_by_address or {})
        self.default_dwell_s = default_dwell_s

    def estimate(
        self, ordered_addresses: list[Address], start_xy: tuple[float, float]
    ) -> list[StopETA]:
        """ETAs for a tour visiting ``ordered_addresses`` in order."""
        etas: list[StopETA] = []
        x, y = start_xy
        t = 0.0
        for address in ordered_addresses:
            location = self.store.query(address).location
            px, py = self.projection.to_xy(location.lng, location.lat)
            dist = float(np.hypot(px - x, py - y))
            t += dist / self.speed_mps
            dwell = self.dwell_s_by_address.get(address.address_id, self.default_dwell_s)
            etas.append(StopETA(address.address_id, eta_s=t, etd_s=t + dwell))
            t += dwell
            x, y = px, py
        return etas

    def evaluate_against_actual(
        self,
        etas: list[StopETA],
        actual_arrivals_s: dict[str, float],
    ) -> float:
        """Mean absolute ETA error (seconds) against actual arrivals."""
        gaps = [
            abs(eta.eta_s - actual_arrivals_s[eta.address_id])
            for eta in etas
            if eta.address_id in actual_arrivals_s
        ]
        if not gaps:
            raise ValueError("no overlapping addresses to evaluate")
        return float(np.mean(gaps))
