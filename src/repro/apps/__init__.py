"""Deployment store, query service and the two downstream applications."""

from repro.apps.store import (
    DeliveryLocationStore,
    QueryResult,
    QuerySource,
    UnknownAddressError,
)
from repro.apps.routing import (
    RoutePlanner,
    nearest_neighbor_order,
    plan_route,
    route_length,
    two_opt,
)
from repro.apps.availability import (
    AvailabilityModel,
    AvailabilityProfile,
    actual_delivery_times,
)
from repro.apps.service import DeliveryLocationService, ServiceStats
from repro.apps.eta import ETAEstimator, StopETA, estimate_courier_speed
from repro.apps.assignment import AssignmentResult, ParcelAllocator

__all__ = [
    "ETAEstimator",
    "StopETA",
    "estimate_courier_speed",
    "AssignmentResult",
    "ParcelAllocator",
    "DeliveryLocationStore",
    "QueryResult",
    "QuerySource",
    "UnknownAddressError",
    "RoutePlanner",
    "nearest_neighbor_order",
    "plan_route",
    "route_length",
    "two_opt",
    "AvailabilityModel",
    "AvailabilityProfile",
    "actual_delivery_times",
    "DeliveryLocationService",
    "ServiceStats",
]
