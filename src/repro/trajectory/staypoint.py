"""Stay-point detection (Definition 4 of the paper; Li et al. 2008).

A stay point is a maximal sub-sequence ``<p_i, ..., p_j>`` whose fixes all
lie within ``d_max_m`` of the anchor ``p_i`` and which spans at least
``t_min_s`` seconds.  The paper uses ``d_max_m = 20`` and ``t_min_s = 30``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo import LocalProjection, Point
from repro.trajectory.model import StayPoint, Trajectory


@dataclass(frozen=True)
class StayPointConfig:
    """Thresholds for :func:`detect_stay_points` (paper defaults)."""

    d_max_m: float = 20.0
    t_min_s: float = 30.0

    def __post_init__(self) -> None:
        if self.d_max_m <= 0:
            raise ValueError("d_max_m must be positive")
        if self.t_min_s <= 0:
            raise ValueError("t_min_s must be positive")


def detect_stay_points(
    trajectory: Trajectory, config: StayPointConfig | None = None
) -> list[StayPoint]:
    """Extract stay points from a single trajectory.

    Uses the anchor-based algorithm: advance ``j`` while ``p_j`` stays within
    ``d_max_m`` of ``p_i``; when the span ``[p_i, p_j]`` lasts at least
    ``t_min_s``, emit a stay point whose location is the centroid of the
    contained fixes, then restart the anchor after the stay.
    """
    config = config or StayPointConfig()
    n = len(trajectory)
    if n == 0:
        return []
    lng, lat, t = trajectory.to_arrays()
    proj = LocalProjection(Point(float(lng[0]), float(lat[0])))
    x, y = proj.to_xy(lng, lat)
    x = np.atleast_1d(np.asarray(x, dtype=float))
    y = np.atleast_1d(np.asarray(y, dtype=float))

    stays: list[StayPoint] = []
    d2_max = config.d_max_m * config.d_max_m
    i = 0
    while i < n - 1:
        j = i + 1
        while j < n and (x[j] - x[i]) ** 2 + (y[j] - y[i]) ** 2 <= d2_max:
            j += 1
        # fixes i .. j-1 are within d_max of the anchor
        if t[j - 1] - t[i] >= config.t_min_s:
            cx = float(np.mean(x[i:j]))
            cy = float(np.mean(y[i:j]))
            clng, clat = proj.to_lnglat(cx, cy)
            stays.append(
                StayPoint(
                    lng=float(clng),
                    lat=float(clat),
                    t_arrive=float(t[i]),
                    t_leave=float(t[j - 1]),
                    courier_id=trajectory.courier_id,
                    n_points=j - i,
                )
            )
            i = j
        else:
            i += 1
    return stays
