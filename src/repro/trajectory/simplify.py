"""Trajectory simplification and path measures.

Standard trajectory-toolkit utilities: Douglas-Peucker simplification (for
compact storage/transfer of raw tracks) and path length.  Simplification is
*not* applied before stay-point detection — dropping in-dwell fixes would
destroy the dwell signal — but the deployed platform stores simplified
tracks for display and audit.
"""

from __future__ import annotations

import numpy as np

from repro.geo import LocalProjection, Point
from repro.trajectory.model import Trajectory


def path_length_m(trajectory: Trajectory) -> float:
    """Total along-track distance in meters."""
    if len(trajectory) < 2:
        return 0.0
    lng, lat, _ = trajectory.to_arrays()
    proj = LocalProjection(Point(float(lng[0]), float(lat[0])))
    x, y = proj.to_xy(lng, lat)
    x = np.atleast_1d(np.asarray(x))
    y = np.atleast_1d(np.asarray(y))
    return float(np.hypot(np.diff(x), np.diff(y)).sum())


def douglas_peucker(trajectory: Trajectory, tolerance_m: float) -> Trajectory:
    """Simplify a trajectory, keeping deviations above ``tolerance_m``.

    Classic recursive split on the point of maximum perpendicular distance
    from the anchor-to-end chord; endpoints are always kept.  Timestamps
    ride along with their fixes.
    """
    if tolerance_m <= 0:
        raise ValueError("tolerance_m must be positive")
    n = len(trajectory)
    if n < 3:
        return Trajectory(trajectory.courier_id, list(trajectory.points))
    lng, lat, _ = trajectory.to_arrays()
    proj = LocalProjection(Point(float(lng[0]), float(lat[0])))
    x, y = proj.to_xy(lng, lat)
    coords = np.column_stack([np.atleast_1d(x), np.atleast_1d(y)])

    keep = np.zeros(n, dtype=bool)
    keep[0] = keep[-1] = True
    stack = [(0, n - 1)]
    while stack:
        start, end = stack.pop()
        if end - start < 2:
            continue
        chord = coords[end] - coords[start]
        chord_len = float(np.hypot(*chord))
        segment = coords[start + 1 : end] - coords[start]
        if chord_len < 1e-12:
            dists = np.hypot(segment[:, 0], segment[:, 1])
        else:
            # Perpendicular distance to the chord line.
            dists = np.abs(segment[:, 0] * chord[1] - segment[:, 1] * chord[0]) / chord_len
        worst = int(dists.argmax())
        if dists[worst] > tolerance_m:
            split = start + 1 + worst
            keep[split] = True
            stack.append((start, split))
            stack.append((split, end))
    points = [p for p, k in zip(trajectory.points, keep) if k]
    return Trajectory(trajectory.courier_id, points)
