"""Trajectory data model and preprocessing (noise filtering, stay points)."""

from repro.trajectory.model import TrajPoint, Trajectory, StayPoint
from repro.trajectory.logistics import Address, Waybill, DeliveryTrip
from repro.trajectory.noise import filter_noise, NoiseFilterConfig
from repro.trajectory.staypoint import detect_stay_points, StayPointConfig
from repro.trajectory.segmentation import SegmentationConfig, segment_trips
from repro.trajectory.simplify import douglas_peucker, path_length_m
from repro.trajectory.interpolation import (
    moving_fraction,
    position_at_times,
    resample,
    speeds_mps,
)

__all__ = [
    "moving_fraction",
    "position_at_times",
    "resample",
    "speeds_mps",
    "SegmentationConfig",
    "segment_trips",
    "douglas_peucker",
    "path_length_m",
    "TrajPoint",
    "Trajectory",
    "StayPoint",
    "Address",
    "Waybill",
    "DeliveryTrip",
    "filter_noise",
    "NoiseFilterConfig",
    "detect_stay_points",
    "StayPointConfig",
]
