"""Heuristic GPS noise filtering.

Implements the standard preprocessing heuristics from trajectory data mining
(Zheng, "Trajectory Data Mining: An Overview"): duplicate-timestamp removal
and speed-based outlier rejection.  A fix is an outlier when the implied
speed from the previous *kept* fix exceeds ``max_speed_mps``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geo import haversine_m
from repro.trajectory.model import Trajectory


@dataclass(frozen=True)
class NoiseFilterConfig:
    """Tuning knobs for :func:`filter_noise`.

    ``max_speed_mps`` defaults to 30 m/s — far above any courier on foot or
    tricycle, so only true GPS jumps are rejected.
    """

    max_speed_mps: float = 30.0
    min_dt_s: float = 1e-9

    def __post_init__(self) -> None:
        if self.max_speed_mps <= 0:
            raise ValueError("max_speed_mps must be positive")


def filter_noise(
    trajectory: Trajectory, config: NoiseFilterConfig | None = None
) -> Trajectory:
    """Return a copy of ``trajectory`` with outlier fixes removed.

    The first fix is always kept; each subsequent fix is kept only when the
    speed from the last kept fix is at most ``config.max_speed_mps``.
    """
    config = config or NoiseFilterConfig()
    points = trajectory.points
    if len(points) < 2:
        return Trajectory(trajectory.courier_id, list(points))
    kept = [points[0]]
    for cur in points[1:]:
        prev = kept[-1]
        dt = cur.t - prev.t
        if dt < config.min_dt_s:
            continue
        dist = haversine_m(prev.lng, prev.lat, cur.lng, cur.lat)
        if dist / dt <= config.max_speed_mps:
            kept.append(cur)
    return Trajectory(trajectory.courier_id, kept)
