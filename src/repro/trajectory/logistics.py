"""Logistics entities: addresses, waybills, delivery trips (Definitions 1, 5)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geo import Point
from repro.trajectory.model import Trajectory


@dataclass(frozen=True)
class Address:
    """A shipping address with the attributes the paper's features need.

    ``building_id`` stands in for the commercial address-segmentation tool's
    building extraction (``B(addr)``); ``geocode`` is the (possibly wrong)
    geocoder output; ``poi_category`` indexes one of the 21 POI categories
    returned alongside the geocode.
    """

    address_id: str
    text: str
    building_id: str
    geocode: Point
    poi_category: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.poi_category < 21:
            raise ValueError(f"poi_category must be in [0, 21): {self.poi_category}")


@dataclass(frozen=True)
class Waybill:
    """A parcel delivery record (Definition 1).

    ``t_delivered`` is the *recorded* confirmation time, which may be
    significantly later than the actual drop-off.
    """

    waybill_id: str
    address_id: str
    t_received: float
    t_delivered: float

    def __post_init__(self) -> None:
        if self.t_delivered < self.t_received:
            raise ValueError(
                f"waybill {self.waybill_id!r} delivered before it was received"
            )


@dataclass
class DeliveryTrip:
    """One courier tour delivering a batch of waybills (Definition 5)."""

    trip_id: str
    courier_id: str
    t_start: float
    t_end: float
    trajectory: Trajectory
    waybills: list[Waybill] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.t_end < self.t_start:
            raise ValueError(f"trip {self.trip_id!r} ends before it starts")
        if self.trajectory.courier_id != self.courier_id:
            raise ValueError(
                f"trip {self.trip_id!r} carries a trajectory of courier "
                f"{self.trajectory.courier_id!r}, expected {self.courier_id!r}"
            )

    @property
    def address_ids(self) -> set[str]:
        """The distinct addresses served by this trip."""
        return {w.address_id for w in self.waybills}

    def waybills_for(self, address_id: str) -> list[Waybill]:
        """All waybills of this trip going to ``address_id``."""
        return [w for w in self.waybills if w.address_id == address_id]
