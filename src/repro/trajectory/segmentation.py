"""Raw-stream trip segmentation.

The paper's pipeline consumes delivery *trips* (Definition 5); real
courier GPS arrives as day-long streams.  This module cuts a raw stream
into trips at temporal gaps and long station dwells — the preprocessing
the deployed system performs before DLInfMA sees the data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geo import Point, haversine_m
from repro.trajectory.model import Trajectory


@dataclass(frozen=True)
class SegmentationConfig:
    """Cut rules: temporal gaps and station dwells end a trip."""

    max_gap_s: float = 1_800.0
    station: Point | None = None
    station_radius_m: float = 80.0
    min_station_dwell_s: float = 600.0
    min_trip_points: int = 10
    min_trip_duration_s: float = 300.0

    def __post_init__(self) -> None:
        if self.max_gap_s <= 0:
            raise ValueError("max_gap_s must be positive")
        if self.min_trip_points < 2:
            raise ValueError("min_trip_points must be >= 2")


def segment_trips(
    trajectory: Trajectory, config: SegmentationConfig | None = None
) -> list[Trajectory]:
    """Split one raw stream into per-trip trajectories.

    Cuts at (1) sampling gaps longer than ``max_gap_s`` and (2) station
    dwells: a maximal run of fixes within ``station_radius_m`` of the
    station lasting at least ``min_station_dwell_s``.  Segments that are
    too short (points or duration) are dropped.
    """
    config = config or SegmentationConfig()
    points = trajectory.points
    if not points:
        return []

    cut_after: set[int] = set()
    for i in range(len(points) - 1):
        if points[i + 1].t - points[i].t > config.max_gap_s:
            cut_after.add(i)

    dwell_ranges: list[tuple[int, int]] = []
    if config.station is not None:
        at_station = [
            haversine_m(p.lng, p.lat, config.station.lng, config.station.lat)
            <= config.station_radius_m
            for p in points
        ]
        i = 0
        while i < len(points):
            if not at_station[i]:
                i += 1
                continue
            j = i
            while j + 1 < len(points) and at_station[j + 1]:
                j += 1
            if points[j].t - points[i].t >= config.min_station_dwell_s:
                # End the previous trip before the dwell and start the next
                # one after it: cut on both sides of the dwell run, and
                # remember the run so it is not emitted as a trip itself.
                if i > 0:
                    cut_after.add(i - 1)
                cut_after.add(j)
                dwell_ranges.append((i, j))
            i = j + 1

    def inside_dwell(start: int, stop: int) -> bool:
        return any(ds <= start and stop <= de for ds, de in dwell_ranges)

    segments: list[Trajectory] = []
    start = 0
    boundaries = sorted(cut_after) + [len(points) - 1]
    for boundary in boundaries:
        chunk = points[start : boundary + 1]
        chunk_range = (start, boundary)
        start = boundary + 1
        if len(chunk) < config.min_trip_points:
            continue
        if chunk[-1].t - chunk[0].t < config.min_trip_duration_s:
            continue
        if inside_dwell(*chunk_range):
            continue
        segments.append(Trajectory(trajectory.courier_id, list(chunk)))
    return segments
