"""Core trajectory types: points, trajectories, stay points.

Timestamps throughout are POSIX seconds as floats.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.geo import Point


@dataclass(frozen=True)
class TrajPoint:
    """A single GPS fix: location plus timestamp."""

    lng: float
    lat: float
    t: float

    @property
    def point(self) -> Point:
        """The spatial component as a :class:`~repro.geo.Point`."""
        return Point(self.lng, self.lat)


@dataclass
class Trajectory:
    """A chronologically ordered GPS track of one courier.

    Construction validates chronological order (Definition 3 of the paper:
    ``p_i.t < p_j.t`` for ``i < j``); equal timestamps are rejected too.
    """

    courier_id: str
    points: list[TrajPoint] = field(default_factory=list)

    def __post_init__(self) -> None:
        for prev, cur in zip(self.points, self.points[1:]):
            if cur.t <= prev.t:
                raise ValueError(
                    f"trajectory of courier {self.courier_id!r} is not "
                    f"strictly chronological at t={cur.t}"
                )

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[TrajPoint]:
        return iter(self.points)

    def __getitem__(self, idx: int) -> TrajPoint:
        return self.points[idx]

    @property
    def duration_s(self) -> float:
        """Elapsed time between first and last fix (0 for < 2 points)."""
        if len(self.points) < 2:
            return 0.0
        return self.points[-1].t - self.points[0].t

    def slice_time(self, t_start: float, t_end: float) -> "Trajectory":
        """The sub-trajectory with timestamps in ``[t_start, t_end]``."""
        pts = [p for p in self.points if t_start <= p.t <= t_end]
        return Trajectory(self.courier_id, pts)

    def to_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(lng, lat, t)`` arrays, one entry per fix."""
        if not self.points:
            empty = np.empty(0, dtype=float)
            return empty, empty.copy(), empty.copy()
        lng = np.array([p.lng for p in self.points], dtype=float)
        lat = np.array([p.lat for p in self.points], dtype=float)
        t = np.array([p.t for p in self.points], dtype=float)
        return lng, lat, t

    @classmethod
    def from_arrays(
        cls,
        courier_id: str,
        lng: Sequence[float],
        lat: Sequence[float],
        t: Sequence[float],
    ) -> "Trajectory":
        """Build a trajectory from parallel coordinate/time sequences."""
        if not (len(lng) == len(lat) == len(t)):
            raise ValueError("lng/lat/t must have equal lengths")
        pts = [TrajPoint(float(a), float(b), float(c)) for a, b, c in zip(lng, lat, t)]
        return cls(courier_id, pts)


@dataclass(frozen=True)
class StayPoint:
    """A detected stay: spatial centroid of a trajectory sub-sequence.

    Per Definition 4, the *time* of a stay point is the midpoint of its
    interval and its *location* is the spatial centroid of its fixes.
    """

    lng: float
    lat: float
    t_arrive: float
    t_leave: float
    courier_id: str
    n_points: int = 0

    def __post_init__(self) -> None:
        if self.t_leave < self.t_arrive:
            raise ValueError("stay point leaves before it arrives")

    @property
    def t(self) -> float:
        """Midpoint of the stay interval (the paper's stay-point time)."""
        return (self.t_arrive + self.t_leave) / 2.0

    @property
    def duration_s(self) -> float:
        """How long the courier stayed."""
        return self.t_leave - self.t_arrive

    @property
    def point(self) -> Point:
        """The centroid as a :class:`~repro.geo.Point`."""
        return Point(self.lng, self.lat)
