"""Trajectory resampling and kinematics.

Utilities the analysis stack needs on top of raw fixes: uniform-rate
resampling (for comparing trajectories with different sampling), gap-aware
interpolation at arbitrary timestamps (how annotated locations are
derived), and per-fix speed estimates (courier speed profiles).
"""

from __future__ import annotations

import numpy as np

from repro.geo import LocalProjection, Point
from repro.trajectory.model import TrajPoint, Trajectory


def position_at_times(trajectory: Trajectory, times: np.ndarray) -> np.ndarray:
    """Interpolated ``(n, 2)`` lng/lat at the given timestamps.

    Linear interpolation between fixes; timestamps beyond the ends clamp
    to the first/last fix.
    """
    if len(trajectory) == 0:
        raise ValueError("cannot interpolate an empty trajectory")
    lng, lat, t = trajectory.to_arrays()
    times = np.atleast_1d(np.asarray(times, dtype=float))
    out_lng = np.interp(times, t, lng)
    out_lat = np.interp(times, t, lat)
    return np.column_stack([out_lng, out_lat])


def resample(trajectory: Trajectory, interval_s: float) -> Trajectory:
    """Uniform-rate copy of the trajectory at ``interval_s`` spacing."""
    if interval_s <= 0:
        raise ValueError("interval_s must be positive")
    if len(trajectory) < 2:
        return Trajectory(trajectory.courier_id, list(trajectory.points))
    _, _, t = trajectory.to_arrays()
    times = np.arange(t[0], t[-1] + 1e-9, interval_s)
    coords = position_at_times(trajectory, times)
    points = [
        TrajPoint(float(lng), float(lat), float(ts))
        for (lng, lat), ts in zip(coords, times)
    ]
    return Trajectory(trajectory.courier_id, points)


def speeds_mps(trajectory: Trajectory) -> np.ndarray:
    """Per-segment speeds, one value per consecutive fix pair."""
    n = len(trajectory)
    if n < 2:
        return np.empty(0)
    lng, lat, t = trajectory.to_arrays()
    proj = LocalProjection(Point(float(lng[0]), float(lat[0])))
    x, y = proj.to_xy(lng, lat)
    x = np.atleast_1d(np.asarray(x))
    y = np.atleast_1d(np.asarray(y))
    dist = np.hypot(np.diff(x), np.diff(y))
    dt = np.diff(t)
    return dist / np.maximum(dt, 1e-9)


def moving_fraction(trajectory: Trajectory, threshold_mps: float = 0.5) -> float:
    """Share of time the courier moves faster than ``threshold_mps``.

    Time-weighted: long stationary dwells count by duration, not by fix
    count.
    """
    n = len(trajectory)
    if n < 2:
        return 0.0
    _, _, t = trajectory.to_arrays()
    dt = np.diff(t)
    fast = speeds_mps(trajectory) > threshold_mps
    total = dt.sum()
    return float((dt[fast].sum() / total) if total > 0 else 0.0)
