"""Flight recorder: an always-on black box for the serving/stream tier.

A bounded in-memory ring continuously absorbs the most recent spans,
events, metric deltas, and provenance keys at near-zero cost (one deque
append under a lock).  When something goes wrong — a
:class:`~repro.stream.scheduler.RefreshScheduler` gate refusal, an
``slo_violation`` / ``drift_flagged`` event, a worker crash — the
recorder :meth:`~FlightRecorder.trigger`\\ s and writes an **atomic
black-box dump**: tmp + fsync + rename, so a reader never sees a torn
file, exactly the contract of the publisher's ``updates.log``.

The dump bundles everything a post-mortem needs in one artifact: the
ring contents, the merged fleet metrics registry, the SLO verdicts at
trigger time, and the implicated provenance records.  ``repro blackbox
<dump>`` renders it.

``flightrecorder_dumps_total{trigger=...}`` is pre-seeded at zero for
every known trigger so conservation checks and the fail-closed SLO
engine see the family before anything fires.  ``max_dumps`` caps disk
usage — a flapping gate cannot fill the volume.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time
from typing import Any, Mapping, Optional, Union

from .metrics import MetricsRegistry, get_registry

PathLike = Union[str, pathlib.Path]

BLACKBOX_VERSION = 1

#: Triggers with pre-seeded counter label sets.
KNOWN_TRIGGERS = (
    "gate_refusal",
    "slo_violation",
    "drift_flagged",
    "worker_crash",
)

__all__ = [
    "BLACKBOX_VERSION",
    "KNOWN_TRIGGERS",
    "FlightRecorder",
    "get_recorder",
    "configure_recorder",
    "reset_recorder",
    "load_blackbox",
    "render_blackbox",
]


class FlightRecorder:
    """Bounded ring of recent telemetry + atomic anomaly dumps."""

    def __init__(
        self,
        capacity: int = 1024,
        dump_dir: PathLike | None = None,
        max_dumps: int = 16,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.dump_dir = pathlib.Path(dump_dir) if dump_dir is not None else None
        self.max_dumps = int(max_dumps)
        self._lock = threading.Lock()
        self._ring: list[dict[str, Any]] = []
        self._head = 0  # next write slot once the ring is full
        self._n_seen = 0
        self._dump_seq = 0
        registry = registry or get_registry()
        self._dumps_total = registry.counter(
            "flightrecorder_dumps_total",
            "Black-box dumps by trigger",
        )
        for trigger in KNOWN_TRIGGERS:
            self._dumps_total.inc(0, trigger=trigger)

    # ------------------------------------------------------------------
    # Recording (hot path: one append under a lock)
    # ------------------------------------------------------------------
    def _note(self, entry: dict[str, Any]) -> None:
        entry.setdefault("ts_unix", time.time())
        with self._lock:
            if len(self._ring) < self.capacity:
                self._ring.append(entry)
            else:
                self._ring[self._head] = entry
                self._head = (self._head + 1) % self.capacity
            self._n_seen += 1

    def note_span(self, span_doc: Mapping[str, Any]) -> None:
        self._note(
            {
                "kind": "span",
                "name": span_doc.get("name", ""),
                "trace_id": span_doc.get("trace_id", ""),
                "duration_s": span_doc.get("duration_s"),
                "error": span_doc.get("error"),
            }
        )

    def note_event(
        self, name: str, level: str = "info", fields: Mapping[str, Any] | None = None
    ) -> None:
        self._note(
            {
                "kind": "event",
                "name": str(name),
                "level": str(level),
                "fields": dict(fields or {}),
            }
        )

    def note_metric(
        self, name: str, value: float, labels: Mapping[str, Any] | None = None
    ) -> None:
        self._note(
            {
                "kind": "metric",
                "name": str(name),
                "value": float(value),
                "labels": {str(k): str(v) for k, v in (labels or {}).items()},
            }
        )

    def note_provenance(self, key: str, address_id: str, status: str) -> None:
        self._note(
            {
                "kind": "provenance",
                "key": str(key),
                "address_id": str(address_id),
                "status": str(status),
            }
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def entries(self) -> list[dict[str, Any]]:
        """Ring contents, oldest first."""

        with self._lock:
            if len(self._ring) < self.capacity:
                return list(self._ring)
            return self._ring[self._head :] + self._ring[: self._head]

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    @property
    def n_seen(self) -> int:
        with self._lock:
            return self._n_seen

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self._head = 0

    # ------------------------------------------------------------------
    # The black box
    # ------------------------------------------------------------------
    def trigger(
        self,
        trigger: str,
        context: Mapping[str, Any] | None = None,
        registry_doc: Mapping[str, Any] | None = None,
        slo: Any = None,
        provenance: Any = None,
    ) -> Optional[pathlib.Path]:
        """Record an anomaly; dump the black box when a dir is configured.

        Returns the dump path, or ``None`` when no ``dump_dir`` is set
        or the ``max_dumps`` cap was reached (the counter still counts).
        """

        self._dumps_total.inc(1, trigger=str(trigger))
        self.note_event(f"flightrecorder_{trigger}", level="warning",
                        fields=dict(context or {}))
        if self.dump_dir is None:
            return None
        with self._lock:
            if self._dump_seq >= self.max_dumps:
                return None
            seq = self._dump_seq
            self._dump_seq += 1
        payload = {
            "version": BLACKBOX_VERSION,
            "trigger": str(trigger),
            "ts_unix": time.time(),
            "context": dict(context or {}),
            "ring": self.entries(),
            "registry": dict(registry_doc) if registry_doc is not None else None,
            "slo": _jsonable(slo),
            "provenance": _jsonable(provenance),
        }
        self.dump_dir.mkdir(parents=True, exist_ok=True)
        path = self.dump_dir / f"blackbox-{trigger}-{seq:04d}.json"
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, sort_keys=True, default=str)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        return path


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of verdicts/records to JSON shapes."""

    if value is None:
        return None
    if hasattr(value, "to_dict"):
        return value.to_dict()
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return value


# ----------------------------------------------------------------------
# Global default recorder (always on)
# ----------------------------------------------------------------------
_RECORDER: FlightRecorder | None = None
_RECORDER_LOCK = threading.Lock()


def get_recorder() -> FlightRecorder:
    global _RECORDER
    with _RECORDER_LOCK:
        if _RECORDER is None:
            _RECORDER = FlightRecorder()
        return _RECORDER


def configure_recorder(
    capacity: int = 1024,
    dump_dir: PathLike | None = None,
    max_dumps: int = 16,
    registry: MetricsRegistry | None = None,
) -> FlightRecorder:
    """Install a fresh global recorder (e.g. with a dump dir) and return it."""

    global _RECORDER
    recorder = FlightRecorder(
        capacity=capacity, dump_dir=dump_dir, max_dumps=max_dumps, registry=registry
    )
    with _RECORDER_LOCK:
        _RECORDER = recorder
    return recorder


def reset_recorder() -> None:
    global _RECORDER
    with _RECORDER_LOCK:
        _RECORDER = None


# ----------------------------------------------------------------------
# Reading / rendering (``repro blackbox``)
# ----------------------------------------------------------------------
def load_blackbox(path: PathLike) -> dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: not a black-box dump")
    return payload


def render_blackbox(payload: Mapping[str, Any]) -> str:
    """Human rendering of a dump: header, SLO verdicts, provenance, ring."""

    lines = [
        f"black box  trigger={payload.get('trigger', '?')}  "
        f"version={payload.get('version', '?')}",
    ]
    ts = payload.get("ts_unix")
    if isinstance(ts, (int, float)) and ts:
        lines.append(
            "  at         "
            + time.strftime("%Y-%m-%d %H:%M:%S", time.gmtime(ts))
            + " UTC"
        )
    context = payload.get("context")
    if isinstance(context, Mapping) and context:
        lines.append("  context:")
        for key in sorted(context):
            lines.append(f"    {key:<24} {context[key]}")
    slo = payload.get("slo")
    if isinstance(slo, Mapping) and slo.get("results"):
        lines.append("  slo verdicts:")
        for result in slo["results"]:
            if not isinstance(result, Mapping):
                continue
            ok = result.get("ok", result.get("healthy"))
            status = "OK " if ok else "VIOLATED"
            lines.append(
                f"    {status:<9} {result.get('name', '?')}  "
                f"value={result.get('value', '?')}  "
                f"objective={result.get('objective', '?')}"
            )
    provenance = payload.get("provenance")
    if isinstance(provenance, list) and provenance:
        lines.append(f"  implicated provenance ({len(provenance)}):")
        for doc in provenance[:10]:
            if not isinstance(doc, Mapping):
                continue
            lines.append(
                f"    {doc.get('key', '?')}  address={doc.get('address_id', '?')}  "
                f"status={doc.get('status', '?')}  "
                f"snapshot=v{doc.get('snapshot_version', '?')}"
            )
        if len(provenance) > 10:
            lines.append(f"    ... {len(provenance) - 10} more")
    registry = payload.get("registry")
    if isinstance(registry, Mapping):
        metrics = registry.get("metrics")
        n = len(metrics) if isinstance(metrics, list) else 0
        lines.append(f"  fleet registry: {n} metric families")
    ring = payload.get("ring")
    if isinstance(ring, list):
        lines.append(f"  ring ({len(ring)} entries, newest last):")
        for entry in ring[-20:]:
            if not isinstance(entry, Mapping):
                continue
            kind = entry.get("kind", "?")
            if kind == "span":
                dur = entry.get("duration_s")
                dur_s = f"{dur:.6f}s" if isinstance(dur, (int, float)) else "-"
                detail = f"{entry.get('name', '?')} {dur_s}"
                if entry.get("error"):
                    detail += f" error={entry['error']}"
            elif kind == "event":
                detail = f"{entry.get('level', '?')}: {entry.get('name', '?')}"
            elif kind == "metric":
                detail = f"{entry.get('name', '?')} = {entry.get('value', '?')}"
            elif kind == "provenance":
                detail = (
                    f"{entry.get('key', '?')} address={entry.get('address_id', '?')}"
                    f" status={entry.get('status', '?')}"
                )
            else:
                detail = str(entry)
            lines.append(f"    [{kind:<10}] {detail}")
    return "\n".join(lines)
