"""Leveled, structured event logging (JSON-lines, stdlib-bridged).

Library code emits *events* — named facts with structured fields — rather
than formatted strings.  Each event is one JSON object per line when a
sink file is configured, and is always forwarded through the stdlib
:mod:`logging` hierarchy (logger ``repro.<component>``), so existing
handlers, level filtering, and third-party log shippers keep working.

Like tracing, the event log defaults to the cheapest possible off state:
without a configured sink and without stdlib handlers attached, an
:func:`event` call is a level check and an early return.
"""

from __future__ import annotations

import json
import logging
import pathlib
import threading
import time
from typing import Any, TextIO, Union

from .recorder import get_recorder

PathLike = Union[str, pathlib.Path]

#: Event names that double as flight-recorder anomaly triggers: seeing
#: one of these means something a post-mortem will ask about just
#: happened, so the black box snapshots itself (when a dump dir is
#: configured).
ANOMALY_EVENTS = frozenset({"slo_violation", "drift_flagged"})

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}

_ROOT_LOGGER = "repro"


class EventLog:
    """Writes structured events to an optional JSON-lines sink + stdlib."""

    def __init__(self, path: PathLike | None = None, level: str = "info") -> None:
        self.level = LEVELS[level]
        self._lock = threading.Lock()
        self._fh: TextIO | None = None
        if path is not None:
            path = pathlib.Path(path)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = path.open("a", encoding="utf-8")

    def emit(self, level: str, event: str, component: str = "core", **fields: Any) -> None:
        levelno = LEVELS.get(level, 20)
        if levelno < self.level and self._fh is None:
            return
        logger = logging.getLogger(f"{_ROOT_LOGGER}.{component}")
        if logger.isEnabledFor(levelno):
            logger.log(levelno, "%s %s", event, fields if fields else "")
        if self._fh is None or levelno < self.level:
            return
        record = {
            "ts_unix": time.time(),
            "level": level,
            "component": component,
            "event": event,
        }
        record.update({k: _safe(v) for k, v in fields.items()})
        line = json.dumps(record, separators=(",", ":"), sort_keys=False)
        with self._lock:
            if self._fh is not None:
                self._fh.write(line + "\n")
                self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


def _safe(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): _safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_safe(v) for v in value]
    return repr(value)


_EVENT_LOG = EventLog()


def configure_events(path: PathLike | None = None, level: str = "info") -> EventLog:
    """Install the global event log (optionally sinking to ``path``)."""
    global _EVENT_LOG
    _EVENT_LOG.close()
    _EVENT_LOG = EventLog(path, level)
    return _EVENT_LOG


def get_event_log() -> EventLog:
    return _EVENT_LOG


def event(name: str, level: str = "info", component: str = "core", **fields: Any) -> None:
    """Emit one structured event through the global log.

    Every event also lands in the always-on flight recorder ring (even
    with no sink configured — the ring is how a black-box dump can show
    what preceded an anomaly); :data:`ANOMALY_EVENTS` additionally
    trigger a dump.
    """
    _EVENT_LOG.emit(level, name, component=component, **fields)
    recorder = get_recorder()
    recorder.note_event(name, level=level, fields=fields)
    if name in ANOMALY_EVENTS:
        recorder.trigger(name, context={"component": component, **fields})


def read_events(path: PathLike) -> list[dict[str, Any]]:
    """Parse a JSON-lines event file back into dicts (file order)."""
    out = []
    for line in pathlib.Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            out.append(json.loads(line))
    return out
