"""Model/pool drift detection across refresh runs (PSI fingerprints).

The deployed system re-runs inference bi-weekly (Section VI-A); a refresh
that silently halves the candidate pool, collapses the matcher's
confidence, or shifts stay-duration behaviour should *flag*, not pass.
Each refresh is fingerprinted — the candidate pool by size, weight
distribution, per-address candidate counts, and stay-duration
distribution; the matcher by its softmax-confidence histogram and
selected-candidate-rank distribution — and consecutive fingerprints are
compared with the population stability index (PSI):

    PSI = sum_i (p_i - q_i) * ln(p_i / q_i)

with the usual reading: < 0.1 stable, 0.1–0.25 moderate shift, > 0.25
significant drift.  Scalar dimensions (pool size) use a relative-change
score instead, since dropping 30% of candidates uniformly leaves every
*proportion* untouched.
"""

from __future__ import annotations

import json
import math
import pathlib
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence, Union

from repro.obs.events import event
from repro.obs.metrics import get_registry

PathLike = Union[str, pathlib.Path]

#: PSI above this flags a distribution dimension (classic "significant").
DEFAULT_PSI_THRESHOLD = 0.25

#: Relative change above this flags a scalar dimension (e.g. pool size).
DEFAULT_RATIO_THRESHOLD = 0.2

#: Bin edges for candidate weights (stay points per candidate).
WEIGHT_EDGES = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)

#: Bin edges for average stay durations (seconds).
DURATION_EDGES = (60.0, 120.0, 300.0, 600.0, 1200.0, 3600.0)

#: Bin edges for per-address candidate counts.
CANDIDATE_COUNT_EDGES = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0)

#: Bin edges for softmax confidence (max probability).  Deliberately
#: coarse: continued warm-start training sharpens confidence within the
#: top quartile (normal, should not flag), while a collapse toward
#: uniform dumps mass into the low bins (the failure drift must catch).
CONFIDENCE_EDGES = (0.25, 0.5, 0.75)

#: Bin edges for the selected candidate's index (rank in the example).
RANK_EDGES = (0.5, 1.5, 2.5, 3.5, 4.5)


def bin_values(values: Iterable[float], edges: Sequence[float]) -> tuple[int, ...]:
    """Histogram ``values`` into ``len(edges)+1`` bins (upper-inclusive)."""
    counts = [0] * (len(edges) + 1)
    for value in values:
        idx = 0
        while idx < len(edges) and value > edges[idx]:
            idx += 1
        counts[idx] += 1
    return tuple(counts)


def psi(
    expected: Sequence[float], actual: Sequence[float], eps: float = 1e-4
) -> float:
    """Population stability index between two binned count vectors.

    Counts are normalized to proportions with ``eps`` smoothing so empty
    bins contribute a finite penalty instead of an infinity.
    """
    if len(expected) != len(actual):
        raise ValueError(
            f"bin count mismatch: {len(expected)} vs {len(actual)}"
        )
    if not expected:
        return 0.0
    e_total = float(sum(expected)) or 1.0
    a_total = float(sum(actual)) or 1.0
    score = 0.0
    for e, a in zip(expected, actual):
        p = max(e / e_total, eps)
        q = max(a / a_total, eps)
        score += (p - q) * math.log(p / q)
    return score


@dataclass(frozen=True)
class Fingerprint:
    """One run's summary: scalar features + binned distributions."""

    kind: str                                   # "pool" | "matcher"
    scalars: dict[str, float] = field(default_factory=dict)
    dists: dict[str, tuple[int, ...]] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "scalars": dict(self.scalars),
            "dists": {k: list(v) for k, v in self.dists.items()},
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Fingerprint":
        return cls(
            kind=str(payload["kind"]),
            scalars={k: float(v) for k, v in (payload.get("scalars") or {}).items()},
            dists={
                k: tuple(int(c) for c in v)
                for k, v in (payload.get("dists") or {}).items()
            },
        )


def pool_fingerprint(pool, profiles=None, examples=None) -> Fingerprint:
    """Fingerprint a candidate pool (plus optional profiles / examples).

    ``profiles`` (``{candidate_id: LocationProfile}``) contributes the
    stay-duration distribution; ``examples``
    (``{address_id: AddressExample}``) contributes per-address candidate
    counts.  Both are optional so a bare pool still fingerprints.
    """
    weights = [float(c.weight) for c in pool.candidates]
    scalars = {
        "n_candidates": float(len(pool.candidates)),
        "total_weight": float(sum(weights)),
    }
    dists = {"weight": bin_values(weights, WEIGHT_EDGES)}
    if profiles:
        dists["stay_duration"] = bin_values(
            (float(p.avg_duration_s) for p in profiles.values()), DURATION_EDGES
        )
    if examples:
        scalars["n_examples"] = float(len(examples))
        dists["candidates_per_address"] = bin_values(
            (float(e.n_candidates) for e in examples.values()),
            CANDIDATE_COUNT_EDGES,
        )
    return Fingerprint(kind="pool", scalars=scalars, dists=dists)


def _normalize_scores(scores) -> list[float]:
    values = [float(s) for s in scores]
    if not values:
        return values
    lo = min(values)
    total = sum(values)
    if lo >= 0.0 and total > 0:
        return [v / total for v in values]
    # Arbitrary-scale scores (margins, log-likelihoods): softmax them.
    peak = max(values)
    exps = [math.exp(v - peak) for v in values]
    denom = sum(exps)
    return [e / denom for e in exps]


def matcher_fingerprint(selector, examples: Mapping[str, Any]) -> Fingerprint:
    """Fingerprint a selector's outputs over the current example set.

    Uses batched scoring when the selector provides it (LocMatcher),
    falling back to per-example ``scores``.  The confidence histogram
    bins the top probability; the rank histogram bins which candidate
    index wins (a matcher that suddenly always picks candidate 0, or
    whose confidence collapses toward uniform, drifts here even when the
    pool itself is stable).
    """
    ordered = [examples[k] for k in sorted(examples)]
    if hasattr(selector, "scores_batch"):
        all_scores = selector.scores_batch(ordered)
    else:
        all_scores = [selector.scores(example) for example in ordered]
    confidences: list[float] = []
    ranks: list[float] = []
    for scores in all_scores:
        probs = _normalize_scores(scores)
        if not probs:
            continue
        best = max(range(len(probs)), key=probs.__getitem__)
        confidences.append(probs[best])
        ranks.append(float(best))
    mean_conf = sum(confidences) / len(confidences) if confidences else 0.0
    return Fingerprint(
        kind="matcher",
        scalars={"n_examples": float(len(ordered)), "mean_confidence": mean_conf},
        dists={
            "confidence": bin_values(confidences, CONFIDENCE_EDGES),
            "selected_rank": bin_values(ranks, RANK_EDGES),
        },
    )


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DriftDimension:
    """One compared axis: a PSI score or a scalar relative change."""

    name: str
    kind: str          # "psi" | "ratio"
    score: float
    threshold: float
    flagged: bool
    baseline: float | None = None
    current: float | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "score": self.score,
            "threshold": self.threshold,
            "flagged": self.flagged,
            "baseline": self.baseline,
            "current": self.current,
        }


@dataclass(frozen=True)
class DriftReport:
    """Verdict of comparing one fingerprint against its baseline."""

    kind: str
    dimensions: tuple[DriftDimension, ...]

    @property
    def drifted(self) -> bool:
        return any(d.flagged for d in self.dimensions)

    @property
    def max_psi(self) -> float:
        scores = [d.score for d in self.dimensions if d.kind == "psi"]
        return max(scores, default=0.0)

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "drifted": self.drifted,
            "max_psi": self.max_psi,
            "dimensions": [d.to_dict() for d in self.dimensions],
        }

    def render(self) -> str:
        lines = [f"{self.kind} drift: " + ("FLAGGED" if self.drifted else "stable")]
        for d in self.dimensions:
            mark = "!!" if d.flagged else "ok"
            lines.append(
                f"  [{mark}] {d.name:<24} {d.kind:<5} "
                f"score={d.score:.4f} (threshold {d.threshold:.2f})"
            )
        return "\n".join(lines)


def compare_fingerprints(
    baseline: Fingerprint,
    current: Fingerprint,
    psi_threshold: float = DEFAULT_PSI_THRESHOLD,
    ratio_threshold: float = DEFAULT_RATIO_THRESHOLD,
) -> DriftReport:
    """PSI every shared distribution, relative-change every shared scalar."""
    if baseline.kind != current.kind:
        raise ValueError(
            f"fingerprint kinds differ: {baseline.kind!r} vs {current.kind!r}"
        )
    dimensions: list[DriftDimension] = []
    for name in sorted(set(baseline.dists) & set(current.dists)):
        score = psi(baseline.dists[name], current.dists[name])
        dimensions.append(DriftDimension(
            name=name, kind="psi", score=score, threshold=psi_threshold,
            flagged=score > psi_threshold,
        ))
    for name in sorted(set(baseline.scalars) & set(current.scalars)):
        base = baseline.scalars[name]
        cur = current.scalars[name]
        denom = max(abs(base), 1e-12)
        score = abs(cur - base) / denom
        dimensions.append(DriftDimension(
            name=name, kind="ratio", score=score, threshold=ratio_threshold,
            flagged=score > ratio_threshold, baseline=base, current=cur,
        ))
    return DriftReport(kind=current.kind, dimensions=tuple(dimensions))


class DriftMonitor:
    """Tracks fingerprints across refreshes and flags divergence.

    The baseline for each kind is the *previous* observation, so the
    monitor asks "did this refresh diverge from the last one?" — the
    question the bi-weekly production loop needs answered.  Scores land
    in the metrics registry (``drift_score{kind,dimension}``) and flagged
    reports emit a ``drift_flagged`` warning event.
    """

    def __init__(
        self,
        psi_threshold: float = DEFAULT_PSI_THRESHOLD,
        ratio_threshold: float = DEFAULT_RATIO_THRESHOLD,
    ) -> None:
        self.psi_threshold = psi_threshold
        self.ratio_threshold = ratio_threshold
        self.baselines: dict[str, Fingerprint] = {}
        self.last_reports: dict[str, DriftReport] = {}

    def observe(self, fingerprint: Fingerprint) -> DriftReport | None:
        """Compare against the previous fingerprint of the same kind.

        Returns ``None`` on the first observation of a kind (nothing to
        compare yet); afterwards the new fingerprint becomes the baseline.
        """
        baseline = self.baselines.get(fingerprint.kind)
        self.baselines[fingerprint.kind] = fingerprint
        if baseline is None:
            return None
        report = compare_fingerprints(
            baseline, fingerprint, self.psi_threshold, self.ratio_threshold
        )
        self.last_reports[fingerprint.kind] = report
        gauge = get_registry().gauge(
            "drift_score", "Drift score per fingerprint kind and dimension"
        )
        for dim in report.dimensions:
            gauge.set(dim.score, kind=report.kind, dimension=dim.name)
        if report.drifted:
            event(
                "drift_flagged", level="warning", component="drift",
                kind=report.kind, max_psi=report.max_psi,
                dimensions=[d.name for d in report.dimensions if d.flagged],
            )
        return report


def save_drift_report(
    reports: Iterable[DriftReport], path: PathLike
) -> pathlib.Path:
    """Write drift reports as one JSON document (CI artifact shape)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "reports": [r.to_dict() for r in reports],
    }
    payload["drifted"] = any(r["drifted"] for r in payload["reports"])
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path
