"""OpenMetrics-style exemplars for histogram buckets.

An exemplar ties one concrete observation back to the trace and
provenance record that produced it: a latency histogram bucket stops
being an anonymous count and becomes a pivot point into the evidence
chain for a real request.  The model mirrors OpenMetrics: at most one
exemplar per bucket, the most recent observation wins.

Exemplars are on by default but cheap to disable globally
(``set_exemplars_enabled(False)`` or ``serve-bench --no-exemplars``):
when disabled, ``Histogram.observe(..., exemplar=...)`` drops the
exemplar without touching the per-bucket store, so the hot path pays
one boolean check.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "Exemplar",
    "exemplars_enabled",
    "set_exemplars_enabled",
    "EXEMPLAR_TRACE_ID_BYTES",
    "EXEMPLAR_KEY_BYTES",
]

# Fixed field widths for the shm-plane encoding (see repro.obs.shm).
# Trace ids are 32 hex chars (W3C traceparent); provenance keys are
# "<origin>:<seq:08d>" and comfortably fit 24 bytes.
EXEMPLAR_TRACE_ID_BYTES = 32
EXEMPLAR_KEY_BYTES = 24

_enabled = True


def exemplars_enabled() -> bool:
    """Whether exemplar capture is globally enabled."""

    return _enabled


def set_exemplars_enabled(enabled: bool) -> None:
    """Globally enable/disable exemplar capture (the escape hatch)."""

    global _enabled
    _enabled = bool(enabled)


@dataclass(frozen=True)
class Exemplar:
    """One traced observation attached to a histogram bucket."""

    value: float
    trace_id: str = ""
    provenance_key: str = ""
    ts_unix: float = 0.0

    @classmethod
    def now(
        cls,
        value: float,
        trace_id: str = "",
        provenance_key: str = "",
    ) -> "Exemplar":
        return cls(
            value=float(value),
            trace_id=str(trace_id or ""),
            provenance_key=str(provenance_key or ""),
            ts_unix=time.time(),
        )

    def to_dict(self) -> dict:
        return {
            "value": self.value,
            "trace_id": self.trace_id,
            "provenance_key": self.provenance_key,
            "ts_unix": self.ts_unix,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "Exemplar":
        return cls(
            value=float(doc.get("value", 0.0)),
            trace_id=str(doc.get("trace_id", "")),
            provenance_key=str(doc.get("provenance_key", "")),
            ts_unix=float(doc.get("ts_unix", 0.0)),
        )

    def labels_text(self) -> str:
        """OpenMetrics exemplar label set, e.g. ``{trace_id="..."}``."""

        parts = []
        if self.trace_id:
            parts.append(f'trace_id="{self.trace_id}"')
        if self.provenance_key:
            parts.append(f'provenance_key="{self.provenance_key}"')
        return "{" + ",".join(parts) + "}"


def pick_latest(
    a: Optional[Exemplar], b: Optional[Exemplar]
) -> Optional[Exemplar]:
    """Merge rule for cross-process folds: most recent exemplar wins."""

    if a is None:
        return b
    if b is None:
        return a
    return b if b.ts_unix >= a.ts_unix else a
