"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The registry mirrors the Prometheus data model without the dependency:
metrics are named, typed, optionally labeled, and export to both a JSON
document (for ``repro metrics`` and the benchmark artifacts) and the
Prometheus text exposition format (for scraping in a deployment).  All
operations are plain dict updates guarded by one lock, so instrumenting a
hot path costs nanoseconds, not a network call.

A process-global default registry (:func:`get_registry`) backs the
instrumentation sprinkled through the engine, pipeline, and service
layers; tests swap it out with :func:`set_registry`/:func:`reset_registry`.
"""

from __future__ import annotations

import bisect
import builtins
import json
import math
import pathlib
import threading
from typing import Any, Iterable, Mapping, Optional, Union

from .exemplar import Exemplar, exemplars_enabled, pick_latest

PathLike = Union[str, pathlib.Path]

LabelKey = tuple[tuple[str, str], ...]

#: Default latency buckets (seconds), log-ish spaced from 0.1 ms to 30 s.
DEFAULT_LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Metric:
    """Shared naming/bookkeeping for all metric types."""

    type_name = "untyped"

    def __init__(self, name: str, help: str = "", lock: threading.Lock | None = None) -> None:
        self.name = name
        self.help = help
        self._lock = lock or threading.Lock()


class Counter(_Metric):
    """Monotonically increasing count, optionally labeled."""

    type_name = "counter"

    def __init__(self, name: str, help: str = "", lock: threading.Lock | None = None) -> None:
        super().__init__(name, help, lock)
        self._values: dict[LabelKey, float] = {}

    def inc(self, n: float = 1, **labels: Any) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + n

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every label combination."""
        return sum(self._values.values())

    def samples(self) -> list[dict[str, Any]]:
        return [
            {"labels": dict(key), "value": value}
            for key, value in sorted(self._values.items())
        ]


class Gauge(_Metric):
    """A value that can go up and down (pool sizes, epoch losses)."""

    type_name = "gauge"

    def __init__(self, name: str, help: str = "", lock: threading.Lock | None = None) -> None:
        super().__init__(name, help, lock)
        self._values: dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def add(self, delta: float, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + delta

    def value(self, **labels: Any) -> float | None:
        return self._values.get(_label_key(labels))

    def samples(self) -> list[dict[str, Any]]:
        return [
            {"labels": dict(key), "value": value}
            for key, value in sorted(self._values.items())
        ]


class Histogram(_Metric):
    """Fixed-bucket histogram with cumulative-bucket export semantics.

    ``buckets`` are upper bounds; an implicit ``+Inf`` bucket catches the
    rest.  Per label set we keep per-bucket counts, the total count, and
    the running sum — exactly what the Prometheus text format needs.
    """

    type_name = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
        lock: threading.Lock | None = None,
    ) -> None:
        super().__init__(name, help, lock)
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds: tuple[float, ...] = tuple(bounds)
        self._counts: dict[LabelKey, list[int]] = {}
        self._sums: dict[LabelKey, float] = {}
        self._totals: dict[LabelKey, int] = {}
        # Per label set, one optional exemplar per bucket (+Inf last),
        # OpenMetrics-style: latest observation wins.
        self._exemplars: dict[LabelKey, list[Optional[Exemplar]]] = {}

    def observe(
        self, value: float, exemplar: Exemplar | None = None, **labels: Any
    ) -> None:
        key = _label_key(labels)
        idx = bisect.bisect_left(self.bounds, value)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = self._counts[key] = [0] * (len(self.bounds) + 1)
                self._sums[key] = 0.0
                self._totals[key] = 0
            counts[idx] += 1
            self._sums[key] += float(value)
            self._totals[key] += 1
            if exemplar is not None and exemplars_enabled():
                slots = self._exemplars.get(key)
                if slots is None:
                    slots = self._exemplars[key] = [None] * (len(self.bounds) + 1)
                slots[idx] = exemplar

    def merge_exemplars(
        self, exemplars: Iterable[Optional[Exemplar]], **labels: Any
    ) -> None:
        """Fold per-bucket exemplars from another process (latest wins)."""

        incoming = list(exemplars)
        if len(incoming) != len(self.bounds) + 1:
            raise ValueError(
                f"expected {len(self.bounds) + 1} exemplar slots, "
                f"got {len(incoming)}"
            )
        if not any(e is not None for e in incoming):
            return
        key = _label_key(labels)
        with self._lock:
            slots = self._exemplars.get(key)
            if slots is None:
                slots = self._exemplars[key] = [None] * (len(self.bounds) + 1)
            for idx, ex in enumerate(incoming):
                slots[idx] = pick_latest(slots[idx], ex)

    def exemplars(self, **labels: Any) -> list[Optional[Exemplar]]:
        """Per-bucket exemplars (``+Inf`` last) for one label set."""

        slots = self._exemplars.get(_label_key(labels))
        if slots is None:
            return [None] * (len(self.bounds) + 1)
        return list(slots)

    def merge_raw(
        self, bucket_counts: Iterable[int], sum: float, **labels: Any
    ) -> None:
        """Fold pre-bucketed counts (per-bucket, ``+Inf`` last) into a
        label set — the cross-process merge path, where observations were
        already bucketed by an identically-bounded histogram elsewhere.
        """
        incoming = [int(n) for n in bucket_counts]
        if len(incoming) != len(self.bounds) + 1:
            raise ValueError(
                f"expected {len(self.bounds) + 1} bucket counts, "
                f"got {len(incoming)}"
            )
        if any(n < 0 for n in incoming):
            raise ValueError("bucket counts cannot be negative")
        key = _label_key(labels)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = self._counts[key] = [0] * (len(self.bounds) + 1)
                self._sums[key] = 0.0
                self._totals[key] = 0
            for idx, n in enumerate(incoming):
                counts[idx] += n
            self._sums[key] += float(sum)
            self._totals[key] += builtins.sum(incoming)

    def count(self, **labels: Any) -> int:
        return self._totals.get(_label_key(labels), 0)

    def sum(self, **labels: Any) -> float:
        return self._sums.get(_label_key(labels), 0.0)

    def samples(self) -> list[dict[str, Any]]:
        out = []
        for key in sorted(self._counts):
            counts = self._counts[key]
            cumulative: dict[str, int] = {}
            running = 0
            for bound, n in zip(self.bounds, counts):
                running += n
                cumulative[repr(float(bound))] = running
            cumulative["+Inf"] = running + counts[-1]
            sample = {
                "labels": dict(key),
                "count": self._totals[key],
                "sum": self._sums[key],
                "buckets": cumulative,
            }
            slots = self._exemplars.get(key)
            if slots is not None and any(e is not None for e in slots):
                bucket_names = [repr(float(b)) for b in self.bounds] + ["+Inf"]
                sample["exemplars"] = {
                    name: ex.to_dict()
                    for name, ex in zip(bucket_names, slots)
                    if ex is not None
                }
            out.append(sample)
        return out


class MetricsRegistry:
    """Named home for every metric; the exporter and renderer read it."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> Any:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help, lock=self._lock, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {metric.type_name}"
                )
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def metrics(self) -> list[_Metric]:
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_dict(self, meta: Mapping[str, Any] | None = None) -> dict[str, Any]:
        """JSON-safe document: ``{"meta": ..., "metrics": [...]}``."""
        return {
            "meta": dict(meta or {}),
            "metrics": [
                {
                    "name": m.name,
                    "type": m.type_name,
                    "help": m.help,
                    "samples": m.samples(),
                }
                for m in self.metrics()
            ],
        }

    def to_json(self, meta: Mapping[str, Any] | None = None) -> str:
        return json.dumps(self.to_dict(meta), indent=2, sort_keys=True)

    def to_prometheus(self, exemplars: bool = False) -> str:
        """Prometheus text exposition format (0.0.4).

        With ``exemplars=True``, histogram bucket lines carry their
        OpenMetrics exemplar suffix (`` # {trace_id=...} value ts``) so
        a scraped bucket can be pivoted into the trace and provenance
        record that produced it.
        """
        lines: list[str] = []
        for metric in self.metrics():
            if metric.help:
                lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
            lines.append(f"# TYPE {metric.name} {metric.type_name}")
            if isinstance(metric, Histogram):
                samples = metric.samples()
                if not samples:
                    # A registered histogram that was never observed still
                    # exposes the mandatory +Inf bucket (scrapers and the
                    # SLO engine rely on the family being well-formed).
                    lines.append(f'{metric.name}_bucket{{le="+Inf"}} 0')
                    lines.append(f"{metric.name}_sum 0")
                    lines.append(f"{metric.name}_count 0")
                for sample in samples:
                    base = sample["labels"]
                    sample_exemplars = sample.get("exemplars") or {}
                    for bound, cum in sample["buckets"].items():
                        line = (
                            f"{metric.name}_bucket{_label_str({**base, 'le': bound})} {cum}"
                        )
                        if exemplars and bound in sample_exemplars:
                            ex = Exemplar.from_dict(sample_exemplars[bound])
                            line += (
                                f" # {ex.labels_text()} "
                                f"{_format_value(ex.value)} "
                                f"{_format_value(ex.ts_unix)}"
                            )
                        lines.append(line)
                    lines.append(
                        f"{metric.name}_sum{_label_str(base)} {_format_value(sample['sum'])}"
                    )
                    lines.append(f"{metric.name}_count{_label_str(base)} {sample['count']}")
            else:
                for sample in metric.samples():
                    lines.append(
                        f"{metric.name}{_label_str(sample['labels'])} "
                        f"{_format_value(sample['value'])}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_str(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label_value(str(v))}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


# ----------------------------------------------------------------------
# Global default registry
# ----------------------------------------------------------------------
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry all built-in instrumentation targets."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the global registry (returns the previous one)."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous


def reset_registry() -> None:
    """Clear every metric in the global registry (test isolation)."""
    _REGISTRY.reset()


# ----------------------------------------------------------------------
# File export + rendering
# ----------------------------------------------------------------------
def export_metrics(
    path: PathLike,
    registry: MetricsRegistry | None = None,
    meta: Mapping[str, Any] | None = None,
    exemplars: bool = False,
) -> pathlib.Path:
    """Write the registry to ``path`` — Prometheus text when the suffix is
    ``.prom``/``.txt``, the JSON document otherwise.  ``exemplars=True``
    adds OpenMetrics exemplar suffixes to Prometheus bucket lines (the
    JSON document always carries exemplars when present)."""
    registry = registry or get_registry()
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.suffix in (".prom", ".txt"):
        path.write_text(registry.to_prometheus(exemplars=exemplars), encoding="utf-8")
    else:
        path.write_text(registry.to_json(meta) + "\n", encoding="utf-8")
    return path


def load_metrics(path: PathLike) -> dict[str, Any]:
    """Read a JSON metrics document written by :func:`export_metrics`."""
    return json.loads(pathlib.Path(path).read_text(encoding="utf-8"))


def render_metrics(payload: Mapping[str, Any]) -> str:
    """Human-readable table of a metrics document (``repro metrics``).

    Tolerates malformed documents — non-list ``metrics``, entries missing
    ``samples``/``labels``/``count`` — rendering whatever is readable
    rather than crashing the CLI on a truncated or hand-edited file.
    """
    if not isinstance(payload, Mapping):
        raise TypeError(
            f"metrics payload must be a mapping, got {type(payload).__name__}"
        )
    lines: list[str] = []
    meta = payload.get("meta")
    if isinstance(meta, Mapping) and meta:
        lines.append("meta:")
        for key in sorted(meta):
            lines.append(f"  {key:<20} {meta[key]}")
        lines.append("")
    by_type: dict[str, list] = {"counter": [], "gauge": [], "histogram": []}
    metrics = payload.get("metrics")
    for metric in metrics if isinstance(metrics, list) else []:
        if isinstance(metric, Mapping) and metric.get("name"):
            by_type.setdefault(str(metric.get("type", "untyped")), []).append(metric)

    def label_suffix(labels: Any) -> str:
        if not isinstance(labels, Mapping) or not labels:
            return ""
        return "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"

    def metric_samples(metric: Mapping[str, Any]) -> list:
        samples = metric.get("samples")
        return [s for s in samples if isinstance(s, Mapping)] if isinstance(
            samples, list
        ) else []

    for kind in ("counter", "gauge"):
        rows = []
        for metric in by_type.get(kind, []):
            for sample in metric_samples(metric):
                try:
                    value = float(sample.get("value", 0.0))
                except (TypeError, ValueError):
                    continue
                rows.append((metric["name"] + label_suffix(sample.get("labels")), value))
        if rows:
            width = max(len(r[0]) for r in rows)
            lines.append(f"{kind}s:")
            for name, value in rows:
                lines.append(f"  {name:<{width}}  {_format_value(float(value)):>12}")
            lines.append("")
    hist_rows = []
    for metric in by_type.get("histogram", []):
        for sample in metric_samples(metric):
            try:
                count = int(sample.get("count", 0))
                total = float(sample.get("sum", 0.0))
            except (TypeError, ValueError):
                continue
            mean = total / count if count else 0.0
            hist_rows.append(
                (
                    metric["name"] + label_suffix(sample.get("labels")),
                    count,
                    total,
                    mean,
                )
            )
    if hist_rows:
        width = max(len(r[0]) for r in hist_rows)
        lines.append("histograms:")
        lines.append(f"  {'name':<{width}}  {'count':>8}  {'sum':>12}  {'mean':>12}")
        for name, count, total, mean in hist_rows:
            lines.append(f"  {name:<{width}}  {count:>8}  {total:>12.6f}  {mean:>12.6f}")
        lines.append("")
    if not lines:
        return "(no metrics)"
    return "\n".join(lines).rstrip()
