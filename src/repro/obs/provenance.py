"""Prediction provenance: per-query evidence chains for served answers.

Aggregate metrics say *how often* the serving tier answered; a
:class:`ProvenanceRecord` says *why this query got this location*: the
resolved point, every candidate's score and rank, the contributing
stay evidence (aggregated per candidate — stay points are anonymous,
so their mass is attributed to the candidate they built), the snapshot
/ model / pool fingerprints that were live at answer time, which tier
answered (cache / model / store), and the trace id of the request.

Records are minted on the serve hot path, so retention is bounded and
deterministic: a :class:`ProvenanceRing` holds

- an **always-keep** deque for the records someone will actually ask
  about (errors, unknown ids, low-confidence answers), and
- a **deterministic reservoir** over everything else — Algorithm R
  with the random draw replaced by ``crc32(key) % (i + 1)``, so two
  runs over the same stream keep the same sample and replaying a run
  reproduces its forensics exactly.

Each worker process persists its ring to
``<snapshot-dir>/obs/provenance-<origin>.jsonl`` on snapshot rotation
and shutdown; :func:`merge_provenance` folds those files (tolerating a
torn final line from a crash-time flush) the same way ``trace_dump``
merges span files.  ``repro explain <address-id>`` renders the result.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time
import zlib
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional, Sequence, Union

from .metrics import MetricsRegistry, get_registry

PathLike = Union[str, pathlib.Path]

#: Bump when the record wire shape changes; readers check it.
PROVENANCE_VERSION = 1

#: Confidence below which a record is always kept (the interesting ones).
DEFAULT_LOW_CONFIDENCE = 0.2

__all__ = [
    "PROVENANCE_VERSION",
    "ProvenanceRecord",
    "ProvenanceRing",
    "fingerprint_digest",
    "get_provenance_ring",
    "set_provenance_ring",
    "reset_provenance_ring",
    "put_evidence",
    "pop_evidence",
    "read_provenance",
    "iter_jsonl_tolerant",
    "merge_provenance",
    "render_record",
]


def fingerprint_digest(fingerprint: Any) -> str:
    """Compact content digest of an ``obs.drift.Fingerprint`` (or any
    JSON-able mapping): ``<kind>:<crc32 hex>`` — enough to tell two
    refreshes apart without embedding whole histograms in every record."""

    if fingerprint is None:
        return ""
    doc = fingerprint.to_dict() if hasattr(fingerprint, "to_dict") else fingerprint
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":")).encode("utf-8")
    kind = doc.get("kind", "fp") if isinstance(doc, Mapping) else "fp"
    return f"{kind}:{zlib.crc32(blob):08x}"


@dataclass
class ProvenanceRecord:
    """One served answer and the evidence behind it."""

    key: str
    address_id: str
    status: str
    lng: Optional[float] = None
    lat: Optional[float] = None
    source: str = ""
    cache_state: str = ""
    confidence: Optional[float] = None
    #: ``[{"candidate_id", "score", "rank", "weight", "lng", "lat"}, ...]``
    candidates: list = field(default_factory=list)
    #: Contributing stay evidence aggregated per candidate:
    #: ``[{"candidate_id", "weight", "avg_duration_s", "n_couriers"}, ...]``
    stays: list = field(default_factory=list)
    snapshot_version: Optional[int] = None
    model_fingerprint: str = ""
    pool_fingerprint: str = ""
    trace_id: str = ""
    origin: str = ""
    ts_unix: float = 0.0
    error: str = ""
    version: int = PROVENANCE_VERSION

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": self.version,
            "key": self.key,
            "address_id": self.address_id,
            "status": self.status,
            "lng": self.lng,
            "lat": self.lat,
            "source": self.source,
            "cache_state": self.cache_state,
            "confidence": self.confidence,
            "candidates": list(self.candidates),
            "stays": list(self.stays),
            "snapshot_version": self.snapshot_version,
            "model_fingerprint": self.model_fingerprint,
            "pool_fingerprint": self.pool_fingerprint,
            "trace_id": self.trace_id,
            "origin": self.origin,
            "ts_unix": self.ts_unix,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "ProvenanceRecord":
        return cls(
            key=str(doc.get("key", "")),
            address_id=str(doc.get("address_id", "")),
            status=str(doc.get("status", "")),
            lng=doc.get("lng"),
            lat=doc.get("lat"),
            source=str(doc.get("source", "")),
            cache_state=str(doc.get("cache_state", "")),
            confidence=doc.get("confidence"),
            candidates=list(doc.get("candidates") or []),
            stays=list(doc.get("stays") or []),
            snapshot_version=doc.get("snapshot_version"),
            model_fingerprint=str(doc.get("model_fingerprint", "")),
            pool_fingerprint=str(doc.get("pool_fingerprint", "")),
            trace_id=str(doc.get("trace_id", "")),
            origin=str(doc.get("origin", "")),
            ts_unix=float(doc.get("ts_unix", 0.0)),
            error=str(doc.get("error", "")),
            version=int(doc.get("version", PROVENANCE_VERSION)),
        )


class ProvenanceRing:
    """Bounded retention for provenance records.

    ``capacity`` bounds the deterministic reservoir over routine
    answers; ``keep_capacity`` bounds the always-keep deque for
    errors / unknown ids / low-confidence answers.  Both counters in
    ``provenance_records_total{result=kept|sampled_out}`` are
    pre-seeded at zero so the fail-closed SLO engine sees the family
    from tick one.
    """

    def __init__(
        self,
        capacity: int = 512,
        keep_capacity: int = 128,
        low_confidence: float = DEFAULT_LOW_CONFIDENCE,
        origin: str = "main",
        registry: MetricsRegistry | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.low_confidence = float(low_confidence)
        self.origin = str(origin)
        self._lock = threading.Lock()
        self._reservoir: list[ProvenanceRecord] = []
        self._seen = 0  # routine records offered to the reservoir
        self._seq = 0
        self._kept: deque[ProvenanceRecord] = deque(maxlen=int(keep_capacity))
        registry = registry or get_registry()
        self._records_total = registry.counter(
            "provenance_records_total",
            "Provenance records by retention outcome",
        )
        for result in ("kept", "sampled_out"):
            self._records_total.inc(0, result=result)

    # ------------------------------------------------------------------
    # Minting / retention
    # ------------------------------------------------------------------
    def mint(self, address_id: str, status: str, **fields: Any) -> ProvenanceRecord:
        """Build a record with a fresh key and retain it per policy."""

        with self._lock:
            seq = self._seq
            self._seq += 1
        record = ProvenanceRecord(
            key=f"{self.origin}:{seq:08d}",
            address_id=str(address_id),
            status=str(status),
            origin=self.origin,
            ts_unix=time.time(),
            **fields,
        )
        self.add(record)
        return record

    def _always_keep(self, record: ProvenanceRecord) -> bool:
        if record.status != "ok" or record.error:
            return True
        if record.confidence is not None and record.confidence < self.low_confidence:
            return True
        return False

    def add(self, record: ProvenanceRecord) -> bool:
        """Retain ``record``; returns whether it was kept right now."""

        with self._lock:
            if self._always_keep(record):
                self._kept.append(record)
                self._records_total.inc(1, result="kept")
                return True
            i = self._seen
            self._seen += 1
            if len(self._reservoir) < self.capacity:
                self._reservoir.append(record)
                self._records_total.inc(1, result="kept")
                return True
            # Algorithm R with a deterministic draw: same stream of keys
            # -> same retained sample, run after run.
            j = zlib.crc32(record.key.encode("utf-8")) % (i + 1)
            if j < self.capacity:
                self._reservoir[j] = record
                self._records_total.inc(1, result="kept")
                return True
            self._records_total.inc(1, result="sampled_out")
            return False

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------
    def records(self) -> list[ProvenanceRecord]:
        """Every retained record, newest first, always-keep included."""

        with self._lock:
            merged = {r.key: r for r in self._reservoir}
            merged.update((r.key, r) for r in self._kept)
        return sorted(
            merged.values(), key=lambda r: (r.ts_unix, r.key), reverse=True
        )

    def find(self, address_id: str) -> list[ProvenanceRecord]:
        wanted = str(address_id)
        return [r for r in self.records() if r.address_id == wanted]

    def __len__(self) -> int:
        with self._lock:
            return len(self._reservoir) + len(self._kept)

    def counts(self) -> dict[str, float]:
        """Cumulative retention-outcome counts (mirrors the counter)."""
        return {
            "kept": self._records_total.value(result="kept"),
            "sampled_out": self._records_total.value(result="sampled_out"),
        }

    def clear(self) -> None:
        with self._lock:
            self._reservoir.clear()
            self._kept.clear()
            self._seen = 0

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def write_jsonl(self, path: PathLike) -> pathlib.Path:
        """Atomically persist the ring (tmp + fsync + rename)."""

        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        records = self.records()
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            for record in records:
                fh.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        return path


# ----------------------------------------------------------------------
# Evidence side-channel
# ----------------------------------------------------------------------
# The model tier knows the per-candidate score vector; the server loop
# that mints the record does not.  Rather than widen QueryResult (which
# crosses a pipe on the process backend), the scoring tier parks the
# evidence here keyed by address id and the minting site pops it.
_EVIDENCE_CAPACITY = 1024
_evidence_lock = threading.Lock()
_evidence: "OrderedDict[str, dict[str, Any]]" = OrderedDict()


def put_evidence(address_id: str, evidence: dict[str, Any]) -> None:
    with _evidence_lock:
        _evidence[str(address_id)] = evidence
        _evidence.move_to_end(str(address_id))
        while len(_evidence) > _EVIDENCE_CAPACITY:
            _evidence.popitem(last=False)


def pop_evidence(address_id: str) -> Optional[dict[str, Any]]:
    with _evidence_lock:
        return _evidence.pop(str(address_id), None)


# ----------------------------------------------------------------------
# Global default ring
# ----------------------------------------------------------------------
_RING: ProvenanceRing | None = None
_RING_LOCK = threading.Lock()


def get_provenance_ring() -> ProvenanceRing:
    global _RING
    with _RING_LOCK:
        if _RING is None:
            _RING = ProvenanceRing()
        return _RING


def set_provenance_ring(ring: ProvenanceRing | None) -> ProvenanceRing | None:
    global _RING
    with _RING_LOCK:
        previous = _RING
        _RING = ring
        return previous


def reset_provenance_ring() -> None:
    set_provenance_ring(None)
    with _evidence_lock:
        _evidence.clear()


# ----------------------------------------------------------------------
# Torn-tolerant JSONL reading + merge
# ----------------------------------------------------------------------
def iter_jsonl_tolerant(path: PathLike) -> "tuple[list[dict], int]":
    """Read a JSON-lines file, skipping unparsable lines.

    A process killed mid-flush leaves a truncated final line; the same
    contract as the ``updates.log`` reader applies — stop trusting the
    tail, count it, keep everything before it.  Returns
    ``(docs, n_torn_lines)``.
    """

    docs: list[dict] = []
    n_torn = 0
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError:
                n_torn += 1
                continue
            if isinstance(doc, dict):
                docs.append(doc)
            else:
                n_torn += 1
    return docs, n_torn


def read_provenance(path: PathLike) -> tuple[list[ProvenanceRecord], int]:
    """Load one provenance JSONL file -> ``(records, n_torn_lines)``."""

    docs, n_torn = iter_jsonl_tolerant(path)
    records = []
    for doc in docs:
        if doc.get("version", PROVENANCE_VERSION) > PROVENANCE_VERSION:
            n_torn += 1  # future schema we cannot interpret: skip, count
            continue
        records.append(ProvenanceRecord.from_dict(doc))
    return records, n_torn


def merge_provenance(
    paths: Sequence[PathLike],
    out: PathLike | None = None,
) -> tuple[list[ProvenanceRecord], dict[str, Any]]:
    """Fold per-origin provenance files into one newest-first list.

    Mirrors ``trace_dump``: unreadable files are skipped (counted), torn
    tails are skipped (counted), duplicate keys keep the newest record.
    """

    merged: dict[str, ProvenanceRecord] = {}
    stats = {"n_files": 0, "n_unreadable_files": 0, "n_torn_lines": 0, "n_records": 0}
    for path in paths:
        try:
            records, n_torn = read_provenance(path)
        except OSError:
            stats["n_unreadable_files"] += 1
            continue
        stats["n_files"] += 1
        stats["n_torn_lines"] += n_torn
        for record in records:
            existing = merged.get(record.key)
            if existing is None or record.ts_unix >= existing.ts_unix:
                merged[record.key] = record
    records = sorted(
        merged.values(), key=lambda r: (r.ts_unix, r.key), reverse=True
    )
    stats["n_records"] = len(records)
    if out is not None:
        out = pathlib.Path(out)
        out.parent.mkdir(parents=True, exist_ok=True)
        tmp = out.with_name(out.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            for record in records:
                fh.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, out)
    return records, stats


# ----------------------------------------------------------------------
# Rendering (``repro explain``)
# ----------------------------------------------------------------------
def render_record(record: ProvenanceRecord) -> str:
    """Multi-line human rendering of one evidence chain."""

    lines = [
        f"provenance {record.key}  address={record.address_id}  "
        f"status={record.status}",
    ]
    if record.lng is not None and record.lat is not None:
        lines.append(f"  location     ({record.lng:.6f}, {record.lat:.6f})")
    tier = " / ".join(x for x in (record.source, record.cache_state) if x)
    if tier:
        lines.append(f"  tier         {tier}")
    if record.confidence is not None:
        lines.append(f"  confidence   {record.confidence:.4f}")
    if record.snapshot_version is not None:
        lines.append(f"  snapshot     v{record.snapshot_version}")
    if record.model_fingerprint or record.pool_fingerprint:
        lines.append(
            f"  fingerprints model={record.model_fingerprint or '-'}  "
            f"pool={record.pool_fingerprint or '-'}"
        )
    if record.trace_id:
        lines.append(f"  trace        {record.trace_id}")
    if record.error:
        lines.append(f"  error        {record.error}")
    if record.candidates:
        lines.append(f"  candidates   ({len(record.candidates)})")
        ranked = sorted(
            record.candidates, key=lambda c: c.get("rank", 1 << 30)
        )
        for cand in ranked[:10]:
            lines.append(
                "    #{rank:<3} id={cid}  score={score:.4f}  "
                "weight={weight:.3f}  ({lng:.6f}, {lat:.6f})".format(
                    rank=cand.get("rank", -1),
                    cid=cand.get("candidate_id", "?"),
                    score=float(cand.get("score", 0.0)),
                    weight=float(cand.get("weight", 0.0)),
                    lng=float(cand.get("lng", 0.0)),
                    lat=float(cand.get("lat", 0.0)),
                )
            )
        if len(record.candidates) > 10:
            lines.append(f"    ... {len(record.candidates) - 10} more")
    if record.stays:
        lines.append(f"  stay evidence ({len(record.stays)})")
        for stay in record.stays[:10]:
            lines.append(
                "    candidate={cid}  weight={weight:.3f}  "
                "avg_duration={dur:.0f}s  couriers={cour}".format(
                    cid=stay.get("candidate_id", "?"),
                    weight=float(stay.get("weight", 0.0)),
                    dur=float(stay.get("avg_duration_s", 0.0)),
                    cour=int(stay.get("n_couriers", 0)),
                )
            )
    return "\n".join(lines)
