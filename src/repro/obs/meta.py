"""Run metadata stamped onto exported metrics and benchmark artifacts.

Every exported metrics document and ``benchmarks/results/*.json`` artifact
carries the same provenance triple: the git sha of the working tree, a
wall-clock timestamp, and a content fingerprint of the run configuration
(via the engine's :func:`~repro.engine.cache.fingerprint`), so results can
be matched to the exact code + config that produced them.
"""

from __future__ import annotations

import subprocess
import time
from typing import Any


def git_sha(short: bool = True) -> str | None:
    """The current commit sha, or None outside a git checkout."""
    cmd = ["git", "rev-parse", "--short" if short else "--verify", "HEAD"]
    try:
        out = subprocess.run(
            cmd, capture_output=True, text=True, timeout=5, check=False
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def run_metadata(config: Any = None) -> dict[str, Any]:
    """Provenance dict: git sha, unix + ISO timestamps, config fingerprint.

    ``config`` may be anything the engine's fingerprint accepts
    (dataclasses, dicts, scalars); unfingerprintable configs degrade to
    ``None`` rather than failing the export.
    """
    meta: dict[str, Any] = {
        "git_sha": git_sha(),
        "timestamp_unix": time.time(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }
    if config is not None:
        from repro.engine.cache import fingerprint

        try:
            meta["config_fingerprint"] = fingerprint(config)
        except TypeError:
            meta["config_fingerprint"] = None
    return meta
