"""Declarative SLOs, histogram quantiles, and burn-rate monitoring.

An :class:`SLO` states an objective over one metric family — "p95 of
``serve_request_latency_seconds`` stays under 250 ms", "the fraction of
``serve_requests_total`` with ``status=error`` stays under 1%" — and the
engine evaluates a list of them against either an exported metrics
document (the ``repro health`` CLI path) or a live
:class:`RequestWindows` sample store (the serving tier's in-process
path).  Violations become structured ``slo_violation`` events and a
nonzero exit code, turning the PR-2 telemetry into a verdict a CI job or
an operator can act on.

Burn rate follows the multi-window pattern: for an error-budget SLO the
burn rate over a window is ``error_rate / budget`` (1.0 = burning the
budget exactly as fast as allowed); an alert requires *every* configured
window to burn faster than 1, so a brief spike (short window only) or a
long-ago incident (long window only) does not page.
"""

from __future__ import annotations

import bisect
import json
import math
import pathlib
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence, Union

from repro.obs.events import event

PathLike = Union[str, pathlib.Path]

#: Statuses the serving tier counts against the error budget by default.
DEFAULT_BAD_STATUSES = ("error", "timed_out", "rejected")

#: Default (short, long) burn-rate windows in seconds, sized for benches.
DEFAULT_WINDOWS = (5.0, 60.0)

VALID_KINDS = ("quantile", "error_rate", "max", "value")


@dataclass(frozen=True)
class SLO:
    """One declarative objective over a metric family.

    ``kind`` selects the evaluation:

    * ``quantile`` — ``quantile`` of histogram ``metric`` must be
      <= ``objective`` (seconds, meters, whatever the metric measures).
    * ``error_rate`` — the fraction of counter ``metric`` samples whose
      labels match ``bad`` must be <= ``objective`` (the error budget).
    * ``max`` / ``value`` — the largest matching gauge sample must be
      <= ``objective``.

    ``labels`` narrows which samples count (subset match); ``bad`` maps a
    label name to the values that count as errors for ``error_rate``.
    """

    name: str
    metric: str
    objective: float
    kind: str = "quantile"
    quantile: float = 0.95
    labels: tuple[tuple[str, str], ...] = ()
    bad: tuple[tuple[str, tuple[str, ...]], ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in VALID_KINDS:
            raise ValueError(
                f"unknown SLO kind {self.kind!r}; valid: {VALID_KINDS}"
            )
        if self.kind == "quantile" and not (0.0 < self.quantile <= 1.0):
            raise ValueError(f"quantile must be in (0, 1]: {self.quantile}")

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SLO":
        unknown = set(payload) - {
            "name", "metric", "objective", "kind", "quantile", "labels",
            "bad", "description",
        }
        if unknown:
            raise ValueError(f"unknown SLO fields: {sorted(unknown)}")
        labels = tuple(sorted(
            (str(k), str(v)) for k, v in (payload.get("labels") or {}).items()
        ))
        bad = tuple(sorted(
            (str(k), tuple(str(v) for v in values))
            for k, values in (payload.get("bad") or {}).items()
        ))
        return cls(
            name=str(payload["name"]),
            metric=str(payload["metric"]),
            objective=float(payload["objective"]),
            kind=str(payload.get("kind", "quantile")),
            quantile=float(payload.get("quantile", 0.95)),
            labels=labels,
            bad=bad,
            description=str(payload.get("description", "")),
        )

    def matches(self, labels: Mapping[str, Any]) -> bool:
        return all(str(labels.get(k)) == v for k, v in self.labels)

    def is_bad(self, labels: Mapping[str, Any]) -> bool:
        return any(str(labels.get(k)) in values for k, values in self.bad)


@dataclass(frozen=True)
class SLOResult:
    """Outcome of evaluating one SLO."""

    slo: SLO
    ok: bool
    observed: float | None     # None means the metric had no data
    detail: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.slo.name,
            "metric": self.slo.metric,
            "kind": self.slo.kind,
            "objective": self.slo.objective,
            "observed": self.observed,
            "ok": self.ok,
            "detail": dict(self.detail),
        }


@dataclass(frozen=True)
class HealthReport:
    """The verdict over a list of SLOs."""

    results: tuple[SLOResult, ...]
    source: str = "metrics"

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "source": self.source,
            "results": [r.to_dict() for r in self.results],
        }

    def render(self) -> str:
        """Human-readable verdict table for ``repro health``."""
        if not self.results:
            return "(no SLOs evaluated)"
        rows = []
        for r in self.results:
            observed = "no data" if r.observed is None else f"{r.observed:.6g}"
            extra = ""
            burn = r.detail.get("burn_rates")
            if burn:
                extra = "  burn " + " ".join(
                    f"{w}s={b:.2f}" for w, b in sorted(
                        burn.items(), key=lambda kv: float(kv[0])
                    )
                )
            rows.append((
                "OK " if r.ok else "VIOLATED",
                r.slo.name,
                f"{r.slo.kind}({r.slo.metric})",
                observed,
                f"<= {r.slo.objective:.6g}",
                extra,
            ))
        name_w = max(len(r[1]) for r in rows)
        kind_w = max(len(r[2]) for r in rows)
        lines = [
            f"{verdict:<9} {name:<{name_w}}  {kind:<{kind_w}}  "
            f"{observed:>12}  {objective}{extra}"
            for verdict, name, kind, observed, objective, extra in rows
        ]
        lines.append("health: " + ("OK" if self.ok else "VIOLATED"))
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Spec parsing (YAML with a JSON / mini-YAML fallback)
# ----------------------------------------------------------------------
def parse_slos(payload: Any) -> list[SLO]:
    """Parse a spec document: ``{"slos": [...]}`` or a bare list."""
    if isinstance(payload, Mapping):
        entries = payload.get("slos", [])
    else:
        entries = payload
    if not isinstance(entries, (list, tuple)):
        raise ValueError("SLO spec must be a list or a {'slos': [...]} mapping")
    slos = [SLO.from_dict(entry) for entry in entries]
    if not slos:
        raise ValueError("SLO spec contains no objectives")
    return slos


def load_slo_file(path: PathLike) -> list[SLO]:
    """Read an SLO spec from JSON or YAML (PyYAML optional)."""
    path = pathlib.Path(path)
    text = path.read_text(encoding="utf-8")
    if path.suffix == ".json":
        return parse_slos(json.loads(text))
    try:
        import yaml  # type: ignore[import-untyped]
    except ImportError:
        return parse_slos(_parse_mini_yaml(text))
    return parse_slos(yaml.safe_load(text))


def _parse_scalar(token: str) -> Any:
    token = token.strip()
    if token.startswith("[") and token.endswith("]"):
        inner = token[1:-1].strip()
        return [_parse_scalar(t) for t in inner.split(",")] if inner else []
    if token in ("true", "True"):
        return True
    if token in ("false", "False"):
        return False
    for cast in (int, float):
        try:
            return cast(token)
        except ValueError:
            pass
    return token.strip("'\"")


def _parse_mini_yaml(text: str) -> dict[str, Any]:
    """Parse the restricted YAML subset SLO specs use.

    Supports nested mappings by indentation, ``- `` list items holding
    mappings or scalars, inline ``[a, b]`` lists, and ``#`` comments —
    enough for an SLO file; not a general YAML parser.
    """
    lines = []
    for raw in text.splitlines():
        stripped = raw.split("#", 1)[0].rstrip()
        if stripped.strip():
            lines.append(stripped)

    def parse_block(start: int, indent: int) -> tuple[Any, int]:
        container: Any = None
        i = start
        while i < len(lines):
            line = lines[i]
            cur_indent = len(line) - len(line.lstrip())
            if cur_indent < indent:
                break
            content = line.strip()
            if content.startswith("- "):
                if container is None:
                    container = []
                if not isinstance(container, list):
                    raise ValueError(f"mixed list/mapping at line: {line!r}")
                item_text = content[2:]
                if ":" in item_text and not item_text.startswith("["):
                    # A mapping whose first key sits on the "- " line.
                    lines[i] = " " * (cur_indent + 2) + item_text
                    value, i = parse_block(i, cur_indent + 2)
                    container.append(value)
                else:
                    container.append(_parse_scalar(item_text))
                    i += 1
            else:
                if container is None:
                    container = {}
                if not isinstance(container, dict):
                    break
                key, _, rest = content.partition(":")
                rest = rest.strip()
                if rest:
                    container[key.strip()] = _parse_scalar(rest)
                    i += 1
                else:
                    value, i = parse_block(i + 1, cur_indent + 1)
                    container[key.strip()] = value if value is not None else {}
        return container, i

    parsed, _ = parse_block(0, 0)
    return parsed if isinstance(parsed, dict) else {"slos": parsed or []}


# ----------------------------------------------------------------------
# Histogram quantile math
# ----------------------------------------------------------------------
def histogram_quantile(
    bounds: Sequence[float], cumulative: Sequence[float], q: float
) -> float | None:
    """Prometheus-style quantile from cumulative bucket counts.

    ``bounds`` are the finite upper bounds; ``cumulative`` must have one
    extra trailing entry for the ``+Inf`` bucket.  The value is linearly
    interpolated inside the selected bucket (the first bucket's lower
    edge is 0); mass in the ``+Inf`` bucket clamps to the highest finite
    bound.  Returns ``None`` when there are no observations.
    """
    if len(cumulative) != len(bounds) + 1:
        raise ValueError(
            f"cumulative needs len(bounds)+1 entries: "
            f"{len(cumulative)} vs {len(bounds)}+1"
        )
    if any(cumulative[i] > cumulative[i + 1] for i in range(len(cumulative) - 1)):
        raise ValueError("cumulative counts must be non-decreasing")
    total = cumulative[-1]
    if total <= 0:
        return None
    q = min(max(q, 0.0), 1.0)
    rank = q * total
    idx = bisect.bisect_left(cumulative, rank)
    if idx >= len(bounds):
        # Rank falls in the +Inf bucket: clamp to the last finite bound.
        return float(bounds[-1]) if bounds else None
    lower = float(bounds[idx - 1]) if idx > 0 else 0.0
    upper = float(bounds[idx])
    below = cumulative[idx - 1] if idx > 0 else 0.0
    in_bucket = cumulative[idx] - below
    if in_bucket <= 0:
        return upper
    return lower + (upper - lower) * (rank - below) / in_bucket


def _merge_histogram_samples(
    samples: Iterable[Mapping[str, Any]],
) -> tuple[list[float], list[float]] | None:
    """Sum matching histogram samples into one cumulative bucket vector."""
    bounds: list[float] | None = None
    merged: list[float] | None = None
    for sample in samples:
        buckets = sample.get("buckets") or {}
        finite = sorted(
            (float(k), float(v)) for k, v in buckets.items() if k != "+Inf"
        )
        sample_bounds = [b for b, _ in finite]
        cumulative = [c for _, c in finite] + [float(buckets.get("+Inf", 0.0))]
        if bounds is None:
            bounds, merged = sample_bounds, cumulative
        elif sample_bounds == bounds and merged is not None:
            merged = [a + b for a, b in zip(merged, cumulative)]
        else:
            raise ValueError("histogram samples have mismatched buckets")
    if bounds is None or merged is None:
        return None
    return bounds, merged


def quantile_from_export(
    payload: Mapping[str, Any],
    metric: str,
    q: float,
    labels: Mapping[str, str] | None = None,
) -> float | None:
    """Quantile of a histogram family in an exported metrics document.

    Pools every sample of ``metric`` whose labels are a superset of
    ``labels`` (all samples when ``labels`` is None) by summing their
    cumulative buckets first — so a quantile over a merged multi-worker
    export equals the quantile of the pooled observations, not an
    average of per-worker quantiles.  Returns ``None`` when the family
    is absent or empty.
    """
    family = _find_family(payload, metric)
    if family is None:
        return None
    wanted = {str(k): str(v) for k, v in (labels or {}).items()}
    samples = [
        s for s in family.get("samples", [])
        if isinstance(s, Mapping) and all(
            (s.get("labels") or {}).get(k) == v for k, v in wanted.items()
        )
    ]
    merged = _merge_histogram_samples(samples) if samples else None
    if merged is None:
        return None
    return histogram_quantile(merged[0], merged[1], q)


# ----------------------------------------------------------------------
# Evaluating SLOs against an exported metrics document
# ----------------------------------------------------------------------
def _find_family(payload: Mapping[str, Any], name: str) -> Mapping[str, Any] | None:
    for metric in payload.get("metrics", []) or []:
        if isinstance(metric, Mapping) and metric.get("name") == name:
            return metric
    return None


def _no_data(slo: SLO, reason: str) -> SLOResult:
    return SLOResult(slo, ok=False, observed=None, detail={"reason": reason})


def _evaluate_one(payload: Mapping[str, Any], slo: SLO) -> SLOResult:
    family = _find_family(payload, slo.metric)
    if family is None:
        return _no_data(slo, f"metric {slo.metric!r} not present")
    samples = [
        s for s in family.get("samples", [])
        if isinstance(s, Mapping) and slo.matches(s.get("labels") or {})
    ]
    if not samples:
        return _no_data(slo, "no samples match the label filter")

    if slo.kind == "quantile":
        merged = _merge_histogram_samples(samples)
        observed = None
        if merged is not None:
            observed = histogram_quantile(merged[0], merged[1], slo.quantile)
        if observed is None:
            return _no_data(slo, "histogram has no observations")
        return SLOResult(
            slo, ok=observed <= slo.objective, observed=observed,
            detail={"count": sum(s.get("count", 0) for s in samples)},
        )

    if slo.kind == "error_rate":
        total = bad = 0.0
        for sample in samples:
            value = float(sample.get("value", 0.0))
            total += value
            if slo.is_bad(sample.get("labels") or {}):
                bad += value
        if total <= 0:
            return _no_data(slo, "counter never incremented")
        rate = bad / total
        burn = rate / slo.objective if slo.objective > 0 else math.inf
        return SLOResult(
            slo, ok=rate <= slo.objective, observed=rate,
            detail={"total": total, "bad": bad, "burn_rate": burn},
        )

    # max / value over gauge (or counter) samples.
    values = [float(s.get("value", 0.0)) for s in samples if "value" in s]
    if not values:
        return _no_data(slo, "no scalar samples")
    observed = max(values)
    return SLOResult(slo, ok=observed <= slo.objective, observed=observed)


def evaluate_slos(
    payload: Mapping[str, Any],
    slos: Sequence[SLO],
    source: str = "metrics",
    emit_events: bool = True,
) -> HealthReport:
    """Evaluate objectives against an exported metrics document.

    ``payload`` is the JSON document :func:`repro.obs.export_metrics`
    writes (or ``MetricsRegistry.to_dict()``).  Missing metrics and
    empty histograms count as violations — a health gate that silently
    passes when the pipeline emitted nothing would be worse than no gate.
    """
    results = tuple(_evaluate_one(payload, slo) for slo in slos)
    report = HealthReport(results, source=source)
    if emit_events:
        _emit_violations(report)
    return report


def _emit_violations(report: HealthReport) -> None:
    for result in report.results:
        if not result.ok:
            event(
                "slo_violation", level="warning", component="health",
                slo=result.slo.name, metric=result.slo.metric,
                kind=result.slo.kind, objective=result.slo.objective,
                observed=result.observed, detail=result.detail,
            )


# ----------------------------------------------------------------------
# Live request windows (the serving tier's in-process SLO store)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WindowStats:
    """Aggregates over one trailing window of request samples."""

    window_s: float
    n: int
    errors: int
    latencies: tuple[float, ...]     # sorted, OK requests only
    max_queue_depth: int

    @property
    def error_rate(self) -> float:
        return self.errors / self.n if self.n else 0.0

    def quantile(self, q: float) -> float | None:
        if not self.latencies:
            return None
        q = min(max(q, 0.0), 1.0)
        rank = max(1, math.ceil(q * len(self.latencies)))
        return self.latencies[min(rank, len(self.latencies)) - 1]


class RequestWindows:
    """Trailing multi-window store of request outcomes and queue depths.

    The :class:`~repro.serve.server.QueryServer` records every terminal
    response (status, latency) and every queue-depth reading here; the
    store keeps only the trailing ``horizon`` (the longest configured
    window), so memory stays bounded no matter how long the server runs.
    """

    def __init__(
        self,
        windows: Sequence[float] = DEFAULT_WINDOWS,
        bad_statuses: Iterable[str] = DEFAULT_BAD_STATUSES,
        max_samples: int = 200_000,
    ) -> None:
        if not windows:
            raise ValueError("need at least one window")
        self.windows = tuple(sorted(float(w) for w in windows))
        self.horizon_s = self.windows[-1]
        self.bad_statuses = frozenset(bad_statuses)
        self.max_samples = max_samples
        self._lock = threading.Lock()
        self._samples: deque[tuple[float, str, float]] = deque()
        self._depths: deque[tuple[float, int]] = deque()
        self._t0 = time.monotonic()

    # -- recording -----------------------------------------------------
    def record(
        self, status: str, latency_s: float, t: float | None = None
    ) -> None:
        now = time.monotonic() if t is None else t
        with self._lock:
            self._samples.append((now, status, float(latency_s)))
            self._prune(now)

    def note_queue_depth(self, depth: int, t: float | None = None) -> None:
        now = time.monotonic() if t is None else t
        with self._lock:
            self._depths.append((now, int(depth)))
            self._prune(now)

    def _prune(self, now: float) -> None:
        cutoff = now - self.horizon_s
        while self._samples and (
            self._samples[0][0] < cutoff or len(self._samples) > self.max_samples
        ):
            self._samples.popleft()
        while self._depths and (
            self._depths[0][0] < cutoff or len(self._depths) > self.max_samples
        ):
            self._depths.popleft()

    # -- reading -------------------------------------------------------
    def stats(self, window_s: float, now: float | None = None) -> WindowStats:
        now = time.monotonic() if now is None else now
        cutoff = now - window_s
        with self._lock:
            rows = [r for r in self._samples if r[0] >= cutoff]
            depths = [d for ts, d in self._depths if ts >= cutoff]
        errors = sum(1 for _, status, _lat in rows if status in self.bad_statuses)
        latencies = tuple(sorted(
            lat for _, status, lat in rows if status not in self.bad_statuses
        ))
        return WindowStats(
            window_s=window_s,
            n=len(rows),
            errors=errors,
            latencies=latencies,
            max_queue_depth=max(depths, default=0),
        )

    def burn_rates(
        self, budget: float, now: float | None = None
    ) -> dict[float, float]:
        """Error-budget burn rate per configured window (1.0 = on budget)."""
        now = time.monotonic() if now is None else now
        out: dict[float, float] = {}
        for window in self.windows:
            stats = self.stats(window, now)
            if budget <= 0:
                out[window] = math.inf if stats.errors else 0.0
            else:
                out[window] = stats.error_rate / budget
        return out

    def burning(self, budget: float, now: float | None = None) -> bool:
        """Multi-window alert: every window burns faster than its budget."""
        rates = self.burn_rates(budget, now)
        return bool(rates) and all(rate > 1.0 for rate in rates.values())

    def queue_depth_series(
        self, bucket_s: float = 0.1, now: float | None = None
    ) -> list[tuple[float, int]]:
        """Down-sampled ``(t_rel_s, max_depth)`` series over the horizon."""
        if bucket_s <= 0:
            raise ValueError(f"bucket_s must be > 0: {bucket_s}")
        with self._lock:
            depths = list(self._depths)
        if not depths:
            return []
        start = depths[0][0]
        buckets: dict[int, int] = {}
        for t, depth in depths:
            idx = int((t - start) / bucket_s)
            buckets[idx] = max(buckets.get(idx, 0), depth)
        return [
            (round(idx * bucket_s, 6), depth)
            for idx, depth in sorted(buckets.items())
        ]

    # -- verdicts ------------------------------------------------------
    def verdict(
        self,
        slos: Sequence[SLO],
        now: float | None = None,
        emit_events: bool = True,
    ) -> HealthReport:
        """Evaluate SLOs against the live windows.

        ``quantile`` SLOs read OK-request latencies, ``error_rate`` SLOs
        read terminal statuses (with burn rates for every window), and
        ``max`` SLOs read the queue-depth series; the long window is the
        one that decides, the short windows inform burn-rate detail.
        """
        now = time.monotonic() if now is None else now
        long_stats = self.stats(self.windows[-1], now)
        results = []
        for slo in slos:
            if slo.kind == "quantile":
                observed = long_stats.quantile(slo.quantile)
                if observed is None:
                    results.append(_no_data(slo, "no completed requests"))
                    continue
                results.append(SLOResult(
                    slo, ok=observed <= slo.objective, observed=observed,
                    detail={"n": len(long_stats.latencies)},
                ))
            elif slo.kind == "error_rate":
                if long_stats.n == 0:
                    results.append(_no_data(slo, "no requests recorded"))
                    continue
                rate = long_stats.error_rate
                burn = {
                    str(w): b for w, b in self.burn_rates(slo.objective, now).items()
                }
                results.append(SLOResult(
                    slo, ok=rate <= slo.objective, observed=rate,
                    detail={
                        "n": long_stats.n,
                        "errors": long_stats.errors,
                        "burn_rates": burn,
                        "burning": self.burning(slo.objective, now),
                    },
                ))
            else:  # max / value -> queue depth
                observed = float(long_stats.max_queue_depth)
                results.append(SLOResult(
                    slo, ok=observed <= slo.objective, observed=observed,
                ))
        report = HealthReport(tuple(results), source="live")
        if emit_events:
            _emit_violations(report)
        return report
