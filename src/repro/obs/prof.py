"""Sampling wall-clock profiler and opt-in memory snapshots.

The profiler answers "where does the time go?" in production without
touching the profiled code: a dedicated daemon thread wakes at a fixed
frequency (100 Hz by default), walks every live thread's stack via
:func:`sys._current_frames`, and counts collapsed stacks.  No signals
(so it works off the main thread and under the serve tier's worker
pools), no per-call hooks (so overhead is bounded by the sampling rate
rather than the call rate — a few percent at 100 Hz), and no
dependencies.  Results export as collapsed-stack text (flamegraph.pl /
speedscope both ingest it) and as a speedscope JSON document.

Memory is the other half: :class:`MemoryProfiler` wraps
:mod:`tracemalloc` behind the same opt-in, snapshot-labeled surface.  The
engine's :class:`~repro.engine.context.RunContext` consults the active
global memory profiler after every timed stage, so ``--memory`` on the
CLI yields a per-stage current/peak/top-allocations report with zero
plumbing through the pipeline.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import threading
import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Union

PathLike = Union[str, pathlib.Path]

#: Default sampling frequency (samples per second).
DEFAULT_HZ = 100.0

#: Stacks deeper than this are truncated at the root end.
MAX_STACK_DEPTH = 128


def _format_frame(frame: Any) -> str:
    code = frame.f_code
    return f"{os.path.basename(code.co_filename)}:{code.co_name}"


@dataclass
class StackProfile:
    """What a profiling run captured: weighted collapsed stacks.

    ``samples`` maps a root-first frame tuple to the number of ticks it
    was observed; multiplying by ``interval_s`` converts to seconds.
    """

    hz: float
    duration_s: float = 0.0
    n_ticks: int = 0
    samples: dict[tuple[str, ...], int] = field(default_factory=dict)

    @property
    def interval_s(self) -> float:
        return 1.0 / self.hz if self.hz > 0 else 0.0

    def top(self, n: int = 15) -> list[tuple[str, float, float]]:
        """``(frame, self_seconds, total_seconds)`` rows, heaviest first.

        *Self* counts ticks where the frame was the leaf; *total* counts
        ticks where it appeared anywhere in the stack.
        """
        self_ticks: dict[str, int] = {}
        total_ticks: dict[str, int] = {}
        for stack, count in self.samples.items():
            if not stack:
                continue
            self_ticks[stack[-1]] = self_ticks.get(stack[-1], 0) + count
            for frame in set(stack):
                total_ticks[frame] = total_ticks.get(frame, 0) + count
        rows = [
            (frame, self_ticks.get(frame, 0) * self.interval_s,
             ticks * self.interval_s)
            for frame, ticks in total_ticks.items()
        ]
        rows.sort(key=lambda r: (-r[1], -r[2], r[0]))
        return rows[:n]

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_collapsed(self) -> str:
        """Collapsed-stack text: ``root;child;leaf <ticks>`` per line."""
        lines = [
            ";".join(stack) + f" {count}"
            for stack, count in sorted(self.samples.items())
            if stack
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def to_speedscope(self, name: str = "repro") -> dict[str, Any]:
        """A speedscope ``sampled``-type profile document."""
        frame_index: dict[str, int] = {}
        frames: list[dict[str, str]] = []
        sample_rows: list[list[int]] = []
        weights: list[float] = []
        for stack, count in sorted(self.samples.items()):
            row = []
            for frame in stack:
                idx = frame_index.get(frame)
                if idx is None:
                    idx = frame_index[frame] = len(frames)
                    frames.append({"name": frame})
                row.append(idx)
            sample_rows.append(row)
            weights.append(count * self.interval_s)
        total = sum(weights)
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "name": name,
            "activeProfileIndex": 0,
            "exporter": "repro.obs.prof",
            "shared": {"frames": frames},
            "profiles": [
                {
                    "type": "sampled",
                    "name": name,
                    "unit": "seconds",
                    "startValue": 0.0,
                    "endValue": total,
                    "samples": sample_rows,
                    "weights": weights,
                }
            ],
        }

    def save(self, path: PathLike, name: str = "repro") -> pathlib.Path:
        """Write the profile — collapsed text for ``.txt``/``.collapsed``
        suffixes, speedscope JSON otherwise."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        if path.suffix in (".txt", ".collapsed"):
            path.write_text(self.to_collapsed(), encoding="utf-8")
        else:
            path.write_text(
                json.dumps(self.to_speedscope(name)) + "\n", encoding="utf-8"
            )
        return path


class SamplingProfiler:
    """Signal-free sampling profiler driven by a dedicated thread.

    .. code-block:: python

        profiler = SamplingProfiler(hz=100).start()
        ...  # workload
        profile = profiler.stop()
        profile.save("run.speedscope.json")

    Every live thread except the sampler itself is walked at each tick;
    stacks from all threads are merged (wall-clock semantics: a stack
    observed on two threads simultaneously counts twice).
    """

    def __init__(self, hz: float = DEFAULT_HZ, max_depth: int = MAX_STACK_DEPTH) -> None:
        if hz <= 0:
            raise ValueError(f"hz must be > 0: {hz}")
        self.hz = float(hz)
        self.max_depth = max_depth
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None
        self._counts: dict[tuple[str, ...], int] = {}
        self._n_ticks = 0
        self._t0 = 0.0
        self._duration = 0.0

    @property
    def running(self) -> bool:
        return self._thread is not None

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._stop_event.clear()
        self._t0 = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="repro-prof-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> StackProfile:
        if self._thread is None:
            raise RuntimeError("profiler is not running")
        self._stop_event.set()
        self._thread.join()
        self._thread = None
        self._duration = time.perf_counter() - self._t0
        return self.profile()

    def profile(self) -> StackProfile:
        """The samples collected so far (complete after :meth:`stop`)."""
        return StackProfile(
            hz=self.hz,
            duration_s=self._duration or (time.perf_counter() - self._t0),
            n_ticks=self._n_ticks,
            samples=dict(self._counts),
        )

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        if self._thread is not None:
            self.stop()

    # ------------------------------------------------------------------
    def _run(self) -> None:
        interval = 1.0 / self.hz
        own_ident = threading.get_ident()
        next_tick = time.perf_counter() + interval
        while not self._stop_event.wait(max(0.0, next_tick - time.perf_counter())):
            next_tick += interval
            self._sample(own_ident)
            # If we fell behind (a long GC pause, a busy box), skip the
            # missed ticks rather than bursting to catch up.
            now = time.perf_counter()
            if next_tick < now:
                next_tick = now + interval

    def _sample(self, own_ident: int) -> None:
        frames = sys._current_frames()
        self._n_ticks += 1
        for ident, frame in frames.items():
            if ident == own_ident:
                continue
            stack: list[str] = []
            f = frame
            while f is not None and len(stack) < self.max_depth:
                stack.append(_format_frame(f))
                f = f.f_back
            stack.reverse()
            key = tuple(stack)
            self._counts[key] = self._counts.get(key, 0) + 1


@contextmanager
def profile_block(hz: float = DEFAULT_HZ) -> Iterator[SamplingProfiler]:
    """Profile a block; read ``.profile()`` on the yielded profiler after."""
    profiler = SamplingProfiler(hz=hz).start()
    try:
        yield profiler
    finally:
        if profiler.running:
            profiler.stop()


# ----------------------------------------------------------------------
# Memory snapshots (tracemalloc)
# ----------------------------------------------------------------------
@dataclass
class MemorySnapshot:
    """One labeled point-in-time memory reading."""

    label: str
    t_s: float                       # seconds since profiler start
    current_bytes: int
    peak_bytes: int                  # peak since the previous snapshot
    top: list[tuple[str, int, int]]  # (file:line, size_bytes, n_blocks)

    def to_dict(self) -> dict[str, Any]:
        return {
            "label": self.label,
            "t_s": self.t_s,
            "current_bytes": self.current_bytes,
            "peak_bytes": self.peak_bytes,
            "top": [list(row) for row in self.top],
        }


class MemoryProfiler:
    """Opt-in :mod:`tracemalloc` wrapper producing labeled snapshots.

    ``snapshot(label)`` records current/peak traced memory (peak is reset
    per snapshot, so each reading covers the interval since the previous
    one) plus the top allocation sites.  If tracemalloc was already
    tracing when :meth:`start` ran, :meth:`stop` leaves it running.
    """

    def __init__(self, top_n: int = 10, trace_frames: int = 1) -> None:
        self.top_n = top_n
        self.trace_frames = trace_frames
        self.snapshots: list[MemorySnapshot] = []
        self._t0 = 0.0
        self._owns_tracing = False
        self._started = False

    def start(self) -> "MemoryProfiler":
        if self._started:
            raise RuntimeError("memory profiler already started")
        self._started = True
        self._t0 = time.perf_counter()
        if not tracemalloc.is_tracing():
            tracemalloc.start(self.trace_frames)
            self._owns_tracing = True
        tracemalloc.reset_peak()
        return self

    def snapshot(self, label: str) -> MemorySnapshot:
        if not self._started:
            raise RuntimeError("memory profiler is not started")
        current, peak = tracemalloc.get_traced_memory()
        top: list[tuple[str, int, int]] = []
        if self.top_n > 0:
            stats = tracemalloc.take_snapshot().statistics("lineno")[: self.top_n]
            top = [
                (
                    f"{os.path.basename(stat.traceback[0].filename)}:"
                    f"{stat.traceback[0].lineno}",
                    stat.size,
                    stat.count,
                )
                for stat in stats
            ]
        snap = MemorySnapshot(
            label=label,
            t_s=time.perf_counter() - self._t0,
            current_bytes=current,
            peak_bytes=peak,
            top=top,
        )
        self.snapshots.append(snap)
        tracemalloc.reset_peak()
        return snap

    def stop(self) -> list[MemorySnapshot]:
        if not self._started:
            return list(self.snapshots)
        self._started = False
        if self._owns_tracing:
            tracemalloc.stop()
            self._owns_tracing = False
        return list(self.snapshots)

    def report(self) -> dict[str, Any]:
        """JSON-safe document of every snapshot."""
        return {
            "top_n": self.top_n,
            "snapshots": [snap.to_dict() for snap in self.snapshots],
        }

    def save(self, path: PathLike) -> pathlib.Path:
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.report(), indent=2) + "\n", encoding="utf-8"
        )
        return path


# ----------------------------------------------------------------------
# Global memory-profiler switchboard (mirrors configure_tracing)
# ----------------------------------------------------------------------
_MEMORY: MemoryProfiler | None = None


def configure_memory_profiling(top_n: int = 10, trace_frames: int = 1) -> MemoryProfiler:
    """Install (and start) a global memory profiler.

    While active, every engine stage timed through
    :meth:`~repro.engine.context.RunContext.timed` appends a labeled
    snapshot, giving per-stage memory deltas without plumbing.
    """
    global _MEMORY
    disable_memory_profiling()
    _MEMORY = MemoryProfiler(top_n=top_n, trace_frames=trace_frames).start()
    return _MEMORY


def disable_memory_profiling() -> MemoryProfiler | None:
    """Stop and uninstall the global memory profiler (returns it)."""
    global _MEMORY
    previous = _MEMORY
    if previous is not None:
        previous.stop()
    _MEMORY = None
    return previous


def active_memory_profiler() -> MemoryProfiler | None:
    """The installed global memory profiler, or None."""
    return _MEMORY
