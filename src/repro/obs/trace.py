"""Hierarchical tracing spans emitted as JSON-lines trace files.

A :class:`Span` covers one timed operation (an engine stage, a model fit,
a store query).  Spans nest through a :mod:`contextvars` variable, so the
parent/child structure follows the call stack — including across the
engine's stage plans and the service facade — without any explicit
plumbing.  Finished spans are appended to a JSON-lines sink, one object
per line, carrying ids, wall-clock bounds, attributes, and captured
exceptions; the file reconstructs into a span tree via
:func:`read_trace` / :func:`span_tree`.

Tracing is *off* by default: :func:`span` is a near-free no-op until
:func:`configure_tracing` installs a tracer, so hot paths can be
instrumented unconditionally.
"""

from __future__ import annotations

import atexit
import contextvars
import json
import pathlib
import threading
import time
import uuid
from contextlib import contextmanager
from typing import Any, Iterable, Iterator, TextIO, Union

from .recorder import get_recorder

PathLike = Union[str, pathlib.Path]

_CURRENT_SPAN: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


class Span:
    """One node of a trace: a named, timed, attributed operation."""

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start_unix",
        "end_unix",
        "_t0",
        "duration_s",
        "attributes",
        "status",
        "error",
    )

    def __init__(self, name: str, trace_id: str, parent_id: str | None, attributes: dict) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_id()
        self.parent_id = parent_id
        self.start_unix = time.time()
        self.end_unix: float | None = None
        self._t0 = time.perf_counter()
        self.duration_s: float | None = None
        self.attributes: dict[str, Any] = dict(attributes)
        self.status = "ok"
        self.error: dict[str, str] | None = None

    def set(self, key: str, value: Any) -> None:
        """Attach/overwrite one attribute."""
        self.attributes[key] = value

    def finish(self, exc: BaseException | None = None) -> None:
        self.duration_s = time.perf_counter() - self._t0
        self.end_unix = time.time()
        if exc is not None:
            self.status = "error"
            self.error = {"type": type(exc).__name__, "message": str(exc)}

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_unix": self.start_unix,
            "end_unix": self.end_unix,
            "duration_s": self.duration_s,
            "status": self.status,
            "attributes": _jsonable(self.attributes),
        }
        if self.error is not None:
            out["error"] = self.error
        return out


def _jsonable(obj: Any) -> Any:
    """Best-effort conversion of attribute values to JSON-safe types."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in obj]
    return repr(obj)


class JsonlTraceSink:
    """Appends finished spans to a JSON-lines file (one object per line)."""

    def __init__(self, path: PathLike) -> None:
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._fh: TextIO | None = self.path.open("a", encoding="utf-8")

    def write(self, span: Span) -> None:
        line = json.dumps(span.to_dict(), separators=(",", ":"))
        with self._lock:
            if self._fh is None:
                return
            self._fh.write(line + "\n")
            self._fh.flush()

    def flush(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


#: Sentinel: inherit the parent span from the ambient contextvar.
INHERIT = object()


class RemoteSpanContext:
    """A span handle that crossed a process boundary as a traceparent.

    Carries just the identity a child span needs (`trace_id`,
    `span_id`) — :meth:`Tracer.start` duck-types its ``parent``
    argument, so a remote context parents exactly like a live
    :class:`Span`.  ``sampled`` propagates the head-sampling decision.
    """

    __slots__ = ("trace_id", "span_id", "sampled")

    def __init__(self, trace_id: str, span_id: str, sampled: bool = True) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.sampled = sampled


def make_traceparent(span: Any, sampled: bool = True) -> str:
    """Serialize a span (or remote context) as a W3C-style traceparent:
    ``00-<trace_id>-<span_id>-<flags>`` where flags bit 0 is "sampled"."""
    return f"00-{span.trace_id}-{span.span_id}-{1 if sampled else 0:02x}"


def parse_traceparent(header: Any) -> RemoteSpanContext | None:
    """Decode a traceparent into a :class:`RemoteSpanContext`.

    Tolerant by design: garbage, ``None``, unknown versions, or malformed
    fields return ``None`` (the span simply starts a fresh trace) rather
    than failing the request carrying them.
    """
    if not isinstance(header, str):
        return None
    parts = header.split("-")
    if len(parts) != 4:
        return None
    version, trace_id, span_id, flags = parts
    if version != "00" or not trace_id or not span_id:
        return None
    try:
        sampled = bool(int(flags, 16) & 1)
    except ValueError:
        return None
    return RemoteSpanContext(trace_id, span_id, sampled)


class Tracer:
    """Creates and finishes spans, handing them to a sink."""

    def __init__(self, sink: JsonlTraceSink) -> None:
        self.sink = sink

    def start(self, name: str, attributes: dict, parent: Any = INHERIT) -> Span:
        if parent is INHERIT:
            parent = _CURRENT_SPAN.get()
        trace_id = parent.trace_id if parent is not None else _new_id()
        parent_id = parent.span_id if parent is not None else None
        return Span(name, trace_id, parent_id, attributes)

    def finish(self, span: Span, exc: BaseException | None = None) -> None:
        span.finish(exc)
        self.sink.write(span)
        # Feed the always-on flight recorder (bounded ring, no I/O).
        get_recorder().note_span(
            {
                "name": span.name,
                "trace_id": span.trace_id,
                "duration_s": span.duration_s,
                "error": span.error["type"] if span.error else None,
            }
        )


_TRACER: Tracer | None = None
_ATEXIT_REGISTERED = False


def _flush_at_exit() -> None:
    # Short-lived workers (and fork children that re-configure tracing)
    # must not drop their final spans on interpreter teardown.
    tracer = _TRACER
    if tracer is not None:
        tracer.sink.close()


def configure_tracing(path: PathLike) -> Tracer:
    """Install a global tracer writing JSON-lines spans to ``path``."""
    global _TRACER, _ATEXIT_REGISTERED
    disable_tracing()
    _TRACER = Tracer(JsonlTraceSink(path))
    if not _ATEXIT_REGISTERED:
        atexit.register(_flush_at_exit)
        _ATEXIT_REGISTERED = True
    return _TRACER


def disable_tracing() -> None:
    """Tear the global tracer down; :func:`span` reverts to a no-op."""
    global _TRACER
    if _TRACER is not None:
        _TRACER.sink.close()
    _TRACER = None


def tracing_enabled() -> bool:
    return _TRACER is not None


def current_trace_path() -> pathlib.Path | None:
    """The active tracer's output file, or None when tracing is off."""
    return _TRACER.sink.path if _TRACER is not None else None


def flush_tracing() -> None:
    """Force buffered spans of the active tracer to disk (no-op when off)."""
    if _TRACER is not None:
        _TRACER.sink.flush()


def current_span() -> Span | None:
    """The innermost active span, or None outside any span / when off."""
    return _CURRENT_SPAN.get()


@contextmanager
def span(name: str, parent: Any = INHERIT, **attributes: Any) -> Iterator[Span | None]:
    """Open a child span of the current one for the duration of the block.

    Yields the :class:`Span` (so callers may ``.set()`` attributes mid
    flight) or ``None`` when tracing is disabled — the disabled path costs
    one global read and no allocation beyond the generator.

    ``parent`` overrides the ambient contextvar parent.  Contextvars do
    not cross thread boundaries, so work handed to a worker pool would
    otherwise start a *new* trace: capture :func:`current_span` at submit
    time and pass it here to re-parent the span under the submitter
    (``parent=None`` explicitly forces a root span).
    """
    tracer = _TRACER
    if tracer is None:
        yield None
        return
    sp = tracer.start(name, attributes, parent=parent)
    token = _CURRENT_SPAN.set(sp)
    try:
        yield sp
    except BaseException as exc:
        tracer.finish(sp, exc)
        raise
    else:
        tracer.finish(sp)
    finally:
        _CURRENT_SPAN.reset(token)


# ----------------------------------------------------------------------
# Reading traces back
# ----------------------------------------------------------------------
def read_trace_stats(path: PathLike) -> tuple[list[dict[str, Any]], int]:
    """Parse a JSON-lines trace file -> ``(spans, n_torn_lines)``.

    A worker killed mid-flush leaves a truncated final line; the reader
    skips such torn lines and counts them instead of raising — the same
    contract the publisher's ``updates.log`` reader honours.  A non-dict
    line (hand-edited file) counts as torn too.
    """
    out: list[dict[str, Any]] = []
    n_torn = 0
    for line in pathlib.Path(path).read_text(
        encoding="utf-8", errors="replace"
    ).splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError:
            n_torn += 1
            continue
        if isinstance(doc, dict):
            out.append(doc)
        else:
            n_torn += 1
    return out, n_torn


def read_trace(path: PathLike) -> list[dict[str, Any]]:
    """Parse a JSON-lines trace file into span dicts (file order),
    tolerating a torn tail (see :func:`read_trace_stats`)."""
    spans, _ = read_trace_stats(path)
    return spans


def span_tree(spans: list[dict[str, Any]]) -> dict[str | None, list[dict[str, Any]]]:
    """Index spans by ``parent_id`` (roots under ``None``)."""
    children: dict[str | None, list[dict[str, Any]]] = {}
    for sp in spans:
        children.setdefault(sp.get("parent_id"), []).append(sp)
    return children


# ----------------------------------------------------------------------
# Cross-process collection: merge per-worker files, tail-based sampling
# ----------------------------------------------------------------------
def merge_traces(
    paths: Iterable[PathLike],
    out: PathLike,
    p99_hint: float | None = None,
) -> dict[str, Any]:
    """Merge per-process span files into one trace with tail sampling.

    Spans from every readable input are grouped by ``trace_id``; a trace
    is *kept* when any of its spans errored, when its root span is slower
    than the p99 estimate over all root durations (``p99_hint`` overrides
    the estimate — useful for a router that already tracks latency), or
    when any span carries a truthy ``sampled`` attribute (the head
    decision the router stamped on the route span).  Kept spans are
    written to ``out`` ordered by start time, and a stats dict describes
    what the sampler did — tail-based sampling must be auditable or the
    missing traces look like lost data.
    """
    spans: list[dict[str, Any]] = []
    n_files = 0
    n_torn_lines = 0
    for path in paths:
        try:
            file_spans, n_torn = read_trace_stats(path)
        except OSError:
            continue
        spans.extend(file_spans)
        n_torn_lines += n_torn
        n_files += 1
    by_trace: dict[str, list[dict[str, Any]]] = {}
    for sp in spans:
        by_trace.setdefault(str(sp.get("trace_id")), []).append(sp)

    root_durations = sorted(
        float(sp.get("duration_s") or 0.0)
        for group in by_trace.values()
        for sp in group
        if sp.get("parent_id") is None
    )
    if p99_hint is not None:
        p99 = float(p99_hint)
    elif root_durations:
        # Nearest-rank p99 over root spans, matching repro.obs.health.
        rank = max(0, min(len(root_durations) - 1,
                          int(0.99 * len(root_durations) + 0.5) - 1))
        p99 = root_durations[rank]
    else:
        p99 = float("inf")

    kept: list[dict[str, Any]] = []
    reasons = {"error": 0, "slow": 0, "sampled": 0}
    for group in by_trace.values():
        errored = any(sp.get("status") == "error" for sp in group)
        slow = any(
            sp.get("parent_id") is None
            and float(sp.get("duration_s") or 0.0) >= p99
            for sp in group
        )
        sampled = any(
            (sp.get("attributes") or {}).get("sampled") for sp in group
        )
        if errored:
            reasons["error"] += 1
        elif slow:
            reasons["slow"] += 1
        elif sampled:
            reasons["sampled"] += 1
        else:
            continue
        kept.extend(group)

    kept.sort(key=lambda sp: (float(sp.get("start_unix") or 0.0),
                              str(sp.get("span_id"))))
    out_path = pathlib.Path(out)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    with out_path.open("w", encoding="utf-8") as fh:
        for sp in kept:
            fh.write(json.dumps(sp, separators=(",", ":")) + "\n")
    return {
        "n_files": n_files,
        "n_torn_lines": n_torn_lines,
        "n_spans": len(spans),
        "n_traces": len(by_trace),
        "n_kept_traces": sum(reasons.values()),
        "n_kept_spans": len(kept),
        "kept_by_reason": reasons,
        "p99_threshold_s": p99,
    }
