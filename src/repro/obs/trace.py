"""Hierarchical tracing spans emitted as JSON-lines trace files.

A :class:`Span` covers one timed operation (an engine stage, a model fit,
a store query).  Spans nest through a :mod:`contextvars` variable, so the
parent/child structure follows the call stack — including across the
engine's stage plans and the service facade — without any explicit
plumbing.  Finished spans are appended to a JSON-lines sink, one object
per line, carrying ids, wall-clock bounds, attributes, and captured
exceptions; the file reconstructs into a span tree via
:func:`read_trace` / :func:`span_tree`.

Tracing is *off* by default: :func:`span` is a near-free no-op until
:func:`configure_tracing` installs a tracer, so hot paths can be
instrumented unconditionally.
"""

from __future__ import annotations

import contextvars
import json
import pathlib
import threading
import time
import uuid
from contextlib import contextmanager
from typing import Any, Iterator, TextIO, Union

PathLike = Union[str, pathlib.Path]

_CURRENT_SPAN: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


class Span:
    """One node of a trace: a named, timed, attributed operation."""

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start_unix",
        "end_unix",
        "_t0",
        "duration_s",
        "attributes",
        "status",
        "error",
    )

    def __init__(self, name: str, trace_id: str, parent_id: str | None, attributes: dict) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_id()
        self.parent_id = parent_id
        self.start_unix = time.time()
        self.end_unix: float | None = None
        self._t0 = time.perf_counter()
        self.duration_s: float | None = None
        self.attributes: dict[str, Any] = dict(attributes)
        self.status = "ok"
        self.error: dict[str, str] | None = None

    def set(self, key: str, value: Any) -> None:
        """Attach/overwrite one attribute."""
        self.attributes[key] = value

    def finish(self, exc: BaseException | None = None) -> None:
        self.duration_s = time.perf_counter() - self._t0
        self.end_unix = time.time()
        if exc is not None:
            self.status = "error"
            self.error = {"type": type(exc).__name__, "message": str(exc)}

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_unix": self.start_unix,
            "end_unix": self.end_unix,
            "duration_s": self.duration_s,
            "status": self.status,
            "attributes": _jsonable(self.attributes),
        }
        if self.error is not None:
            out["error"] = self.error
        return out


def _jsonable(obj: Any) -> Any:
    """Best-effort conversion of attribute values to JSON-safe types."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in obj]
    return repr(obj)


class JsonlTraceSink:
    """Appends finished spans to a JSON-lines file (one object per line)."""

    def __init__(self, path: PathLike) -> None:
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._fh: TextIO | None = self.path.open("a", encoding="utf-8")

    def write(self, span: Span) -> None:
        line = json.dumps(span.to_dict(), separators=(",", ":"))
        with self._lock:
            if self._fh is None:
                return
            self._fh.write(line + "\n")
            self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


#: Sentinel: inherit the parent span from the ambient contextvar.
INHERIT = object()


class Tracer:
    """Creates and finishes spans, handing them to a sink."""

    def __init__(self, sink: JsonlTraceSink) -> None:
        self.sink = sink

    def start(self, name: str, attributes: dict, parent: Any = INHERIT) -> Span:
        if parent is INHERIT:
            parent = _CURRENT_SPAN.get()
        trace_id = parent.trace_id if parent is not None else _new_id()
        parent_id = parent.span_id if parent is not None else None
        return Span(name, trace_id, parent_id, attributes)

    def finish(self, span: Span, exc: BaseException | None = None) -> None:
        span.finish(exc)
        self.sink.write(span)


_TRACER: Tracer | None = None


def configure_tracing(path: PathLike) -> Tracer:
    """Install a global tracer writing JSON-lines spans to ``path``."""
    global _TRACER
    disable_tracing()
    _TRACER = Tracer(JsonlTraceSink(path))
    return _TRACER


def disable_tracing() -> None:
    """Tear the global tracer down; :func:`span` reverts to a no-op."""
    global _TRACER
    if _TRACER is not None:
        _TRACER.sink.close()
    _TRACER = None


def tracing_enabled() -> bool:
    return _TRACER is not None


def current_span() -> Span | None:
    """The innermost active span, or None outside any span / when off."""
    return _CURRENT_SPAN.get()


@contextmanager
def span(name: str, parent: Any = INHERIT, **attributes: Any) -> Iterator[Span | None]:
    """Open a child span of the current one for the duration of the block.

    Yields the :class:`Span` (so callers may ``.set()`` attributes mid
    flight) or ``None`` when tracing is disabled — the disabled path costs
    one global read and no allocation beyond the generator.

    ``parent`` overrides the ambient contextvar parent.  Contextvars do
    not cross thread boundaries, so work handed to a worker pool would
    otherwise start a *new* trace: capture :func:`current_span` at submit
    time and pass it here to re-parent the span under the submitter
    (``parent=None`` explicitly forces a root span).
    """
    tracer = _TRACER
    if tracer is None:
        yield None
        return
    sp = tracer.start(name, attributes, parent=parent)
    token = _CURRENT_SPAN.set(sp)
    try:
        yield sp
    except BaseException as exc:
        tracer.finish(sp, exc)
        raise
    else:
        tracer.finish(sp)
    finally:
        _CURRENT_SPAN.reset(token)


# ----------------------------------------------------------------------
# Reading traces back
# ----------------------------------------------------------------------
def read_trace(path: PathLike) -> list[dict[str, Any]]:
    """Parse a JSON-lines trace file into span dicts (file order)."""
    out = []
    for line in pathlib.Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            out.append(json.loads(line))
    return out


def span_tree(spans: list[dict[str, Any]]) -> dict[str | None, list[dict[str, Any]]]:
    """Index spans by ``parent_id`` (roots under ``None``)."""
    children: dict[str | None, list[dict[str, Any]]] = {}
    for sp in spans:
        children.setdefault(sp.get("parent_id"), []).append(sp)
    return children
