"""repro.obs — unified tracing, metrics, and structured-event telemetry.

Three primitives, one switchboard:

* :func:`span` — hierarchical tracing spans (contextvar-nested, attribute
  and exception capturing) written as JSON-lines trace files once
  :func:`configure_tracing` is called; free no-ops otherwise.
* :func:`get_registry` — a process-global :class:`MetricsRegistry` of
  counters, gauges, and fixed-bucket histograms, exportable as JSON or
  Prometheus text format (:func:`export_metrics`).
* :func:`event` — leveled structured events, JSON-lines-sinked and bridged
  through stdlib :mod:`logging` (:func:`configure_events`).

The engine's :class:`~repro.engine.context.RunContext` consumes the span
API, so per-stage timings, counters, trace spans, and exported metrics all
share one source of truth.
"""

from repro.obs.drift import (
    DriftMonitor,
    DriftReport,
    Fingerprint,
    compare_fingerprints,
    matcher_fingerprint,
    pool_fingerprint,
    psi,
    save_drift_report,
)
from repro.obs.events import (
    EventLog,
    configure_events,
    event,
    get_event_log,
    read_events,
)
from repro.obs.health import (
    SLO,
    HealthReport,
    RequestWindows,
    SLOResult,
    evaluate_slos,
    histogram_quantile,
    load_slo_file,
    parse_slos,
    quantile_from_export,
)
from repro.obs.meta import git_sha, run_metadata
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    export_metrics,
    get_registry,
    load_metrics,
    render_metrics,
    reset_registry,
    set_registry,
)
from repro.obs.prof import (
    MemoryProfiler,
    SamplingProfiler,
    StackProfile,
    active_memory_profiler,
    configure_memory_profiling,
    disable_memory_profiling,
    profile_block,
)
from repro.obs.shm import (
    MetricsPlane,
    PlaneSchemaError,
    PlaneSnapshot,
    SlotSpec,
    SlotValue,
    merge_snapshots,
    merged_registry,
    scrape_planes,
)
from repro.obs.trace import (
    RemoteSpanContext,
    Span,
    Tracer,
    configure_tracing,
    current_span,
    current_trace_path,
    disable_tracing,
    flush_tracing,
    make_traceparent,
    merge_traces,
    parse_traceparent,
    read_trace,
    span,
    span_tree,
    tracing_enabled,
)

__all__ = [
    "DriftMonitor",
    "DriftReport",
    "Fingerprint",
    "compare_fingerprints",
    "matcher_fingerprint",
    "pool_fingerprint",
    "psi",
    "save_drift_report",
    "SLO",
    "HealthReport",
    "RequestWindows",
    "SLOResult",
    "evaluate_slos",
    "histogram_quantile",
    "load_slo_file",
    "parse_slos",
    "quantile_from_export",
    "MemoryProfiler",
    "SamplingProfiler",
    "StackProfile",
    "active_memory_profiler",
    "configure_memory_profiling",
    "disable_memory_profiling",
    "profile_block",
    "EventLog",
    "configure_events",
    "event",
    "get_event_log",
    "read_events",
    "git_sha",
    "run_metadata",
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "export_metrics",
    "get_registry",
    "load_metrics",
    "render_metrics",
    "reset_registry",
    "set_registry",
    "MetricsPlane",
    "PlaneSchemaError",
    "PlaneSnapshot",
    "SlotSpec",
    "SlotValue",
    "merge_snapshots",
    "merged_registry",
    "scrape_planes",
    "RemoteSpanContext",
    "Span",
    "Tracer",
    "configure_tracing",
    "current_span",
    "current_trace_path",
    "disable_tracing",
    "flush_tracing",
    "make_traceparent",
    "merge_traces",
    "parse_traceparent",
    "read_trace",
    "span",
    "span_tree",
    "tracing_enabled",
]
